//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace ships a
//! small property-testing harness that covers exactly the surface the BAPS
//! test suites use:
//!
//! * the [`proptest!`] macro (`fn name(arg in strategy, ...) { .. }`);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`], [`prop_oneof!`];
//! * [`Strategy`] with `prop_map` / `prop_filter`, tuple strategies up to
//!   arity 12, integer/float range strategies, [`Just`], [`any`], and
//!   [`collection::vec`];
//! * `&str` strategies interpreted as a small regex subset (literals,
//!   escapes, `.`, `[...]` classes with ranges, `{n}` / `{m,n}` repeats).
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the generated inputs so it can be reproduced. Case count defaults
//! to 64 and can be raised with `PROPTEST_CASES`. Sampling is seeded from
//! the test name (override with `PROPTEST_SEED`) so runs are deterministic.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::rc::Rc;

/// Everything a property test module needs, in one import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        Strategy, TestCaseError,
    };
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs were rejected by `prop_assume!` — the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure error.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection error.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// A generator of random values (sampling-only analogue of
/// `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true (resamples otherwise).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            reason: reason.into(),
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
    }
}

/// A type-erased strategy (cheaply clonable).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: String,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 attempts: {}", self.reason);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy yielding uniformly distributed values of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: rand::Standard + Debug> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Uniform strategy over all values of `T`.
pub fn any<T: rand::Standard + Debug>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.gen::<f64>() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
}

// ---------------------------------------------------------------------------
// &str strategies: a small regex-subset generator.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct RegexNode {
    /// Inclusive character ranges this position draws from.
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

fn parse_regex(pattern: &str) -> Vec<RegexNode> {
    let mut nodes = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let ranges = match c {
            '\\' => {
                let escaped = chars.next().expect("dangling escape in pattern");
                vec![(escaped, escaped)]
            }
            '.' => vec![(' ', '~')],
            '[' => {
                let mut ranges = Vec::new();
                let mut items: Vec<char> = Vec::new();
                for n in chars.by_ref() {
                    if n == ']' {
                        break;
                    }
                    items.push(n);
                }
                let mut i = 0;
                while i < items.len() {
                    if i + 2 < items.len() && items[i + 1] == '-' {
                        ranges.push((items[i], items[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((items[i], items[i]));
                        i += 1;
                    }
                }
                ranges
            }
            c => vec![(c, c)],
        };
        // Optional {n} / {m,n} quantifier.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for n in chars.by_ref() {
                if n == '}' {
                    break;
                }
                spec.push(n);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier"),
                    hi.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        nodes.push(RegexNode { ranges, min, max });
    }
    nodes
}

fn sample_regex(nodes: &[RegexNode], rng: &mut StdRng) -> String {
    let mut out = String::new();
    for node in nodes {
        let count = rng.gen_range(node.min..=node.max);
        for _ in 0..count {
            // Weight ranges by their width for a uniform char distribution.
            let total: u32 = node
                .ranges
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut pick = rng.gen_range(0..total);
            for &(lo, hi) in &node.ranges {
                let width = hi as u32 - lo as u32 + 1;
                if pick < width {
                    out.push(char::from_u32(lo as u32 + pick).expect("valid char"));
                    break;
                }
                pick -= width;
            }
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        sample_regex(&parse_regex(self), rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Accepted size specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.min..=self.size.max);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// Runner.
// ---------------------------------------------------------------------------

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Drives one property: repeatedly samples inputs and runs the body until
/// the configured number of accepted cases pass. Used by [`proptest!`];
/// not part of the public proptest API.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut StdRng, &mut String) -> Result<(), TestCaseError>,
{
    let cases = env_u64("PROPTEST_CASES").unwrap_or(64);
    let seed = env_u64("PROPTEST_SEED").unwrap_or_else(|| {
        // FNV-1a over the test name: stable per-test seeding.
        name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        })
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepted = 0;
    let mut rejected = 0u64;
    while accepted < cases {
        let mut inputs = String::new();
        let result = {
            let run = std::panic::AssertUnwindSafe(|| case(&mut rng, &mut inputs));
            std::panic::catch_unwind(run)
        };
        match result {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejected += 1;
                if rejected > cases * 16 {
                    panic!("{name}: too many rejected cases ({rejected})");
                }
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("{name}: property failed: {msg}\nminimal failing input (no shrinking):\n{inputs}");
            }
            Err(payload) => {
                eprintln!("{name}: case panicked; inputs:\n{inputs}");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Declares property tests: `proptest! { #[test] fn p(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__rng, __inputs| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                    $(
                        __inputs.push_str(concat!("  ", stringify!($arg), " = "));
                        __inputs.push_str(&format!("{:?}\n", &$arg));
                    )+
                    $body
                    Ok(())
                });
            }
        )+
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Uniform choice among type-erased strategies (built by [`prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union over the given alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "empty prop_oneof");
        Union(options)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = "[A-Za-z][A-Za-z0-9-]{0,20}".sample(&mut rng);
            assert!(!s.is_empty() && s.len() <= 21, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            let t = "[!-~][ -~]{0,40}".sample(&mut rng);
            assert!((1..=41).contains(&t.len()));
            let u = "BAPS/1\\.0".sample(&mut rng);
            assert_eq!(u, "BAPS/1.0");
            let v = ".{0,120}".sample(&mut rng);
            assert!(v.len() <= 120);
            assert!(v.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #[test]
        fn harness_runs_and_asserts(x in 0u32..10, v in collection::vec(any::<u8>(), 0..16)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 16);
        }

        #[test]
        fn oneof_and_filter(y in prop_oneof![Just(1u8), Just(2u8), 5u8..7]
            .prop_map(|v| v * 10)
            .prop_filter("nonzero", |v| *v > 0))
        {
            prop_assert!([10, 20, 50, 60].contains(&y));
        }

        #[test]
        fn assume_rejects(z in 0u8..4) {
            prop_assume!(z != 3);
            prop_assert!(z < 3);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_inputs() {
        run_cases("failing", |rng, inputs| {
            let x: u8 = (0u8..10).sample(rng);
            inputs.push_str(&format!("  x = {x:?}\n"));
            prop_assert!(x > 100, "x too small");
            Ok(())
        });
    }
}
