//! Offline stand-in for the `serde` facade crate.
//!
//! Re-exports the no-op derive macros from the sibling `serde_derive`
//! shim. See that crate for rationale. Swap both shims for the real
//! crates.io packages (and delete the `path` overrides in the workspace
//! `Cargo.toml`) once network access exists.

pub use serde_derive::{Deserialize, Serialize};
