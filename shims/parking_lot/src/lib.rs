//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s ergonomics: `lock()`
//! / `read()` / `write()` return guards directly (poisoning is swallowed —
//! a poisoned lock just hands back the inner guard), and
//! [`Condvar::wait_for`] takes `&mut MutexGuard` instead of consuming it.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning facade over
/// [`std::sync::Mutex`]).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(Some(guard))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// A reader-writer lock (non-poisoning facade over [`std::sync::RwLock`]).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Wakes all waiting threads. Returns the number woken (always 0 here;
    /// std does not report it — callers in this workspace ignore it).
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        false
    }

    /// Blocks until notified, re-acquiring the lock afterwards.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        std::thread::spawn(move || {
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        while !*done {
            cv.wait_for(&mut done, Duration::from_millis(50));
        }
    }
}
