//! Offline stand-in for the `criterion` crate.
//!
//! Implements the small API surface the BAPS benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical
//! machinery: each benchmark is warmed up briefly, then timed over enough
//! iterations to fill ~0.5 s, and the mean time per iteration (plus
//! derived throughput) is printed. Good enough to compare orders of
//! magnitude offline; swap in real criterion for publication numbers.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed here.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f, self.throughput);
        self
    }

    /// Runs a named benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            &mut |b| f(b, input),
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id built from a function/parameter pair.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id built from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measures a closure over many iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F, throughput: Option<Throughput>) {
    // Calibrate: time one iteration, then pick a count filling ~0.5 s.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(500);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000_000) as u64;
    let mut bench = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bench);
    let ns = bench.elapsed.as_nanos() as f64 / bench.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(", {:.3e} elem/s", n as f64 / (ns / 1e9)),
        Throughput::Bytes(n) => format!(", {:.1} MiB/s", n as f64 / (ns / 1e9) / (1 << 20) as f64),
    });
    println!(
        "bench {name:<40} {:>12.1} ns/iter ({} iters{})",
        ns,
        bench.iters,
        rate.unwrap_or_default()
    );
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::new();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4)).sample_size(5);
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }
}
