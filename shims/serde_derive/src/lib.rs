//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize` / `Deserialize` on its data types so a
//! real serializer can be plugged in when crates.io access exists, but no
//! code path actually serializes today. These derive macros therefore
//! expand to nothing — they only need to *exist* so the derives compile
//! offline. The `#[serde(...)]` helper attribute is accepted and ignored.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
