//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small, API-compatible subset of `rand` 0.8: the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits and a seeded [`rngs::StdRng`] built on
//! xoshiro256** (seeded through SplitMix64). All BAPS randomness is already
//! funneled through explicitly seeded `StdRng` instances, so determinism is
//! preserved; the concrete streams differ from upstream `rand`, which no
//! test relies on.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample(rng))
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of an inferable type uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, seeded via SplitMix64.
    ///
    /// Stand-in for `rand::rngs::StdRng`; deterministic for a given seed
    /// but *not* stream-compatible with upstream `rand`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_f64_not_constant() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = rng.gen::<f64>();
        let b = rng.gen::<f64>();
        assert_ne!(a, b);
    }
}
