//! Reliability protocols walkthrough (paper §6): digital-watermark data
//! integrity and anonymous peer-to-peer document exchange — including the
//! content-blind secure relay where even the proxy never sees plaintext.
//!
//! ```sh
//! cargo run --release --example secure_sharing
//! ```

use baps::crypto::{
    requester_open, target_serve, verify_document, AnonymizingProxy, FetchReply, KeyPair, PeerId,
    ProxySigner, SecureRelay,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2002);

    // --- §6.1: data integrity via digital watermarks. ---------------------
    let proxy_signer = ProxySigner::generate(&mut rng);
    let document = b"<html><body>A cached research paper</body></html>".to_vec();
    let watermark = proxy_signer.watermark(&document);
    println!("proxy issued watermark {}...", &watermark.to_hex()[..16]);

    // A peer serves the intact document: verification succeeds.
    verify_document(&proxy_signer.public_key(), &document, &watermark)
        .expect("intact document verifies");
    println!("intact document verified against the proxy's public key");

    // A malicious peer modifies one byte: verification fails, and the peer
    // cannot forge a watermark because it lacks the proxy's private key.
    let mut tampered = document.clone();
    tampered[10] ^= 0x01;
    let err = verify_document(&proxy_signer.public_key(), &tampered, &watermark).unwrap_err();
    println!("tampered document rejected: {err}");

    // --- §6.2: communication anonymity (base mode). -----------------------
    let mut relay = AnonymizingProxy::new();
    let order = relay.begin(PeerId(7), "http://site/page");
    println!(
        "\nanonymous exchange: target sees only txn #{} + URL {:?} (no requester id)",
        order.txn.0, order.url
    );
    let reply = FetchReply {
        txn: order.txn,
        body: document.clone(),
        watermark,
    };
    let (deliver_to, delivery) = relay.complete(reply).unwrap();
    println!(
        "proxy matched txn #{} back to requester {:?}; delivery carries no peer id",
        delivery.txn.0, deliver_to
    );

    // --- Content-blind secure relay (HPL-2001-204 variant). ---------------
    let requester_keys = KeyPair::generate(&mut rng);
    let target_keys = KeyPair::generate(&mut rng);
    let mut secure = SecureRelay::new();
    let sealed = secure
        .begin(&mut rng, PeerId(7), &target_keys.public, "http://site/page")
        .unwrap();
    let reply = target_serve(&mut rng, &target_keys, &sealed, &document, watermark).unwrap();
    assert_ne!(reply.body, document, "relay only ever sees ciphertext");
    println!(
        "\nsecure relay: body transits the proxy as {} ciphertext bytes",
        reply.body.len()
    );
    let (_, sealed_delivery) = secure.complete(reply, &requester_keys.public).unwrap();
    let plaintext = requester_open(&requester_keys, &sealed_delivery).unwrap();
    assert_eq!(plaintext, document);
    verify_document(
        &proxy_signer.public_key(),
        &plaintext,
        &sealed_delivery.delivery.watermark,
    )
    .expect("end-to-end integrity");
    println!(
        "requester decrypted {} bytes and verified the watermark end-to-end",
        plaintext.len()
    );
}
