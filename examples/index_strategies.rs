//! Browser-index strategy comparison: exact invalidation-driven directory
//! vs batched (delayed) updates vs Bloom summaries — the hit-ratio /
//! freshness / memory trade-off discussed in the paper's §5.
//!
//! ```sh
//! cargo run --release --example index_strategies
//! ```

use baps::core::{LatencyParams, Organization, SystemConfig};
use baps::index::IndexModel;
use baps::sim::{human_bytes, pct, run_sweep, Table};
use baps::trace::{Profile, TraceStats};

fn main() {
    let trace = Profile::NlanrBo1.generate_scaled(0.10);
    let stats = TraceStats::compute(&trace);
    println!(
        "{}: {} requests, {} clients\n",
        trace.name, stats.requests, stats.clients
    );

    let models: Vec<(String, IndexModel)> = vec![
        ("exact (paper's design)".into(), IndexModel::Exact),
        (
            "delayed, 1% threshold".into(),
            IndexModel::Delayed {
                threshold: 0.01,
                interval_ms: None,
            },
        ),
        (
            "delayed, 10% threshold".into(),
            IndexModel::Delayed {
                threshold: 0.10,
                interval_ms: None,
            },
        ),
        (
            "delayed, 30 min interval".into(),
            IndexModel::Delayed {
                threshold: 1.0,
                interval_ms: Some(30 * 60 * 1000),
            },
        ),
        (
            "bloom summaries, 16 bits/doc".into(),
            IndexModel::Bloom {
                bits_per_item: 16,
                threshold: 0.05,
            },
        ),
        (
            "bloom summaries, 8 bits/doc".into(),
            IndexModel::Bloom {
                bits_per_item: 8,
                threshold: 0.05,
            },
        ),
        (
            "counting bloom, delta updates".into(),
            IndexModel::CountingBloom {
                slots: 16_384,
                threshold: 0.05,
            },
        ),
    ];

    let configs: Vec<SystemConfig> = models
        .iter()
        .map(|(_, index_model)| {
            let mut cfg = SystemConfig::paper_default(
                Organization::BrowsersAware,
                (stats.infinite_cache_bytes / 10).max(1),
            );
            cfg.index_model = *index_model;
            cfg
        })
        .collect();
    let results = run_sweep(&trace, &stats, &configs, &LatencyParams::paper());

    let mut table = Table::new(vec![
        "index strategy",
        "HR %",
        "remote hits",
        "wasted probes",
        "update msgs",
        "update traffic",
        "index memory",
    ]);
    for ((label, _), r) in models.iter().zip(&results) {
        table.row(vec![
            label.clone(),
            pct(r.hit_ratio()),
            format!("{}", r.metrics.remote_browser.count),
            format!("{}", r.metrics.wasted_probes),
            format!("{}", r.index_stats.messages),
            human_bytes(r.index_stats.update_bytes),
            human_bytes(r.index_memory_bytes),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nExact directories maximise remote hits; delayed updates trade a little\n\
         freshness for far fewer messages; Bloom summaries shrink the index by an\n\
         order of magnitude at the cost of wasted probes (false positives)."
    );
}
