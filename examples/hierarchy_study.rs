//! Hierarchy study: what browsers-awareness adds on top of a two-level
//! proxy hierarchy (the paper's "upper level proxy" path, developed into a
//! hybrid P2P design by the authors' TKDE 2004 follow-up).
//!
//! ```sh
//! cargo run --release --example hierarchy_study
//! ```

use baps::core::LatencyParams;
use baps::sim::{pct, run_hierarchy, HierHit, HierarchyConfig, SharingMode, Table};
use baps::trace::{Profile, TraceStats};

fn main() {
    let trace = Profile::Bu98.generate_scaled(0.15);
    let stats = TraceStats::compute(&trace);
    println!(
        "{}: {} requests, {} clients, partitioned among first-level proxies\n",
        trace.name, stats.requests, stats.clients
    );

    let mut table = Table::new(vec![
        "groups", "sharing", "HR %", "local %", "L1 %", "remote %", "L2 %", "miss %",
    ]);
    for n_groups in [2u32, 4, 8] {
        for mode in [
            SharingMode::NoSharing,
            SharingMode::GroupBrowsersAware,
            SharingMode::GlobalBrowsersAware,
        ] {
            let cfg = HierarchyConfig::from_stats(&stats, n_groups, mode);
            let s = run_hierarchy(&trace, &cfg, &LatencyParams::paper());
            table.row(vec![
                format!("{n_groups}"),
                mode.label().to_owned(),
                pct(s.metrics.hit_ratio()),
                pct(s.metrics.class_ratio(HierHit::LocalBrowser)),
                pct(s.metrics.class_ratio(HierHit::L1Proxy)),
                pct(s.metrics.class_ratio(HierHit::RemoteBrowser)),
                pct(s.metrics.class_ratio(HierHit::L2Proxy)),
                pct(s.metrics.class_ratio(HierHit::Miss)),
            ]);
        }
    }
    print!("{}", table.render());
    println!(
        "\nAs the population fragments into more groups, each L1 proxy covers less\n\
         of the shared working set; a global browser index recovers that loss by\n\
         turning L1/L2 misses into peer-browser hits."
    );
}
