//! Live proxy demo: spins up an origin server, a browsers-aware proxy and a
//! handful of client agents on loopback TCP, then walks through the full
//! request lifecycle — origin fetch, proxy hit, *peer browser hit* after
//! proxy eviction, tamper detection, and invalidation.
//!
//! ```sh
//! cargo run --release --example live_proxy
//! ```

use baps::proxy::{DocumentStore, Source, TestBed, TestBedConfig};

fn main() {
    // 16 documents of 0.2–2 KB at the origin; a deliberately tiny proxy
    // cache (2.5 KB) so documents fall out of it quickly.
    let store = DocumentStore::synthetic(16, 200, 2_000, 7);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: 3,
            proxy_capacity: 2_500,
            browser_capacity: 64 << 10,
            ..TestBedConfig::default()
        },
    )
    .expect("test bed starts");
    println!(
        "origin at {}, proxy at {}, {} clients\n",
        bed.origin.addr(),
        bed.proxy.addr(),
        bed.clients.len()
    );

    let url = "http://origin/doc/0";

    // 1. Cold fetch: proxy pulls from the origin, signs a watermark.
    let r = bed.clients[0].fetch(url).unwrap();
    println!(
        "client 0 GET {url} -> {:?} ({} bytes)",
        r.source,
        r.body.len()
    );
    assert_eq!(r.source, Source::Origin);

    // 2. Flood the tiny proxy cache so doc/0 is evicted from it.
    for i in 1..8 {
        bed.clients[2]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
    }
    println!("client 2 fetched 7 other documents (proxy cache now churned)");

    // 3. Client 1 asks for doc/0: proxy misses, consults the browser index,
    //    and fetches it from client 0's browser cache — anonymously.
    let r = bed.clients[1].fetch(url).unwrap();
    println!(
        "client 1 GET {url} -> {:?} (peer-served, watermark verified)",
        r.source
    );
    assert_eq!(r.source, Source::Peer);

    // 4. A tampering peer is caught by the watermark and bypassed.
    bed.clients[0].set_tamper(true);
    bed.clients[1].evict(url).unwrap();
    let r = bed.clients[1].fetch(url).unwrap();
    println!(
        "client 0 tampers; client 1 re-fetch -> {:?} (integrity check bypassed the peer)",
        r.source
    );
    assert_ne!(r.source, Source::Peer);

    // 5. Invalidation keeps the index honest.
    bed.clients[0].set_tamper(false);
    bed.clients[0].evict(url).unwrap();
    println!("client 0 evicted {url} and invalidated its index entry");

    let stats = bed.proxy.stats();
    println!(
        "\nproxy stats: {} requests, {} proxy hits, {} peer hits, {} origin fetches,\n\
         {} invalidations, {} failed peer probes; index entries now: {}",
        stats.requests,
        stats.proxy_hits,
        stats.peer_hits,
        stats.origin_fetches,
        stats.invalidations,
        stats.peer_failures,
        bed.proxy.index_entries()
    );
    bed.shutdown();
}
