//! Quickstart: generate a small synthetic Web workload, replay it through
//! the conventional proxy hierarchy and through the browsers-aware proxy
//! server, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use baps::core::{Organization, SystemConfig};
use baps::sim::{run, Table};
use baps::trace::{SynthConfig, TraceStats};
use baps_core::LatencyParams;

fn main() {
    // 1. A synthetic workload: 16 clients, 20k requests, Zipf popularity,
    //    heavy-tailed sizes, per-client temporal locality. Deterministic.
    let trace = SynthConfig::small().generate(42);
    let stats = TraceStats::compute(&trace);
    println!(
        "workload: {} requests, {} clients, {} unique docs, {:.1} MB total",
        stats.requests,
        stats.clients,
        stats.unique_docs,
        stats.total_bytes as f64 / 1e6
    );
    println!(
        "infinite-cache bounds: {:.2}% hit ratio, {:.2}% byte hit ratio\n",
        stats.max_hit_ratio, stats.max_byte_hit_ratio
    );

    // 2. Proxy cache at 10% of the infinite cache size; browser caches at
    //    the paper's minimum (proxy / n_clients).
    let proxy_capacity = stats.infinite_cache_bytes / 10;
    let latency = LatencyParams::paper();

    let mut table = Table::new(vec!["organization", "HR %", "BHR %", "remote hits"]);
    for org in Organization::all() {
        let cfg = SystemConfig::paper_default(org, proxy_capacity);
        let r = run(&trace, &stats, &cfg, &latency);
        table.row(vec![
            org.name().to_owned(),
            format!("{:.2}", r.hit_ratio()),
            format!("{:.2}", r.byte_hit_ratio()),
            format!("{}", r.metrics.remote_browser.count),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nThe browsers-aware proxy converts proxy misses into remote-browser hits\n\
         by consulting its index of every client's browser cache (paper §2)."
    );
}
