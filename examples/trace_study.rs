//! Trace study: the full five-organization comparison on a calibrated
//! paper profile, with hit breakdowns and overhead accounting — a compact
//! version of the paper's whole evaluation on one trace.
//!
//! ```sh
//! cargo run --release --example trace_study            # NLANR-uc, 10% scale
//! cargo run --release --example trace_study -- bu95    # choose a profile
//! ```

use baps::core::{HitClass, LatencyParams, Organization, SystemConfig};
use baps::sim::{pct, run_sweep, Table};
use baps::trace::{Profile, TraceStats};

fn main() {
    let profile = match std::env::args().nth(1).as_deref() {
        None | Some("uc") => Profile::NlanrUc,
        Some("bo1") => Profile::NlanrBo1,
        Some("bu95") => Profile::Bu95,
        Some("bu98") => Profile::Bu98,
        Some("canet") => Profile::CaNetII,
        Some(other) => {
            eprintln!("unknown profile {other}; use uc|bo1|bu95|bu98|canet");
            std::process::exit(2);
        }
    };
    // 10% scale keeps the example fast; the bench binaries run full size.
    let trace = profile.generate_scaled(0.10);
    let stats = TraceStats::compute(&trace);
    println!(
        "{}: {} requests, {} clients, max HR {:.1}%, max BHR {:.1}%\n",
        trace.name, stats.requests, stats.clients, stats.max_hit_ratio, stats.max_byte_hit_ratio
    );

    let proxy_capacity = (stats.infinite_cache_bytes / 10).max(1);
    let configs: Vec<SystemConfig> = Organization::all()
        .iter()
        .map(|&org| SystemConfig::paper_default(org, proxy_capacity))
        .collect();
    let results = run_sweep(&trace, &stats, &configs, &LatencyParams::paper());

    let mut table = Table::new(vec![
        "organization",
        "HR %",
        "BHR %",
        "local %",
        "proxy %",
        "remote %",
        "svc time (s)",
    ]);
    for (cfg, r) in configs.iter().zip(&results) {
        table.row(vec![
            cfg.organization.name().to_owned(),
            pct(r.hit_ratio()),
            pct(r.byte_hit_ratio()),
            pct(r.metrics.class_ratio(HitClass::LocalBrowser)),
            pct(r.metrics.class_ratio(HitClass::Proxy)),
            pct(r.metrics.class_ratio(HitClass::RemoteBrowser)),
            format!("{:.0}", r.latency.total_ms() / 1000.0),
        ]);
    }
    print!("{}", table.render());

    let baps = results.last().expect("five organizations");
    println!(
        "\nbrowsers-aware overhead: remote communication is {:.2}% of total service \
         time,\ncontention {:.3}% of communication time, index footprint {} KB",
        baps.latency.remote_overhead_pct(),
        baps.latency.contention_pct_of_comm(),
        baps.index_memory_bytes / 1024,
    );
}
