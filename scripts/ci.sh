#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q --workspace

echo "== chaos soak (fixed seed)"
# Deterministic fault-injection soak: 2k requests under seed 42, run twice
# internally to prove determinism. Also gates the HEALTH SLO engine: the
# chaos-calibrated rule table must judge the completed schedule ok, and a
# post-schedule burst of GETs for nonexistent URLs must flip error_burn
# to critical deterministically. Exits nonzero with a reproduction line
# on any invariant violation.
cargo run --release -q -p baps-bench --bin chaos_soak -- --seed 42 --requests 2000

echo "== chaos soak, reactor I/O mode (fixed seed)"
# The same deterministic soak with the proxy on the epoll reactor
# (io_mode = Reactor) instead of the thread-per-connection pool: every
# proxy fault kind (stall/drop/restart) must fire with identical
# per-fault counts and outcome tallies across both internal runs, gating
# that the event-driven path keeps byte-exact fault semantics.
cargo run --release -q -p baps-bench --bin chaos_soak -- \
    --seed 42 --requests 2000 --io-mode reactor

echo "== chaos soak, warm-restart mode (fixed seed)"
# Same deterministic soak with the persistent disk tier enabled and one
# full in-place proxy restart at mid-schedule: gates that the restarted
# proxy re-opens its store non-empty, serves disk hits afterwards
# (post-restart hit ratio > 0), keeps counters monotonic across the
# restart, and that both runs stay byte-exact and deterministic.
cargo run --release -q -p baps-bench --bin chaos_soak -- \
    --seed 42 --requests 2000 --restart-warm

echo "== scenario soak: flash-crowd (fixed seed)"
# Sequential replay of the flash-crowd schedule (cold doc ramping to ~50%
# of traffic) with byte-exact content checks, bounded tails, and a
# 16-worker thundering-herd probe that must coalesce to exactly one
# origin fetch (coalesced_fetches == 15). Run twice internally to prove
# same-seed determinism.
cargo run --release -q -p baps-bench --bin chaos_soak -- \
    --seed 42 --requests 2000 --scenario flash-crowd

echo "== scenario soak: invalidation-storm (fixed seed)"
# Publisher-storm replay against the memory + disk tiers: every
# Invalidate op is one wire message (replica discards piggyback), no
# fetch may return stale bytes, and the unchanged half of the updates
# must come back via If-Digest revalidation. Determinism gated the same
# way.
cargo run --release -q -p baps-bench --bin chaos_soak -- \
    --seed 42 --requests 2000 --scenario invalidation-storm

echo "== metrics smoke (METRICS exposition + recording-overhead gate)"
# Scrapes METRICS BAPS/1.0 over the wire under load and asserts the
# exposition parses, requests_total = served-by-tier + errors, and the
# tier histogram counts agree with the counters; then A/Bs recording
# on/off (median of paired rounds, one re-measure on a noisy first
# reading) and fails the build if always-on recording costs >3%.
cargo run --release -q -p baps-bench --bin live_load -- --smoke 8000 64

echo "== metrics smoke, reactor I/O mode (exposition parity, no overhead A/B)"
# The same scrape assertions with the proxy on the epoll reactor: the
# exposition (identity gauges included) must parse and balance
# identically in both serving modes. The wall-clock-heavy overhead gate
# already ran above and is skipped here.
cargo run --release -q -p baps-bench --bin live_load -- \
    --smoke --io-mode reactor --no-overhead 8000 64

echo "== health smoke (HEALTH SLO engine + tail-exemplar resolution gate)"
# Starts a testbed whose origin stalls every reply 15 ms (deterministic
# tail latencies), scrapes HEALTH twice 2 s apart, and asserts the full
# default rule table evaluates, the windows move between scrapes, the
# METRICS exposition carries well-formed tail-bucket exemplars, and every
# exemplar trace id resolves through TRACE to a complete sampled span
# tree. Run in both serving modes.
cargo run --release -q -p baps-bench --bin health_smoke
cargo run --release -q -p baps-bench --bin health_smoke -- --io-mode reactor

echo "== trace smoke (multi-hop span-tree reconstruction gate)"
# Builds a live deployment, forces peer and origin hits, scrapes the
# TRACE verb, and reassembles the sampled spans: at least one complete
# multi-hop tree (client fetch root over proxy spans over an
# origin-serve, and one over a peer-serve) must come back, or span
# propagation / sampling coherence has broken.
cargo run --release -q -p baps-bench --bin trace_report -- \
    --live --require-multihop

echo "== live_load thread-scaling sweep (non-gating perf smoke)"
# Scaled-down sweep to catch serialization collapses (a global lock or an
# undersized downstream pool shows up as a multiple, not a percentage).
# Includes the connection-count axis: thread mode vs the reactor holding
# idle keep-alive connections (up to 10k registered fds) while serving
# active clients.
# Non-gating: loopback throughput on shared CI hosts is too noisy to fail
# the build on, so the curve is printed for eyeballing and the canonical
# numbers live in the committed BENCH_live.json.
cargo run --release -q -p baps-bench --bin live_load -- \
    --sweep --out target/BENCH_live.ci.json 4000 64 \
    || echo "perf smoke failed (non-gating)"

echo "CI OK"
