//! Integration tests of the `baps` command-line tool.

use std::path::PathBuf;
use std::process::Command;

fn baps() -> Command {
    Command::new(env!("CARGO_BIN_EXE_baps"))
}

fn tmpfile(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("baps-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn help_exits_zero() {
    let out = baps().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("generate"));
    assert!(text.contains("simulate"));
}

#[test]
fn unknown_command_fails() {
    let out = baps().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_info_simulate_pipeline() {
    let trace_path = tmpfile("pipeline.baps");
    let squid_path = tmpfile("pipeline.log");

    let out = baps()
        .args([
            "generate",
            "--profile",
            "canet",
            "--out",
            trace_path.to_str().unwrap(),
            "--scale",
            "0.02",
            "--squid",
            squid_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace_path.exists());
    assert!(squid_path.exists());

    let out = baps()
        .args(["info", trace_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("CA*netII"));
    assert!(text.contains("max hit ratio"));

    let out = baps()
        .args([
            "simulate",
            trace_path.to_str().unwrap(),
            "--all-orgs",
            "--proxy-frac",
            "0.1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("browsers-aware-proxy-server"));
    assert!(text.contains("proxy-and-local-browser"));

    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&squid_path);
}

#[test]
fn generate_requires_profile() {
    let out = baps()
        .args(["generate", "--out", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--profile"));
}

#[test]
fn simulate_rejects_bad_org() {
    let trace_path = tmpfile("badorg.baps");
    baps()
        .args([
            "generate",
            "--profile",
            "canet",
            "--out",
            trace_path.to_str().unwrap(),
            "--scale",
            "0.01",
        ])
        .output()
        .unwrap();
    let out = baps()
        .args(["simulate", trace_path.to_str().unwrap(), "--org", "bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --org"));
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn info_missing_file_fails() {
    let out = baps()
        .args(["info", "/nonexistent/trace.baps"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn demo_runs_end_to_end() {
    let out = baps().args(["demo", "--clients", "3"]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("peer browser cache"), "{text}");
}
