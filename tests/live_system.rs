//! Workspace integration test: the live TCP deployment driven through the
//! facade crate, replaying a small synthetic trace through real sockets and
//! cross-checking against the simulator's invariants.

use baps::proxy::{DocumentStore, Source, TestBed, TestBedConfig};
use baps::trace::SynthConfig;
use std::collections::HashMap;

#[test]
fn replay_synthetic_trace_through_live_proxy() {
    // A tiny workload replayed through real sockets.
    let mut synth = SynthConfig::small();
    synth.n_clients = 4;
    synth.n_requests = 300;
    synth.n_docs = 40;
    synth.p_size_change = 0.0;
    let trace = synth.generate(77);

    // Build the origin corpus: one body per doc id, sized from the trace.
    let mut sizes: HashMap<u32, u32> = HashMap::new();
    for r in trace.iter() {
        sizes.entry(r.doc.0).or_insert(r.size.clamp(64, 4096));
    }
    let mut store = DocumentStore::new();
    for (&doc, &size) in &sizes {
        store.insert(
            format!("http://origin/doc/{doc}"),
            vec![doc as u8; size as usize],
        );
    }

    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: 4,
            proxy_capacity: 24 << 10,
            browser_capacity: 12 << 10,
            ..TestBedConfig::default()
        },
    )
    .expect("test bed starts");

    let mut sources: HashMap<&'static str, u64> = HashMap::new();
    for req in trace.iter() {
        let url = format!("http://origin/doc/{}", req.doc.0);
        let result = bed.clients[req.client.index() % 4].fetch(&url).unwrap();
        let label = match result.source {
            Source::LocalBrowser => "local",
            Source::Proxy => "proxy",
            Source::ProxyDisk => "disk",
            Source::Peer => "peer",
            Source::Origin => "origin",
        };
        *sources.entry(label).or_insert(0) += 1;
        // Bodies always match the origin's content for that doc.
        assert_eq!(result.body[0], req.doc.0 as u8);
    }

    // Every request was served; the mix contains real cache hits.
    let total: u64 = sources.values().sum();
    assert_eq!(total, trace.len() as u64);
    assert!(
        *sources.get("local").unwrap_or(&0) > 0,
        "no local hits: {sources:?}"
    );
    assert!(
        *sources.get("proxy").unwrap_or(&0) > 0,
        "no proxy hits: {sources:?}"
    );

    // The proxy's own counters agree with what clients observed.
    let stats = bed.proxy.stats();
    assert_eq!(
        stats.proxy_hits,
        *sources.get("proxy").unwrap_or(&0),
        "proxy hit accounting"
    );
    assert_eq!(
        stats.peer_hits,
        *sources.get("peer").unwrap_or(&0),
        "peer hit accounting"
    );
    assert_eq!(
        stats.origin_fetches,
        *sources.get("origin").unwrap_or(&0),
        "origin fetch accounting"
    );
    // Origin server agrees too.
    assert_eq!(bed.origin.hits(), stats.origin_fetches);
    bed.shutdown();
}

#[test]
fn live_peer_hit_with_integrity_end_to_end() {
    let store = DocumentStore::synthetic(10, 500, 1_500, 3);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: 2,
            proxy_capacity: 2_000, // fits ~1-2 docs
            browser_capacity: 32 << 10,
            ..TestBedConfig::default()
        },
    )
    .unwrap();
    let body0 = bed.clients[0].fetch("http://origin/doc/0").unwrap().body;
    for i in 1..6 {
        bed.clients[0]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
    }
    let r = bed.clients[1].fetch("http://origin/doc/0").unwrap();
    assert_eq!(r.source, Source::Peer);
    assert_eq!(r.body, body0);
    bed.shutdown();
}

#[test]
fn stale_index_eviction_race_falls_back_and_heals() {
    // Race: a browser evicts a document, but the proxy's index still lists
    // it (the INVALIDATE hasn't happened — here we silently purge to model
    // the in-flight window). The next requester must transparently fall
    // back to the origin, and the stale index entry must be removed.
    let store = DocumentStore::synthetic(16, 200, 2_000, 42);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: 3,
            proxy_capacity: 2_500, // fits ~1 doc: forces the peer path
            browser_capacity: 64 << 10,
            ..TestBedConfig::default()
        },
    )
    .unwrap();
    let url0 = "http://origin/doc/0";
    let r0 = bed.clients[0].fetch(url0).unwrap();
    // Flush doc/0 out of the proxy cache so only client 0's browser has it.
    for i in 1..8 {
        bed.clients[2]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
    }

    // Evict behind the index's back: no INVALIDATE is sent.
    assert!(bed.clients[0].purge_local(url0), "doc was in the browser");
    assert!(
        bed.proxy.index_holds(0, url0),
        "index must still (wrongly) list client 0 as a holder"
    );

    // The probe gets 410 Gone, the proxy falls back to the origin, and the
    // requester still receives the correct bytes.
    let r1 = bed.clients[1].fetch(url0).unwrap();
    assert_eq!(r1.source, Source::Origin, "fallback must reach the origin");
    assert_eq!(r1.body, r0.body);

    let stats = bed.proxy.stats();
    assert!(stats.peer_failures >= 1, "probe failure counted: {stats:?}");
    assert!(
        stats.peer_fallbacks >= 1,
        "degraded fallback counted: {stats:?}"
    );
    assert!(
        !bed.proxy.index_holds(0, url0),
        "stale index entry must be invalidated after the failed probe"
    );
    bed.shutdown();
}

#[test]
fn client_survives_proxy_side_connection_drop() {
    let store = DocumentStore::synthetic(10, 200, 1_000, 9);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: 2,
            proxy_capacity: 64 << 10,
            browser_capacity: 32 << 10,
            ..TestBedConfig::default()
        },
    )
    .unwrap();

    // Warm the persistent connections with real traffic.
    let r0 = bed.clients[0].fetch("http://origin/doc/0").unwrap();
    assert_eq!(r0.source, Source::Origin);
    assert_eq!(bed.clients[0].reconnects(), 0);

    // The proxy abruptly severs every open connection (restart, idle
    // reaping, fault injection) — but keeps serving.
    bed.proxy.drop_connections();

    // Clients keep working: the stale connection is detected on the next
    // roundtrip, redialed transparently, and the request replayed.
    let r1 = bed.clients[0].fetch("http://origin/doc/1").unwrap();
    assert_eq!(r1.source, Source::Origin);
    let r2 = bed.clients[1].fetch("http://origin/doc/1").unwrap();
    assert_eq!(r2.source, Source::Proxy);
    assert_eq!(r2.body, r1.body);
    assert_eq!(bed.clients[0].reconnects(), 1);
    assert_eq!(bed.clients[1].reconnects(), 1);

    // A second drop mid-session is survived the same way.
    bed.proxy.drop_connections();
    let r3 = bed.clients[0].fetch("http://origin/doc/2").unwrap();
    assert_eq!(r3.source, Source::Origin);
    assert_eq!(bed.clients[0].reconnects(), 2);

    // Counters kept counting across the drops.
    assert_eq!(bed.proxy.stats().requests, 4);
    bed.shutdown();
}
