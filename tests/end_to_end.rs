//! Workspace integration tests: trace generation → simulation → metrics,
//! exercising the public facade the way a downstream user would.

use baps::core::{
    BrowserSizing, HitClass, LatencyParams, Organization, RemoteHitCaching, SystemConfig,
};
use baps::sim::{run, run_simple, run_sweep, scale_configs, PROXY_SCALE_POINTS};
use baps::trace::{Profile, SynthConfig, TraceStats};

fn trace() -> baps::trace::Trace {
    SynthConfig::small().scaled(0.4).generate(2002)
}

#[test]
fn five_organizations_ordering() {
    let trace = trace();
    let stats = TraceStats::compute(&trace);
    let proxy_capacity = (stats.infinite_cache_bytes / 20).max(1);
    let run_org = |org| {
        run(
            &trace,
            &stats,
            &SystemConfig::paper_default(org, proxy_capacity),
            &LatencyParams::paper(),
        )
    };
    let proxy_only = run_org(Organization::ProxyOnly);
    let browser_only = run_org(Organization::LocalBrowserOnly);
    let global = run_org(Organization::GlobalBrowsersOnly);
    let plb = run_org(Organization::ProxyAndLocalBrowser);
    let baps = run_org(Organization::BrowsersAware);

    // The paper's qualitative ordering (§4.1).
    assert!(baps.hit_ratio() >= plb.hit_ratio(), "BAPS >= P+LB");
    assert!(baps.hit_ratio() > proxy_only.hit_ratio(), "BAPS > P-only");
    assert!(baps.hit_ratio() > global.hit_ratio(), "BAPS > GB-only");
    assert!(
        plb.hit_ratio() >= proxy_only.hit_ratio(),
        "P+LB >= P-only (local browser adds a little)"
    );
    assert!(
        browser_only.hit_ratio() < plb.hit_ratio(),
        "B-only lowest among proxy-ful systems"
    );
    // Everything bounded by the infinite-cache maximum.
    for r in [&proxy_only, &browser_only, &global, &plb, &baps] {
        assert!(r.hit_ratio() <= stats.max_hit_ratio + 1e-9);
        assert!(r.byte_hit_ratio() <= stats.max_byte_hit_ratio + 1e-9);
    }
}

#[test]
fn browsers_aware_gain_comes_from_remote_hits() {
    let trace = trace();
    let stats = TraceStats::compute(&trace);
    let proxy_capacity = (stats.infinite_cache_bytes / 20).max(1);
    let baps = run(
        &trace,
        &stats,
        &SystemConfig::paper_default(Organization::BrowsersAware, proxy_capacity),
        &LatencyParams::paper(),
    );
    let plb = run(
        &trace,
        &stats,
        &SystemConfig::paper_default(Organization::ProxyAndLocalBrowser, proxy_capacity),
        &LatencyParams::paper(),
    );
    assert!(baps.metrics.remote_browser.count > 0);
    let gain_requests =
        (baps.hit_ratio() - plb.hit_ratio()) / 100.0 * baps.metrics.requests() as f64;
    // The entire hit-count gain must be attributable to remote-browser hits
    // (local/proxy classes can shift slightly, hence the inequality).
    assert!(
        baps.metrics.remote_browser.count as f64 >= gain_requests - 1.0,
        "remote hits {} cannot explain gain {gain_requests}",
        baps.metrics.remote_browser.count
    );
}

#[test]
fn larger_proxies_help_monotonically() {
    let trace = trace();
    let stats = TraceStats::compute(&trace);
    let base = SystemConfig::paper_default(Organization::BrowsersAware, 0);
    let configs = scale_configs(&base, stats.infinite_cache_bytes, &PROXY_SCALE_POINTS);
    let results = run_sweep(&trace, &stats, &configs, &LatencyParams::paper());
    for pair in results.windows(2) {
        assert!(
            pair[1].hit_ratio() >= pair[0].hit_ratio() - 0.5,
            "hit ratio should not collapse as the proxy grows"
        );
    }
}

#[test]
fn breakdown_sums_to_hit_ratio() {
    let trace = trace();
    let cfg = SystemConfig::paper_default(Organization::BrowsersAware, 1 << 22);
    let r = run_simple(&trace, &cfg);
    let sum = r.metrics.class_ratio(HitClass::LocalBrowser)
        + r.metrics.class_ratio(HitClass::Proxy)
        + r.metrics.class_ratio(HitClass::RemoteBrowser);
    assert!((sum - r.hit_ratio()).abs() < 1e-9);
    let with_miss = sum + r.metrics.class_ratio(HitClass::Miss);
    assert!((with_miss - 100.0).abs() < 1e-9);
}

#[test]
fn remote_hit_caching_increases_local_hits() {
    let trace = trace();
    let stats = TraceStats::compute(&trace);
    let mut cfg = SystemConfig::paper_default(
        Organization::BrowsersAware,
        (stats.infinite_cache_bytes / 50).max(1),
    );
    cfg.browser_sizing = BrowserSizing::AverageK(4.0);
    let no_cache = run(&trace, &stats, &cfg, &LatencyParams::paper());
    cfg.remote_hit_caching = RemoteHitCaching::CacheAtRequester;
    let cache_req = run(&trace, &stats, &cfg, &LatencyParams::paper());
    // Re-caching forwarded copies converts future remote hits into local
    // ones (total hit ratio stays in the same neighbourhood).
    assert!(
        cache_req.metrics.local_browser.count >= no_cache.metrics.local_browser.count,
        "caching at requester should not lose local hits"
    );
}

#[test]
fn profile_generation_matches_targets_roughly() {
    // Scaled-down profile should stay in the target's neighbourhood.
    let trace = Profile::NlanrBo1.generate_scaled(0.05);
    let stats = TraceStats::compute(&trace);
    let targets = Profile::NlanrBo1.targets();
    assert!((stats.max_hit_ratio - targets.max_hit_ratio).abs() < 12.0);
    assert!(stats.max_byte_hit_ratio < stats.max_hit_ratio);
    assert_eq!(stats.clients, targets.clients);
}
