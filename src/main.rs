//! `baps` — command-line front end for the Browsers-Aware Proxy Server
//! reproduction.
//!
//! ```text
//! baps generate --profile uc --out trace.baps [--scale 0.1] [--squid log.txt]
//! baps info trace.baps
//! baps simulate trace.baps [--org baps] [--proxy-frac 0.10] [--all-orgs]
//! baps demo [--clients 4] [--docs 32] [--direct]
//! ```

use baps::core::{HitClass, LatencyParams, Organization, SystemConfig};
use baps::proxy::{DocumentStore, Source, TestBed, TestBedConfig};
use baps::sim::{pct, run_sweep, Table};
use baps::trace::{
    read_trace, write_squid_log, write_trace, ExportNames, Profile, Trace, TraceStats,
};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command: {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "baps — browsers-aware proxy server (IPDPS 2002 reproduction)\n\n\
         USAGE:\n  \
         baps generate --profile <uc|bo1|bu95|bu98|canet> --out <file> [--scale <f>] [--squid <file>]\n  \
         baps info <trace-file>\n  \
         baps simulate <trace-file> [--org <p|b|gb|plb|baps>] [--proxy-frac <f>] [--all-orgs]\n  \
         baps demo [--clients <n>] [--docs <n>] [--direct]\n\n\
         Experiment binaries live in baps-bench; see README.md."
    );
}

fn parse_profile(name: &str) -> Result<Profile, String> {
    Ok(match name {
        "uc" => Profile::NlanrUc,
        "bo1" => Profile::NlanrBo1,
        "bu95" => Profile::Bu95,
        "bu98" => Profile::Bu98,
        "canet" => Profile::CaNetII,
        other => return Err(format!("unknown profile {other} (uc|bo1|bu95|bu98|canet)")),
    })
}

/// Extracts `--flag value` pairs and positional arguments.
fn parse_flags(args: &[String]) -> (Vec<String>, Vec<(String, String)>, Vec<String>) {
    let mut positional = Vec::new();
    let mut pairs = Vec::new();
    let mut switches = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            match it.peek() {
                Some(value) if !value.starts_with("--") => {
                    pairs.push((name.to_owned(), it.next().expect("peeked").clone()));
                }
                _ => switches.push(name.to_owned()),
            }
        } else {
            positional.push(arg.clone());
        }
    }
    (positional, pairs, switches)
}

fn flag<'a>(pairs: &'a [(String, String)], name: &str) -> Option<&'a str> {
    pairs
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (_, pairs, _) = parse_flags(args);
    let profile = parse_profile(flag(&pairs, "profile").ok_or("--profile required")?)?;
    let out = flag(&pairs, "out").ok_or("--out required")?;
    let scale: f64 = flag(&pairs, "scale")
        .map(|s| s.parse().map_err(|e| format!("bad --scale: {e}")))
        .transpose()?
        .unwrap_or(1.0);
    if !(0.0 < scale && scale <= 1.0) {
        return Err("--scale must be in (0, 1]".into());
    }

    eprintln!("generating {} at scale {scale}...", profile.name());
    let trace = if scale >= 1.0 {
        profile.generate()
    } else {
        profile.generate_scaled(scale)
    };
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    write_trace(&mut BufWriter::new(file), &trace).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("wrote {} requests to {out}", trace.len());

    if let Some(squid_path) = flag(&pairs, "squid") {
        let file = File::create(squid_path).map_err(|e| format!("create {squid_path}: {e}"))?;
        write_squid_log(&mut BufWriter::new(file), &trace, &ExportNames::default())
            .map_err(|e| format!("write {squid_path}: {e}"))?;
        eprintln!("wrote Squid-format log to {squid_path}");
    }
    Ok(())
}

fn load(path: &str) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    read_trace(&mut BufReader::new(file)).map_err(|e| format!("read {path}: {e}"))
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let (positional, ..) = parse_flags(args);
    let path = positional.first().ok_or("usage: baps info <trace-file>")?;
    let trace = load(path)?;
    let stats = TraceStats::compute(&trace);
    println!("trace:               {}", trace.name);
    println!("requests:            {}", stats.requests);
    println!("clients:             {}", stats.clients);
    println!("unique documents:    {}", stats.unique_docs);
    println!("total volume:        {:.3} GB", stats.total_gb());
    println!("infinite cache:      {:.3} GB", stats.infinite_gb());
    println!("mean document size:  {:.0} B", stats.mean_doc_size);
    println!("size-change misses:  {}", stats.size_changes);
    println!("max hit ratio:       {:.2}%", stats.max_hit_ratio);
    println!("max byte hit ratio:  {:.2}%", stats.max_byte_hit_ratio);
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let (positional, pairs, switches) = parse_flags(args);
    let path = positional
        .first()
        .ok_or("usage: baps simulate <trace-file> [options]")?;
    let trace = load(path)?;
    let stats = TraceStats::compute(&trace);
    let proxy_frac: f64 = flag(&pairs, "proxy-frac")
        .map(|s| s.parse().map_err(|e| format!("bad --proxy-frac: {e}")))
        .transpose()?
        .unwrap_or(0.10);
    let proxy_capacity = ((stats.infinite_cache_bytes as f64 * proxy_frac) as u64).max(1);

    let orgs: Vec<Organization> = if switches.iter().any(|s| s == "all-orgs") {
        Organization::all().to_vec()
    } else {
        let org = match flag(&pairs, "org").unwrap_or("baps") {
            "p" => Organization::ProxyOnly,
            "b" => Organization::LocalBrowserOnly,
            "gb" => Organization::GlobalBrowsersOnly,
            "plb" => Organization::ProxyAndLocalBrowser,
            "baps" => Organization::BrowsersAware,
            other => return Err(format!("unknown --org {other} (p|b|gb|plb|baps)")),
        };
        vec![org]
    };

    let configs: Vec<SystemConfig> = orgs
        .iter()
        .map(|&org| SystemConfig::paper_default(org, proxy_capacity))
        .collect();
    let results = run_sweep(&trace, &stats, &configs, &LatencyParams::paper());

    let mut table = Table::new(vec![
        "organization",
        "HR %",
        "BHR %",
        "local %",
        "proxy %",
        "remote %",
        "mean svc (ms)",
    ]);
    for (cfg, r) in configs.iter().zip(&results) {
        table.row(vec![
            cfg.organization.name().to_owned(),
            pct(r.hit_ratio()),
            pct(r.byte_hit_ratio()),
            pct(r.metrics.class_ratio(HitClass::LocalBrowser)),
            pct(r.metrics.class_ratio(HitClass::Proxy)),
            pct(r.metrics.class_ratio(HitClass::RemoteBrowser)),
            format!("{:.1}", r.histograms.all.mean_ms()),
        ]);
    }
    println!(
        "{}: {} requests, proxy at {:.1}% of infinite cache ({} bytes)\n",
        trace.name,
        trace.len(),
        proxy_frac * 100.0,
        proxy_capacity
    );
    print!("{}", table.render());
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let (_, pairs, switches) = parse_flags(args);
    let n_clients: u32 = flag(&pairs, "clients")
        .map(|s| s.parse().map_err(|e| format!("bad --clients: {e}")))
        .transpose()?
        .unwrap_or(4);
    let n_docs: usize = flag(&pairs, "docs")
        .map(|s| s.parse().map_err(|e| format!("bad --docs: {e}")))
        .transpose()?
        .unwrap_or(32);
    let direct = switches.iter().any(|s| s == "direct");
    if n_clients < 2 {
        return Err("--clients must be >= 2".into());
    }

    let store = DocumentStore::synthetic(n_docs, 300, 3_000, 11);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients,
            proxy_capacity: 4_000,
            browser_capacity: 64 << 10,
            direct_forward: direct,
            ..TestBedConfig::default()
        },
    )
    .map_err(|e| format!("start test bed: {e}"))?;
    println!(
        "live system up: origin {}, proxy {}, {n_clients} clients (forward mode: {})",
        bed.origin.addr(),
        bed.proxy.addr(),
        if direct { "direct push" } else { "proxy relay" }
    );

    // Drive a workload that produces every hit class:
    // 1. client 0 pulls doc/0 from the origin;
    // 2. every client re-fetches doc/0 (proxy hits, then local hits);
    // 3. the last client churns the tiny proxy cache;
    // 4. client 1 evicts its copy and re-fetches doc/0 — now only peer
    //    browsers hold it.
    let mut sources = std::collections::HashMap::new();
    let mut record = |r: &baps::proxy::FetchResult| {
        *sources.entry(format!("{:?}", r.source)).or_insert(0u32) += 1;
    };
    let url0 = "http://origin/doc/0";
    for pass in 0..2 {
        for (i, client) in bed.clients.iter().enumerate() {
            let r = client.fetch(url0).map_err(|e| format!("fetch: {e}"))?;
            record(&r);
            if pass == 0 && i == 0 {
                println!("  client 0 fetched doc/0 from {:?}", r.source);
            }
        }
    }
    let churner = bed.clients.last().expect(">= 2 clients");
    for doc in 1..n_docs.min(8) {
        let r = churner
            .fetch(&format!("http://origin/doc/{doc}"))
            .map_err(|e| format!("fetch: {e}"))?;
        record(&r);
    }
    bed.clients[1]
        .evict(url0)
        .map_err(|e| format!("evict: {e}"))?;
    let r = bed.clients[1]
        .fetch(url0)
        .map_err(|e| format!("fetch: {e}"))?;
    record(&r);
    println!(
        "  client 1 re-fetched doc/0 after proxy churn: {:?}{}",
        r.source,
        if r.source == Source::Peer {
            " (served from a peer browser cache, watermark verified)"
        } else {
            ""
        }
    );
    let stats = bed.proxy.stats();
    println!("\nfetch sources: {sources:?}");
    println!(
        "proxy: {} requests, {} proxy hits, {} peer hits ({} direct), {} origin fetches, {} invalidations",
        stats.requests,
        stats.proxy_hits,
        stats.peer_hits,
        stats.direct_pushes,
        stats.origin_fetches,
        stats.invalidations
    );
    bed.shutdown();
    Ok(())
}
