//! # baps — Browsers-Aware Proxy Server
//!
//! A production-quality Rust reproduction of *"On Reliable and Scalable
//! Peer-to-Peer Web Document Sharing"* (Xiao, Zhang, Xu — IPDPS 2002): a
//! proxy server that indexes its clients' browser caches and serves proxy
//! misses out of *peer* browsers, with data-integrity (digital watermark)
//! and communication-anonymity protocols on top.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`trace`] — workload model, synthetic trace generator with profiles
//!   calibrated to the paper's Table 1, and real log parsers;
//! * [`cache`] — byte-budgeted LRU / LFU / GDSF / SIZE / FIFO caches and
//!   the memory+disk tier model;
//! * [`index`] — exact, delayed and Bloom-summary browser indexes;
//! * [`core`] — the five caching organizations, configuration and the
//!   analytic latency model;
//! * [`sim`] — the trace-driven simulator and experiment harness;
//! * [`crypto`] — MD5/RSA/XTEA and the §6 reliability protocols;
//! * [`proxy`] — a live, threaded browsers-aware proxy over TCP.
//!
//! ## Quickstart
//!
//! ```
//! use baps::core::{Organization, SystemConfig};
//! use baps::sim::run_simple;
//! use baps::trace::SynthConfig;
//!
//! let trace = SynthConfig::small().scaled(0.1).generate(42);
//! let cfg = SystemConfig::paper_default(Organization::BrowsersAware, 1 << 20);
//! let result = run_simple(&trace, &cfg);
//! println!("hit ratio: {:.2}%", result.hit_ratio());
//! assert!(result.hit_ratio() > 0.0);
//! ```

#![warn(missing_docs)]

pub use baps_cache as cache;
pub use baps_core as core;
pub use baps_crypto as crypto;
pub use baps_index as index;
pub use baps_proxy as proxy;
pub use baps_sim as sim;
pub use baps_trace as trace;
