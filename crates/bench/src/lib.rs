//! Shared plumbing for the experiment binaries.
//!
//! Every binary regenerates one table or figure of the paper. All of them
//! accept `--scale <frac>` (default 1.0) to shrink the workloads for quick
//! smoke runs, and print paper-reported anchors next to measured values so
//! calibration drift is visible. Use `--csv` to emit machine-readable
//! output instead of the ASCII table.

#![warn(missing_docs)]

pub mod critical_path;
pub mod scenario;

use baps_trace::{Profile, Trace, TraceStats};

/// Command-line options common to all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    /// Workload scale factor in (0, 1].
    pub scale: f64,
    /// Emit CSV instead of ASCII tables.
    pub csv: bool,
}

impl Cli {
    /// Parses `--scale <f>` and `--csv` from `std::env::args`.
    pub fn parse() -> Cli {
        let mut scale = 1.0f64;
        let mut csv = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args
                        .next()
                        .and_then(|s| s.parse::<f64>().ok())
                        .unwrap_or_else(|| die("--scale needs a number in (0, 1]"));
                    if !(v > 0.0 && v <= 1.0) {
                        die("--scale must be in (0, 1]");
                    }
                    scale = v;
                }
                "--csv" => csv = true,
                "--help" | "-h" => {
                    println!("usage: <bin> [--scale <frac>] [--csv]");
                    std::process::exit(0);
                }
                other => die(&format!("unknown argument: {other}")),
            }
        }
        Cli { scale, csv }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

/// Generates a profile trace at the CLI scale and computes its statistics.
pub fn load_profile(profile: Profile, cli: Cli) -> (Trace, TraceStats) {
    let trace = if cli.scale >= 1.0 {
        profile.generate()
    } else {
        profile.generate_scaled(cli.scale)
    };
    let stats = TraceStats::compute(&trace);
    (trace, stats)
}

/// Prints a section header.
pub fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

/// Formats an `Option<f64>`-like paper anchor: `-` when unknown.
pub fn anchor(v: f64, known: bool) -> String {
    if known {
        format!("{v:.2}")
    } else {
        "~".to_owned() + &format!("{v:.0}")
    }
}

use baps_core::{BrowserSizing, LatencyParams, Organization, SystemConfig};
use baps_sim::{pct, run_matrix, run_sweep, MatrixGroup, RunResult, Table, PROXY_SCALE_POINTS};

/// Builds the scale-point configurations for one organization.
fn org_configs(
    stats: &TraceStats,
    org: Organization,
    browser_sizing_for: &impl Fn(f64) -> BrowserSizing,
) -> Vec<SystemConfig> {
    PROXY_SCALE_POINTS
        .iter()
        .map(|&frac| {
            let mut cfg = SystemConfig::paper_default(
                org,
                ((stats.infinite_cache_bytes as f64 * frac).round() as u64).max(1),
            );
            cfg.browser_sizing = browser_sizing_for(frac);
            cfg
        })
        .collect()
}

/// Runs one organization across the paper's proxy scale points.
///
/// `browser_sizing_for` maps each scale fraction to the browser sizing rule
/// (Fig. 2 uses `Minimum`; Figs. 4–7 scale browser caches with the same
/// fraction of the average infinite browser cache).
pub fn sweep_org(
    trace: &Trace,
    stats: &TraceStats,
    org: Organization,
    browser_sizing_for: impl Fn(f64) -> BrowserSizing,
) -> Vec<RunResult> {
    let configs = org_configs(stats, org, &browser_sizing_for);
    run_sweep(trace, stats, &configs, &LatencyParams::paper())
}

/// Runs several organizations across the paper's proxy scale points
/// through one pooled [`run_matrix`] call, so no worker idles at an
/// organization boundary. Results arrive in `orgs` order and are
/// identical to calling [`sweep_org`] per organization.
pub fn sweep_orgs(
    trace: &Trace,
    stats: &TraceStats,
    orgs: &[Organization],
    browser_sizing_for: impl Fn(f64) -> BrowserSizing,
) -> Vec<Vec<RunResult>> {
    let latency = LatencyParams::paper();
    let config_lists: Vec<Vec<SystemConfig>> = orgs
        .iter()
        .map(|&org| org_configs(stats, org, &browser_sizing_for))
        .collect();
    let groups: Vec<MatrixGroup<'_>> = config_lists
        .iter()
        .map(|configs| MatrixGroup {
            trace,
            stats,
            configs,
            latency: &latency,
        })
        .collect();
    run_matrix(&groups).0
}

/// Renders the two-organization comparison used by Figs. 4–7: hit ratios
/// and byte hit ratios of browsers-aware vs proxy-and-local-browser at each
/// proxy scale point, with browser caches scaled by the same fraction of
/// the average infinite browser cache ("average" sizing).
pub fn print_two_org_figure(profile: Profile, cli: Cli, figure: &str) {
    banner(&format!(
        "{figure}: {} — browsers-aware vs proxy-and-local-browser (avg browser cache)",
        profile.name()
    ));
    let (trace, stats) = load_profile(profile, cli);
    let sizing = BrowserSizing::FractionOfClientInfinite;
    let mut runs = sweep_orgs(
        &trace,
        &stats,
        &[
            Organization::BrowsersAware,
            Organization::ProxyAndLocalBrowser,
        ],
        sizing,
    )
    .into_iter();
    let baps = runs.next().expect("browsers-aware sweep");
    let plb = runs.next().expect("proxy-and-local-browser sweep");

    let header: Vec<String> = std::iter::once("series".to_owned())
        .chain(PROXY_SCALE_POINTS.iter().map(|f| format!("{}%", f * 100.0)))
        .collect();
    let mut hr = Table::new(header.clone());
    let mut bhr = Table::new(header);
    let row = |label: &str, results: &[RunResult], byte: bool| -> Vec<String> {
        std::iter::once(label.to_owned())
            .chain(results.iter().map(|r| {
                pct(if byte {
                    r.byte_hit_ratio()
                } else {
                    r.hit_ratio()
                })
            }))
            .collect()
    };
    hr.row(row("browsers-aware-proxy-server", &baps, false));
    hr.row(row("proxy-and-local-browser", &plb, false));
    bhr.row(row("browsers-aware-proxy-server", &baps, true));
    bhr.row(row("proxy-and-local-browser", &plb, true));

    if cli.csv {
        println!("# hit ratios (%)\n{}", hr.to_csv());
        println!("# byte hit ratios (%)\n{}", bhr.to_csv());
    } else {
        println!("Hit ratios (%) by proxy cache size (% of infinite cache):");
        print!("{}", hr.render());
        println!("\nByte hit ratios (%):");
        print!("{}", bhr.render());
    }
    let max_hr_gain = baps
        .iter()
        .zip(&plb)
        .map(|(a, b)| a.hit_ratio() - b.hit_ratio())
        .fold(f64::MIN, f64::max);
    let max_bhr_gain = baps
        .iter()
        .zip(&plb)
        .map(|(a, b)| a.byte_hit_ratio() - b.byte_hit_ratio())
        .fold(f64::MIN, f64::max);
    println!(
        "\nmax gain of browsers-aware over proxy-and-local-browser: \
         +{:.2} points hit ratio, +{:.2} points byte hit ratio",
        max_hr_gain, max_bhr_gain
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_profile_scales() {
        let cli = Cli {
            scale: 0.02,
            csv: false,
        };
        let (trace, stats) = load_profile(Profile::NlanrUc, cli);
        assert!(trace.len() > 1_000);
        assert_eq!(stats.requests, trace.len() as u64);
    }

    #[test]
    fn anchor_formats() {
        assert_eq!(anchor(14.8, true), "14.80");
        assert_eq!(anchor(33.0, false), "~33");
    }
}
