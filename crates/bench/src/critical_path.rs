//! Critical-path attribution over assembled span trees.
//!
//! Shared by the `trace_report` binary and `live_load`'s
//! `critical_path` block in BENCH_live.json: given the span trees
//! reconstructed from a `TRACE BAPS/1.0` dump, aggregate per-kind
//! latency distributions two ways — **total** (the span's own duration)
//! and **self** (duration minus the children's, i.e. the time this step
//! contributes to the critical path rather than delegating downstream).

use baps_obs::span::{SpanNode, SpanTree};
use baps_obs::LatencyHistogram;

/// Aggregated latency for one span kind across a set of trees.
#[derive(Debug, Clone)]
pub struct KindStats {
    /// The span kind name (e.g. `"origin-fetch"`, `"queue-wait"`).
    pub kind: String,
    /// Spans of this kind seen.
    pub count: u64,
    /// Distribution of whole-span durations.
    pub total: LatencyHistogram,
    /// Distribution of self time (duration minus children) — the
    /// critical-path share attributable to this step itself.
    pub self_time: LatencyHistogram,
}

/// Computes per-kind attribution over `trees`, sorted by descending
/// total p99 so the dominant step leads the table.
pub fn attribution(trees: &[SpanTree]) -> Vec<KindStats> {
    use std::collections::BTreeMap;
    let mut by_kind: BTreeMap<String, KindStats> = BTreeMap::new();
    for tree in trees {
        tree.root.walk(&mut |node: &SpanNode, _| {
            let entry = by_kind
                .entry(node.record.kind.clone())
                .or_insert_with(|| KindStats {
                    kind: node.record.kind.clone(),
                    count: 0,
                    total: LatencyHistogram::new(),
                    self_time: LatencyHistogram::new(),
                });
            entry.count += 1;
            entry.total.record(node.record.dur_us as f64 / 1_000.0);
            entry.self_time.record(node.self_us() as f64 / 1_000.0);
        });
    }
    let mut stats: Vec<KindStats> = by_kind.into_values().collect();
    stats.sort_by(|a, b| {
        b.total
            .quantile_ms(0.99)
            .total_cmp(&a.total.quantile_ms(0.99))
            .then_with(|| a.kind.cmp(&b.kind))
    });
    stats
}

/// Renders the attribution as an aligned ASCII table.
pub fn render_table(stats: &[KindStats]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
        "kind", "spans", "p50 ms", "p99 ms", "self p50", "self p99"
    ));
    for s in stats {
        out.push_str(&format!(
            "{:<16} {:>7} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
            s.kind,
            s.count,
            s.total.quantile_ms(0.50),
            s.total.quantile_ms(0.99),
            s.self_time.quantile_ms(0.50),
            s.self_time.quantile_ms(0.99),
        ));
    }
    out
}

/// Renders the attribution as the JSON array used by BENCH_live.json's
/// `critical_path` block (the workspace serde is a no-op shim, so this
/// is rendered by hand like every other JSON writer in-tree).
pub fn render_json(stats: &[KindStats], indent: &str) -> String {
    let rows: Vec<String> = stats
        .iter()
        .map(|s| {
            format!(
                "{indent}{{\"kind\": \"{}\", \"spans\": {}, \
                 \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
                 \"self_p50_ms\": {:.3}, \"self_p99_ms\": {:.3}}}",
                s.kind,
                s.count,
                s.total.quantile_ms(0.50),
                s.total.quantile_ms(0.99),
                s.self_time.quantile_ms(0.50),
                s.self_time.quantile_ms(0.99),
            )
        })
        .collect();
    rows.join(",\n")
}

/// Renders one tree as an indented outline, one span per line.
pub fn render_tree(tree: &SpanTree) -> String {
    let mut out = format!("trace {}\n", tree.trace);
    tree.root.walk(&mut |node: &SpanNode, depth| {
        out.push_str(&format!(
            "{}{} {:.3} ms  [{}]\n",
            "  ".repeat(depth + 1),
            node.record.kind,
            node.record.dur_us as f64 / 1_000.0,
            node.record.detail,
        ));
    });
    out
}

/// Whether `tree` demonstrates a complete multi-process request: a
/// client-side `fetch` root, at least one proxy-side hop under it, and a
/// span recorded by a *third* process (the origin's serve span, or a
/// peer's serve/deliver span).
pub fn is_multihop(tree: &SpanTree) -> bool {
    const PROXY_KINDS: &[&str] = &[
        "queue-wait",
        "wait-for-shard",
        "disk-read",
        "peer-probe",
        "push-order",
        "origin-fetch",
        "coalesced",
    ];
    const FAR_KINDS: &[&str] = &["origin-serve", "peer-serve", "deliver"];
    tree.root.record.kind == "fetch"
        && PROXY_KINDS.iter().any(|k| tree.root.contains_kind(k))
        && FAR_KINDS.iter().any(|k| tree.root.contains_kind(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use baps_obs::span::{assemble, SpanRecord};
    use baps_obs::{SpanId, TraceId};

    fn rec(span: u64, parent: u64, kind: &str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            trace: TraceId(7),
            span: SpanId(span),
            parent: SpanId(parent),
            kind: kind.to_owned(),
            start_us: start,
            dur_us: dur,
            detail: String::new(),
        }
    }

    #[test]
    fn attribution_separates_self_from_total() {
        let trees = assemble(&[
            rec(1, 0, "fetch", 0, 10_000),
            rec(2, 1, "origin-fetch", 2_000, 6_000),
            rec(3, 2, "origin-serve", 3_000, 1_000),
        ]);
        let stats = attribution(&trees);
        let fetch = stats.iter().find(|s| s.kind == "fetch").unwrap();
        assert_eq!(fetch.count, 1);
        // total 10 ms, self 10 - 6 = 4 ms.
        assert!(fetch.total.quantile_ms(0.5) >= 4.0);
        assert!(fetch.self_time.quantile_ms(0.5) <= fetch.total.quantile_ms(0.5));
    }

    #[test]
    fn multihop_requires_three_processes() {
        let full = assemble(&[
            rec(1, 0, "fetch", 0, 10_000),
            rec(2, 1, "origin-fetch", 2_000, 6_000),
            rec(3, 2, "origin-serve", 3_000, 1_000),
        ]);
        assert!(is_multihop(&full[0]));

        // Client + proxy only: not multihop.
        let two = assemble(&[
            rec(1, 0, "fetch", 0, 10_000),
            rec(2, 1, "origin-fetch", 2_000, 6_000),
        ]);
        assert!(!is_multihop(&two[0]));

        // Proxy-rooted fragment (client root dropped): not multihop.
        let frag = assemble(&[
            rec(2, 1, "origin-fetch", 2_000, 6_000),
            rec(3, 2, "origin-serve", 3_000, 1_000),
        ]);
        assert!(!is_multihop(&frag[0]));
    }
}
