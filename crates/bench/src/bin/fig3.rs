//! Figure 3: breakdowns of the browsers-aware proxy server's hit ratios and
//! byte hit ratios on NLANR-uc (minimum browser caches): how much is served
//! by the local browser, the proxy cache, and remote browser caches.
//!
//! Paper anchor: the remote-browsers share is non-negligible even at very
//! small browser cache sizes.

use baps_bench::{banner, load_profile, sweep_org, Cli};
use baps_core::{BrowserSizing, HitClass, Organization};
use baps_sim::{pct, Table, PROXY_SCALE_POINTS};
use baps_trace::Profile;

fn main() {
    let cli = Cli::parse();
    banner("Figure 3: browsers-aware hit-ratio breakdowns on NLANR-uc (min browser cache)");
    let (trace, stats) = load_profile(Profile::NlanrUc, cli);
    let runs = sweep_org(&trace, &stats, Organization::BrowsersAware, |_| {
        BrowserSizing::Minimum
    });

    let header: Vec<String> = std::iter::once("component".to_owned())
        .chain(PROXY_SCALE_POINTS.iter().map(|f| format!("{}%", f * 100.0)))
        .collect();
    let classes = [
        ("local-browser", HitClass::LocalBrowser),
        ("proxy", HitClass::Proxy),
        ("remote-browsers", HitClass::RemoteBrowser),
    ];
    for (byte, title) in [
        (false, "Hit ratio breakdown (%)"),
        (true, "Byte hit ratio breakdown (%)"),
    ] {
        let mut table = Table::new(header.clone());
        for (label, class) in classes {
            let cells: Vec<String> = std::iter::once(label.to_owned())
                .chain(runs.iter().map(|r| {
                    pct(if byte {
                        r.metrics.class_byte_ratio(class)
                    } else {
                        r.metrics.class_ratio(class)
                    })
                }))
                .collect();
            table.row(cells);
        }
        let total: Vec<String> = std::iter::once("total".to_owned())
            .chain(runs.iter().map(|r| {
                pct(if byte {
                    r.byte_hit_ratio()
                } else {
                    r.hit_ratio()
                })
            }))
            .collect();
        table.row(total);
        if cli.csv {
            println!("# {title}\n{}", table.to_csv());
        } else {
            println!("{title} by proxy cache size (% of infinite cache):");
            print!("{}", table.render());
            println!();
        }
    }
    let min_remote = runs
        .iter()
        .map(|r| r.metrics.class_ratio(HitClass::RemoteBrowser))
        .fold(f64::MAX, f64::min);
    println!(
        "remote-browser share is at least {:.2}% of all requests across the sweep \
         (paper: \"should not be neglected even when the browser cache size is very small\")",
        min_remote
    );
}
