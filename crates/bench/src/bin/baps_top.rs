//! `baps_top` — a live terminal dashboard for a running BAPS proxy.
//!
//! Scrapes `STATS` + `METRICS` + `HEALTH` once per interval (1 Hz by
//! default) over one keep-alive connection and renders an at-a-glance
//! view: rolling request/error rates with a sparkline of recent history,
//! the serve-tier split, worker/reactor saturation gauges, and the
//! active SLO alerts with their exemplar trace ids (each fetchable via
//! `TRACE`).
//!
//! ```text
//! baps_top --addr 127.0.0.1:4080            # watch a running proxy
//! baps_top --demo                           # self-hosted demo deployment
//! baps_top --demo --iterations 5 --plain    # bounded, no ANSI (CI/pipes)
//! ```
//!
//! `--interval-ms` tunes the scrape cadence; `--iterations 0` (default
//! with `--addr`) runs until interrupted. `--plain` appends frames as
//! plain text instead of redrawing the screen.

use baps_obs::prom;
use baps_proxy::{
    read_message, response_code, write_message, DocumentStore, HealthReport, Message, TestBed,
    TestBedConfig, Verdict,
};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sparkline glyphs, lowest to highest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
/// Sparkline history length (seconds of req/s kept on screen).
const HISTORY: usize = 60;

struct Args {
    addr: Option<SocketAddr>,
    demo: bool,
    iterations: u64,
    interval: Duration,
    plain: bool,
}

fn fail(what: &str) -> ! {
    eprintln!("error: {what}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: None,
        demo: false,
        iterations: 0,
        interval: Duration::from_millis(1000),
        plain: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--addr" => {
                out.addr = Some(
                    value("--addr")
                        .parse()
                        .unwrap_or_else(|_| fail("--addr wants host:port")),
                )
            }
            "--demo" => out.demo = true,
            "--iterations" => {
                out.iterations = value("--iterations")
                    .parse()
                    .unwrap_or_else(|_| fail("--iterations wants a number"))
            }
            "--interval-ms" => {
                out.interval = Duration::from_millis(
                    value("--interval-ms")
                        .parse()
                        .unwrap_or_else(|_| fail("--interval-ms wants a number")),
                )
            }
            "--plain" => out.plain = true,
            "--help" | "-h" => {
                println!(
                    "usage: baps_top (--addr <host:port> | --demo) \
                     [--iterations N] [--interval-ms M] [--plain]"
                );
                std::process::exit(0);
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    if out.addr.is_some() == out.demo {
        fail("pass exactly one of --addr or --demo");
    }
    if out.demo && out.iterations == 0 {
        out.iterations = 10;
    }
    out
}

/// One keep-alive scrape connection speaking the BAPS admin verbs.
struct Scraper {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Scraper {
    fn connect(addr: SocketAddr) -> std::io::Result<Scraper> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        Ok(Scraper {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn roundtrip(&mut self, verb: &str) -> std::io::Result<Message> {
        write_message(&mut self.writer, &Message::new(format!("{verb} BAPS/1.0")))?;
        read_message(&mut self.reader)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "proxy closed connection")
        })
    }
}

/// One rendered frame's inputs.
struct Frame {
    stats: Message,
    samples: Vec<prom::Sample>,
    health: HealthReport,
}

fn scrape(s: &mut Scraper) -> Result<Frame, String> {
    let stats = s.roundtrip("STATS").map_err(|e| format!("STATS: {e}"))?;
    let metrics = s
        .roundtrip("METRICS")
        .map_err(|e| format!("METRICS: {e}"))?;
    let health = s.roundtrip("HEALTH").map_err(|e| format!("HEALTH: {e}"))?;
    for (verb, reply) in [
        ("STATS", &stats),
        ("METRICS", &metrics),
        ("HEALTH", &health),
    ] {
        if response_code(reply) != Some(200) {
            return Err(format!("{verb} answered {:?}", reply.start));
        }
    }
    let text = String::from_utf8(metrics.body.to_vec()).map_err(|_| "METRICS not UTF-8")?;
    let samples = prom::parse(&text).map_err(|e| format!("bad exposition: {e}"))?;
    let body = std::str::from_utf8(&health.body).map_err(|_| "HEALTH not UTF-8")?;
    let health = HealthReport::parse(body).map_err(|e| format!("bad verdict document: {e}"))?;
    Ok(Frame {
        stats,
        samples,
        health,
    })
}

fn sparkline(history: &[f64]) -> String {
    let max = history.iter().cloned().fold(0.0_f64, f64::max);
    history
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                SPARKS[0]
            } else {
                let idx = ((v / max) * (SPARKS.len() - 1) as f64).round() as usize;
                SPARKS[idx.min(SPARKS.len() - 1)]
            }
        })
        .collect()
}

/// A 20-cell unicode bar for a 0..=1 fraction.
fn gauge(fraction: f64) -> String {
    let filled = (fraction.clamp(0.0, 1.0) * 20.0).round() as usize;
    format!("[{}{}]", "█".repeat(filled), "·".repeat(20 - filled))
}

fn metric(samples: &[prom::Sample], name: &str) -> f64 {
    prom::find(samples, name, &[]).unwrap_or(0.0)
}

fn tier_count(samples: &[prom::Sample], tier: &str) -> f64 {
    prom::find(samples, "baps_served_total", &[("tier", tier)]).unwrap_or(0.0)
}

fn render(frame: &Frame, history: &[f64], plain: bool) -> String {
    let h = &frame.health;
    let mut out = String::new();
    if !plain {
        out.push_str("\x1b[2J\x1b[H"); // clear screen, home cursor
    }
    let verdict_tag = match h.verdict {
        Verdict::Ok => "OK",
        Verdict::Warn => "WARN",
        Verdict::Critical => "CRITICAL",
    };
    out.push_str(&format!(
        "baps_top — io_mode={} uptime={}s verdict={}\n\n",
        h.io_mode, h.uptime_secs, verdict_tag
    ));

    for w in &h.windows {
        out.push_str(&format!(
            "  {:>3}s window  {:>9.1} req/s  {:>8.2} err/s  p99 {:>8.2}ms  p999 {:>8.2}ms\n",
            w.window_secs, w.req_per_s, w.err_per_s, w.p99_ms, w.p999_ms
        ));
    }
    out.push_str(&format!("\n  req/s {}\n", sparkline(history)));

    // Tier split from the cumulative counters.
    let tiers = ["proxy", "disk", "peer", "origin"];
    let counts: Vec<f64> = tiers
        .iter()
        .map(|t| tier_count(&frame.samples, t))
        .collect();
    let total: f64 = counts.iter().sum();
    out.push_str("\n  tier split   ");
    for (t, c) in tiers.iter().zip(&counts) {
        let pct = if total > 0.0 { 100.0 * c / total } else { 0.0 };
        out.push_str(&format!("{t} {pct:>5.1}%  "));
    }
    out.push('\n');

    // Saturation: worker pool (or miss executor) and, when present,
    // reactor loops.
    let workers = metric(&frame.samples, "baps_workers").max(1.0);
    let busy = metric(&frame.samples, "baps_workers_busy");
    out.push_str(&format!(
        "\n  workers   {} {:>4.0}/{:<4.0}",
        gauge(busy / workers),
        busy,
        workers
    ));
    out.push_str(&format!(
        "   queue depth {:>4.0} (peak {:.0}, rejected {:.0})\n",
        metric(&frame.samples, "baps_queue_depth"),
        metric(&frame.samples, "baps_queue_depth_peak"),
        metric(&frame.samples, "baps_queue_rejected_total"),
    ));
    if frame.stats.get("Reactor-Loops").is_some() {
        let busy_fraction = metric(&frame.samples, "baps_reactor_busy_fraction");
        out.push_str(&format!(
            "  reactor   {} busy {:>4.0}%   fds {:>4.0} (peak {:.0}, ready-batch peak {:.0})\n",
            gauge(busy_fraction),
            busy_fraction * 100.0,
            metric(&frame.samples, "baps_reactor_registered_fds"),
            metric(&frame.samples, "baps_reactor_registered_fds_peak"),
            metric(&frame.samples, "baps_reactor_ready_batch_peak"),
        ));
    }
    out.push_str(&format!(
        "  recorder  {:>6.0} events held, {:>6.0} shed\n",
        metric(&frame.samples, "baps_flight_recorder_events"),
        metric(&frame.samples, "baps_flight_recorder_dropped_total"),
    ));

    // Active alerts: every rule that is not ok, with its exemplars.
    let offending: Vec<_> = h.offending().collect();
    if offending.is_empty() {
        out.push_str("\n  alerts: none — all SLO rules ok\n");
    } else {
        out.push_str("\n  alerts:\n");
        for r in offending {
            out.push_str(&format!(
                "    {:<8} {:<20} {} = {:.3} (warn {:.3}, critical {:.3})\n",
                r.verdict.name().to_uppercase(),
                r.name,
                r.signal.name(),
                r.value,
                r.warn,
                r.critical
            ));
            if !r.exemplars.is_empty() {
                let ids: Vec<String> = r.exemplars.iter().map(|t| format!("{t:016x}")).collect();
                out.push_str(&format!("             traces: {}\n", ids.join(" ")));
            }
        }
    }
    out
}

/// `--demo`: a self-hosted deployment plus a background load thread, so
/// the dashboard has something to show without a running system. The
/// load thread takes ownership of the client agents and hands them back
/// on join for an orderly shutdown.
type LoadThread = std::thread::JoinHandle<Vec<baps_proxy::ClientAgent>>;

fn demo_bed(stop: Arc<AtomicBool>) -> (TestBed, LoadThread) {
    let store = DocumentStore::synthetic(256, 200, 2_000, 42);
    let mut bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: 3,
            proxy_capacity: 48 << 10,
            ..TestBedConfig::default()
        },
    )
    .unwrap_or_else(|e| fail(&format!("demo deployment failed to start: {e}")));
    // A deterministic mixed workload: a hot set (proxy/browser hits) and
    // a rotating cold tail (origin fetches), so every dashboard panel
    // has live numbers.
    let clients = std::mem::take(&mut bed.clients);
    let load = std::thread::spawn(move || {
        let mut seq: u64 = 0;
        while !stop.load(Ordering::Acquire) {
            let client = &clients[(seq % clients.len() as u64) as usize];
            let url = if seq.is_multiple_of(4) {
                format!("http://origin/doc/{}", 200 + (seq / 4) % 56)
            } else {
                format!("http://origin/doc/{}", seq % 24)
            };
            let _ = client.fetch(&url);
            seq += 1;
            std::thread::sleep(Duration::from_millis(5));
        }
        clients
    });
    (bed, load)
}

fn main() {
    let args = parse_args();
    let stop = Arc::new(AtomicBool::new(false));
    let demo = if args.demo {
        Some(demo_bed(Arc::clone(&stop)))
    } else {
        None
    };
    let addr = match (&demo, args.addr) {
        (Some((bed, _)), _) => bed.proxy.addr(),
        (None, Some(addr)) => addr,
        _ => unreachable!("parse_args enforces the mode"),
    };
    let mut scraper =
        Scraper::connect(addr).unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));

    let mut history: Vec<f64> = Vec::with_capacity(HISTORY);
    let mut iteration: u64 = 0;
    loop {
        iteration += 1;
        match scrape(&mut scraper) {
            Ok(frame) => {
                let rate = frame
                    .health
                    .windows
                    .iter()
                    .find(|w| w.window_secs == 1)
                    .map(|w| w.req_per_s)
                    .unwrap_or(0.0);
                history.push(rate);
                if history.len() > HISTORY {
                    history.remove(0);
                }
                print!("{}", render(&frame, &history, args.plain));
                if args.plain {
                    println!("--- frame {iteration} ---");
                }
            }
            Err(e) => {
                // A restarting proxy drops the keep-alive connection;
                // reconnect on the next tick instead of dying mid-watch.
                eprintln!("scrape failed ({e}); reconnecting");
                if let Ok(next) = Scraper::connect(addr) {
                    scraper = next;
                }
            }
        }
        if args.iterations != 0 && iteration >= args.iterations {
            break;
        }
        std::thread::sleep(args.interval);
    }

    stop.store(true, Ordering::Release);
    if let Some((mut bed, load)) = demo {
        if let Ok(clients) = load.join() {
            bed.clients = clients;
        }
        bed.shutdown();
    }
}
