//! Figure 2: hit ratios and byte hit ratios of the five caching
//! organizations on the NLANR-uc trace, with browser caches set to the
//! *minimum* size (proxy/n) and the proxy cache scaled across
//! {0.5, 1, 5, 10, 20}% of the infinite cache size.
//!
//! Paper anchors: browsers-aware is highest everywhere; its hit ratios run
//! up to ~10.94 points and byte hit ratios ~9.34 points above
//! proxy-and-local-browser; local-browser-cache-only is lowest;
//! proxy-and-local-browser only slightly beats proxy-cache-only.

use baps_bench::{banner, load_profile, sweep_orgs, Cli};
use baps_core::{BrowserSizing, Organization};
use baps_sim::{pct, RunResult, Table, PROXY_SCALE_POINTS};
use baps_trace::Profile;

fn main() {
    let cli = Cli::parse();
    banner("Figure 2: five caching organizations on NLANR-uc (min browser cache)");
    let (trace, stats) = load_profile(Profile::NlanrUc, cli);

    // All five organizations' scale sweeps share one worker pool.
    let runs: Vec<(Organization, Vec<RunResult>)> = Organization::all()
        .iter()
        .copied()
        .zip(sweep_orgs(&trace, &stats, &Organization::all(), |_| {
            BrowserSizing::Minimum
        }))
        .collect();

    let header: Vec<String> = std::iter::once("organization".to_owned())
        .chain(PROXY_SCALE_POINTS.iter().map(|f| format!("{}%", f * 100.0)))
        .collect();
    for (byte, title) in [(false, "Hit ratios (%)"), (true, "Byte hit ratios (%)")] {
        let mut table = Table::new(header.clone());
        for (org, results) in &runs {
            let cells: Vec<String> = std::iter::once(org.name().to_owned())
                .chain(results.iter().map(|r| {
                    pct(if byte {
                        r.byte_hit_ratio()
                    } else {
                        r.hit_ratio()
                    })
                }))
                .collect();
            table.row(cells);
        }
        if cli.csv {
            println!("# {title}\n{}", table.to_csv());
        } else {
            println!("{title} by proxy cache size (% of infinite cache):");
            print!("{}", table.render());
            println!();
        }
    }

    // Anchor check: max gain of browsers-aware over proxy-and-local-browser.
    let baps = &runs
        .iter()
        .find(|(o, _)| *o == Organization::BrowsersAware)
        .unwrap()
        .1;
    let plb = &runs
        .iter()
        .find(|(o, _)| *o == Organization::ProxyAndLocalBrowser)
        .unwrap()
        .1;
    let max_hr = baps
        .iter()
        .zip(plb.iter())
        .map(|(a, b)| a.hit_ratio() - b.hit_ratio())
        .fold(f64::MIN, f64::max);
    let max_bhr = baps
        .iter()
        .zip(plb.iter())
        .map(|(a, b)| a.byte_hit_ratio() - b.byte_hit_ratio())
        .fold(f64::MIN, f64::max);
    println!(
        "max browsers-aware gain over proxy-and-local-browser: +{:.2} HR points \
         (paper: up to ~10.94), +{:.2} BHR points (paper: ~9.34)",
        max_hr, max_bhr
    );
}
