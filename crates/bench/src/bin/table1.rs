//! Table 1: characteristics of the five (synthesised) Web traces.
//!
//! Prints the measured statistics of each calibrated profile next to the
//! paper's reported values. Cells the OCR garbled are shown as `~x`
//! (reconstructed estimates; see `baps-trace::profiles`).

use baps_bench::{anchor, banner, load_profile, Cli};
use baps_sim::{pct, Table};
use baps_trace::Profile;

fn main() {
    let cli = Cli::parse();
    banner("Table 1: Selected Web Traces (paper target vs measured)");

    let mut table = Table::new(vec![
        "Trace",
        "Period",
        "Requests",
        "Total GB",
        "Inf.Cache GB",
        "Clients",
        "Max HR %",
        "Max BHR %",
    ]);
    for profile in Profile::all() {
        let (_, stats) = load_profile(profile, cli);
        let t = profile.targets();
        table.row(vec![
            format!("{} (paper)", profile.name()),
            profile.period().to_owned(),
            format!("{}", t.requests),
            format!("{:.2}", t.total_gb),
            format!("{:.2}", t.infinite_gb),
            format!("{}", t.clients),
            anchor(t.max_hit_ratio, !t.approx),
            pct(t.max_byte_hit_ratio),
        ]);
        table.row(vec![
            format!("{} (ours)", profile.name()),
            "synthetic".to_owned(),
            format!("{}", stats.requests),
            format!("{:.2}", stats.total_gb()),
            format!("{:.2}", stats.infinite_gb()),
            format!("{}", stats.clients),
            pct(stats.max_hit_ratio),
            pct(stats.max_byte_hit_ratio),
        ]);
    }
    if cli.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
    if cli.scale < 1.0 {
        println!(
            "\n(note: run at --scale {}; paper columns describe full-size traces)",
            cli.scale
        );
    }
}
