//! Service-time distributions (extension of the paper's §5 aggregate
//! analysis): per-hit-class latency percentiles for browsers-aware vs
//! proxy-and-local-browser, showing exactly what the 0.1 s peer-connection
//! setup costs and what the avoided WAN fetches save.

use baps_bench::{banner, load_profile, Cli};
use baps_core::{BrowserSizing, LatencyParams, Organization, SystemConfig};
use baps_sim::{run_with_options, LatencyHistogram, RunOptions, Table};
use baps_trace::Profile;

fn row(label: &str, h: &LatencyHistogram) -> Vec<String> {
    vec![
        label.to_owned(),
        format!("{}", h.count()),
        format!("{:.3}", h.mean_ms()),
        format!("{:.3}", h.quantile_ms(0.50)),
        format!("{:.3}", h.quantile_ms(0.90)),
        format!("{:.3}", h.quantile_ms(0.99)),
        format!("{:.1}", h.max_ms()),
    ]
}

fn main() {
    let cli = Cli::parse();
    banner("Service-time distributions (NLANR-bo1, 10% proxy, min browsers, 10% warm-up)");
    let (trace, stats) = load_profile(Profile::NlanrBo1, cli);
    let opts = RunOptions { warmup_frac: 0.10 };
    let latency = LatencyParams::paper();

    for org in [
        Organization::BrowsersAware,
        Organization::ProxyAndLocalBrowser,
    ] {
        let mut cfg = SystemConfig::paper_default(org, (stats.infinite_cache_bytes / 10).max(1));
        cfg.browser_sizing = BrowserSizing::Minimum;
        let r = run_with_options(&trace, &stats, &cfg, &latency, &opts);
        let h = &r.histograms;
        println!("{} — per-request service time (ms):", org.name());
        let mut table = Table::new(vec![
            "class", "requests", "mean", "p50", "p90", "p99", "max",
        ]);
        table.row(row("local-browser", &h.local_browser));
        table.row(row("proxy", &h.proxy));
        table.row(row("remote-browsers", &h.remote_browser));
        table.row(row("miss (WAN)", &h.miss));
        table.row(row("all", &h.all));
        if cli.csv {
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.render());
        }
        println!();
    }
    println!(
        "Remote-browser hits sit between proxy hits and WAN fetches (connection\n\
         setup dominates small documents), which is why converting misses into\n\
         remote hits lowers mean service time even though remote hits are slower\n\
         than proxy hits."
    );
}
