//! §4.2 memory byte-hit-ratio comparison.
//!
//! The paper picks two operating points with nearly equal byte hit ratios —
//! browsers-aware at 5% of the infinite cache size vs proxy-and-local-browser
//! at 10% — and shows the browsers-aware system serves far more of those
//! bytes from *memory* (3.5% vs 1.9% memory byte hit ratio), cutting total
//! hit latency by ~5.2%, because browser caches add RAM capacity that scales
//! with the client population.

use baps_bench::{banner, load_profile, Cli};
use baps_core::{BrowserSizing, LatencyParams, Organization, SystemConfig};
use baps_sim::{pct, run, Table};
use baps_trace::Profile;

fn main() {
    let cli = Cli::parse();
    banner("§4.2: memory byte hit ratios at equivalent byte hit ratios (NLANR-uc)");
    let (trace, stats) = load_profile(Profile::NlanrUc, cli);

    let mk = |org: Organization, frac: f64| {
        let mut cfg = SystemConfig::paper_default(
            org,
            ((stats.infinite_cache_bytes as f64 * frac).round() as u64).max(1),
        );
        cfg.browser_sizing = BrowserSizing::Minimum;
        cfg.mem_fraction = 0.1; // paper: memory = 1/10 of each cache
        cfg
    };
    let latency = LatencyParams::paper();
    let plb = run(
        &trace,
        &stats,
        &mk(Organization::ProxyAndLocalBrowser, 0.10),
        &latency,
    );
    // Find the browsers-aware proxy size whose *byte hit ratio* matches the
    // baseline's (the paper compares 5% vs 10% because those happened to be
    // equal-BHR points on its traces; our calibrated traces put the
    // crossover elsewhere, so we bisect for it).
    let target_bhr = plb.byte_hit_ratio();
    let (mut lo, mut hi) = (0.01f64, 0.10f64);
    let mut baps = run(
        &trace,
        &stats,
        &mk(Organization::BrowsersAware, hi),
        &latency,
    );
    for _ in 0..7 {
        let mid = (lo + hi) / 2.0;
        let r = run(
            &trace,
            &stats,
            &mk(Organization::BrowsersAware, mid),
            &latency,
        );
        if r.byte_hit_ratio() < target_bhr {
            lo = mid;
        } else {
            hi = mid;
            baps = r;
        }
    }
    let baps_frac = hi;

    let mut table = Table::new(vec![
        "system",
        "proxy size",
        "HR %",
        "BHR %",
        "mem BHR %",
        "hit latency (s)",
    ]);
    let baps_label = format!("{:.1}%", baps_frac * 100.0);
    for (label, size, r) in [
        ("browsers-aware-proxy-server", baps_label.as_str(), &baps),
        ("proxy-and-local-browser", "10%", &plb),
    ] {
        // Hit latency: everything except the WAN (miss) component.
        let hit_latency_s = (r.latency.total_ms() - r.latency.wan_ms) / 1000.0;
        table.row(vec![
            label.to_owned(),
            size.to_owned(),
            pct(r.hit_ratio()),
            pct(r.byte_hit_ratio()),
            pct(r.metrics.mem_byte_hit_ratio()),
            format!("{hit_latency_s:.1}"),
        ]);
    }
    if cli.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }

    println!(
        "\nbyte hit ratios at these points: {} vs {} (paper: 13.6 vs 13.9 — \
         approximately equal by construction)",
        pct(baps.byte_hit_ratio()),
        pct(plb.byte_hit_ratio())
    );
    println!(
        "memory byte hit ratio, conservative 1/10 browser memory: {} vs {} \
         (paper, same 1/10 assumption: 3.5% vs 1.9%)",
        pct(baps.metrics.mem_byte_hit_ratio()),
        pct(plb.metrics.mem_byte_hit_ratio()),
    );

    // The paper's §1 motivates RAM-resident browser caches ("browser cache
    // in memory"); with that realistic setting the browsers-aware system's
    // extra memory pool is visible directly.
    let mut ram_cfg = mk(Organization::BrowsersAware, baps_frac);
    ram_cfg.browser_mem_fraction = Some(1.0);
    let baps_ram = run(&trace, &stats, &ram_cfg, &latency);
    let hit_lat = |r: &baps_sim::RunResult| r.latency.total_ms() - r.latency.wan_ms;
    println!(
        "memory byte hit ratio with RAM-resident browser caches: {} vs {} \
         (browsers-aware serves {:.1}x more bytes from memory)",
        pct(baps_ram.metrics.mem_byte_hit_ratio()),
        pct(plb.metrics.mem_byte_hit_ratio()),
        baps_ram.metrics.mem_byte_hit_ratio() / plb.metrics.mem_byte_hit_ratio().max(1e-9),
    );
    let reduction = 100.0 * (hit_lat(&plb) - hit_lat(&baps_ram)) / hit_lat(&plb).max(1e-9);
    println!(
        "hit-latency change (RAM browsers) of browsers-aware vs baseline: {:.2}% \
         (paper: ~5.2% reduction; positive = faster)",
        reduction
    );
}
