//! Figure 8: hit-ratio and byte-hit-ratio *increments* of the
//! browsers-aware proxy server over proxy-and-local-browser as the client
//! population grows (25% → 100% of clients), proxy cache fixed at 10% of
//! the full trace's infinite cache size.
//!
//! Paper anchors: increments grow with the number of clients; e.g. BU-98's
//! hit-ratio increment rises 5.7 → 13.3 → 16.87 → 19.3 % and BU-95's
//! byte-hit-ratio increment rises 4.33 → 20.17 → 24.82 → 28.8 %.

use baps_bench::{banner, load_profile, Cli};
use baps_core::{BrowserSizing, LatencyParams, Organization, SystemConfig};
use baps_sim::{pct, run_scaling, Table, CLIENT_SCALE_POINTS};
use baps_trace::Profile;

fn main() {
    let cli = Cli::parse();
    banner("Figure 8: increment of browsers-aware over proxy-and-local-browser vs #clients");

    let profiles = [Profile::NlanrBo1, Profile::Bu95, Profile::Bu98];
    let header: Vec<String> = std::iter::once("trace".to_owned())
        .chain(
            CLIENT_SCALE_POINTS
                .iter()
                .map(|f| format!("{}%", f * 100.0)),
        )
        .collect();
    let mut hr = Table::new(header.clone());
    let mut bhr = Table::new(header);

    for profile in profiles {
        let (trace, stats) = load_profile(profile, cli);
        let mut base = SystemConfig::paper_default(Organization::BrowsersAware, 0);
        base.browser_sizing = BrowserSizing::FractionOfClientInfinite(0.10);
        let proxy_capacity = (stats.infinite_cache_bytes / 10).max(1);
        let points = run_scaling(
            &trace,
            &CLIENT_SCALE_POINTS,
            proxy_capacity,
            &base,
            &LatencyParams::paper(),
            profile.canonical_seed(),
        );
        hr.row(
            std::iter::once(profile.name().to_owned())
                .chain(points.iter().map(|p| pct(p.hit_ratio_increment())))
                .collect::<Vec<_>>(),
        );
        bhr.row(
            std::iter::once(profile.name().to_owned())
                .chain(points.iter().map(|p| pct(p.byte_hit_ratio_increment())))
                .collect::<Vec<_>>(),
        );
    }

    if cli.csv {
        println!("# hit ratio increment (%)\n{}", hr.to_csv());
        println!("# byte hit ratio increment (%)\n{}", bhr.to_csv());
    } else {
        println!("Hit-ratio increment (%) vs relative number of clients:");
        print!("{}", hr.render());
        println!("(paper anchor: BU-98 rises 5.7 -> 13.3 -> 16.87 -> 19.3)");
        println!("\nByte-hit-ratio increment (%) vs relative number of clients:");
        print!("{}", bhr.render());
        println!("(paper anchor: BU-95 rises 4.33 -> 20.17 -> 24.82 -> 28.8)");
    }
}
