//! Ablation studies on the design choices DESIGN.md calls out (these go
//! beyond the paper's evaluation):
//!
//! * replacement policy: LRU (paper) vs LFU / GDSF / SIZE / FIFO;
//! * remote-hit caching: whether the requester and/or proxy re-cache
//!   documents forwarded from peer browsers;
//! * index model: exact vs delayed vs Bloom summaries (hit ratio vs index
//!   memory trade-off).

use baps_bench::{banner, load_profile, Cli};
use baps_cache::Policy;
use baps_core::{BrowserSizing, LatencyParams, Organization, RemoteHitCaching, SystemConfig};
use baps_index::IndexModel;
use baps_sim::{human_bytes, pct, run_sweep, Table};
use baps_trace::Profile;

fn main() {
    let cli = Cli::parse();
    let latency = LatencyParams::paper();
    let (trace, stats) = load_profile(Profile::NlanrUc, cli);
    let base = {
        let mut cfg = SystemConfig::paper_default(
            Organization::BrowsersAware,
            (stats.infinite_cache_bytes / 10).max(1),
        );
        cfg.browser_sizing = BrowserSizing::Minimum;
        cfg
    };

    banner("Ablation A: replacement policy (BAPS, NLANR-uc, 10% proxy)");
    let configs: Vec<SystemConfig> = Policy::all()
        .iter()
        .map(|&policy| SystemConfig { policy, ..base })
        .collect();
    let runs = run_sweep(&trace, &stats, &configs, &latency);
    let mut t = Table::new(vec!["policy", "HR %", "BHR %"]);
    for (cfg, r) in configs.iter().zip(&runs) {
        t.row(vec![
            cfg.policy.name().to_owned(),
            pct(r.hit_ratio()),
            pct(r.byte_hit_ratio()),
        ]);
    }
    print!("{}", if cli.csv { t.to_csv() } else { t.render() });
    println!();

    banner("Ablation B: remote-hit caching policy");
    let options = [
        ("no-caching (paper)", RemoteHitCaching::NoCaching),
        ("cache-at-requester", RemoteHitCaching::CacheAtRequester),
        ("cache-at-proxy", RemoteHitCaching::CacheAtProxy),
        ("cache-both", RemoteHitCaching::CacheBoth),
    ];
    let configs: Vec<SystemConfig> = options
        .iter()
        .map(|&(_, remote_hit_caching)| SystemConfig {
            remote_hit_caching,
            ..base
        })
        .collect();
    let runs = run_sweep(&trace, &stats, &configs, &latency);
    let mut t = Table::new(vec!["remote-hit caching", "HR %", "BHR %", "remote hits"]);
    for ((label, _), r) in options.iter().zip(&runs) {
        t.row(vec![
            (*label).to_owned(),
            pct(r.hit_ratio()),
            pct(r.byte_hit_ratio()),
            format!("{}", r.metrics.remote_browser.count),
        ]);
    }
    print!("{}", if cli.csv { t.to_csv() } else { t.render() });
    println!();

    banner("Ablation C: index model (hit ratio vs index memory)");
    let models = [
        IndexModel::Exact,
        IndexModel::Delayed {
            threshold: 0.05,
            interval_ms: None,
        },
        IndexModel::Bloom {
            bits_per_item: 16,
            threshold: 0.05,
        },
        IndexModel::Bloom {
            bits_per_item: 8,
            threshold: 0.05,
        },
        IndexModel::CountingBloom {
            slots: 16_384,
            threshold: 0.05,
        },
    ];
    let configs: Vec<SystemConfig> = models
        .iter()
        .map(|&index_model| SystemConfig {
            index_model,
            ..base
        })
        .collect();
    let runs = run_sweep(&trace, &stats, &configs, &latency);
    let mut t = Table::new(vec![
        "index model",
        "HR %",
        "remote hits",
        "wasted probes",
        "update traffic",
        "index memory",
    ]);
    for (model, r) in models.iter().zip(&runs) {
        t.row(vec![
            model.label(),
            pct(r.hit_ratio()),
            format!("{}", r.metrics.remote_browser.count),
            format!("{}", r.metrics.wasted_probes),
            human_bytes(r.index_stats.update_bytes),
            human_bytes(r.index_memory_bytes),
        ]);
    }
    print!("{}", if cli.csv { t.to_csv() } else { t.render() });
    println!();

    banner("Ablation D: peer-serve promotion (does serving a peer count as an access?)");
    let configs = [("promote (LRU semantics)", true), ("no promotion", false)];
    let runs = run_sweep(
        &trace,
        &stats,
        &configs
            .iter()
            .map(|&(_, peer_serve_promotes)| SystemConfig {
                peer_serve_promotes,
                ..base
            })
            .collect::<Vec<_>>(),
        &latency,
    );
    let mut t = Table::new(vec!["peer-serve policy", "HR %", "remote hits", "mem hits"]);
    for ((label, _), r) in configs.iter().zip(&runs) {
        t.row(vec![
            (*label).to_owned(),
            pct(r.hit_ratio()),
            format!("{}", r.metrics.remote_browser.count),
            format!("{}", r.metrics.mem_hits),
        ]);
    }
    print!("{}", if cli.csv { t.to_csv() } else { t.render() });
    println!();

    banner("Ablation E: document TTL (consistency vs hit ratio)");
    let hour = 60 * 60 * 1000u64;
    let ttls: [(&str, Option<u64>); 4] = [
        ("none (paper)", None),
        ("24 h", Some(24 * hour)),
        ("1 h", Some(hour)),
        ("5 min", Some(5 * 60 * 1000)),
    ];
    let runs = run_sweep(
        &trace,
        &stats,
        &ttls
            .iter()
            .map(|&(_, ttl_ms)| SystemConfig { ttl_ms, ..base })
            .collect::<Vec<_>>(),
        &latency,
    );
    let mut t = Table::new(vec![
        "TTL",
        "HR %",
        "revalidations",
        "revalidation time (s)",
        "remote hits",
    ]);
    for ((label, _), r) in ttls.iter().zip(&runs) {
        t.row(vec![
            (*label).to_owned(),
            pct(r.hit_ratio()),
            format!("{}", r.metrics.revalidations),
            format!("{:.0}", r.latency.revalidation_ms / 1000.0),
            format!("{}", r.metrics.remote_browser.count),
        ]);
    }
    print!("{}", if cli.csv { t.to_csv() } else { t.render() });
}
