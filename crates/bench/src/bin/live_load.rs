//! Load generator for the live proxy runtime.
//!
//! Drives N concurrent clients through a full loopback [`TestBed`]
//! (origin + proxy + clients over real sockets) and reports throughput and
//! latency quantiles, once with **keep-alive** connections (the default
//! runtime behaviour: one persistent connection per client, pooled origin
//! connections inside the proxy) and once dialing a **fresh connection per
//! request** (the pre-pooling behaviour, kept behind
//! `ClientAgent::set_keep_alive(false)`).
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin live_load [n_clients] [requests_per_client] [n_docs]
//! cargo run --release --bin live_load -- --sweep [--out BENCH_live.json] \
//!     [total_requests] [n_docs]
//! ```
//!
//! Defaults: 8 clients x 2000 requests over 64 documents.
//!
//! `--sweep` runs the keep-alive mode at 1/2/4/8/16 worker clients with a
//! fixed seed and a fixed total request count (split evenly across
//! workers), and writes the scaling curve as JSON to `--out`. See the
//! README for how to read the file.

use baps_proxy::{DocumentStore, TestBed, TestBedConfig};
use baps_sim::histo::LatencyHistogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Worker counts of the thread-scaling sweep.
const SWEEP_WORKERS: [u32; 5] = [1, 2, 4, 8, 16];

struct ModeReport {
    label: &'static str,
    wall_secs: f64,
    requests: u64,
    histo: LatencyHistogram,
}

impl ModeReport {
    fn req_per_sec(&self) -> f64 {
        self.requests as f64 / self.wall_secs
    }

    fn print(&self) {
        println!(
            "{:<12} {:>9.0} req/s   p50 {:>7.3} ms   p99 {:>7.3} ms   mean {:>7.3} ms   ({} requests in {:.2} s)",
            self.label,
            self.req_per_sec(),
            self.histo.quantile_ms(0.50),
            self.histo.quantile_ms(0.99),
            self.histo.mean_ms(),
            self.requests,
            self.wall_secs,
        );
    }
}

fn run_mode(keep_alive: bool, n_clients: u32, per_client: u32, n_docs: usize) -> ModeReport {
    // Fresh deployment per mode so neither run inherits warm caches.
    let store = DocumentStore::synthetic(n_docs, 256, 2048, 0x5eed);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients,
            proxy_capacity: 256 << 10,
            // Tiny browser caches keep most requests on the wire, which is
            // what this benchmark is about.
            browser_capacity: 4 << 10,
            ..TestBedConfig::default()
        },
    )
    .expect("test bed starts");
    for client in &bed.clients {
        client.set_keep_alive(keep_alive);
    }

    let t0 = Instant::now();
    let histos: Vec<LatencyHistogram> = std::thread::scope(|scope| {
        let handles: Vec<_> = bed
            .clients
            .iter()
            .enumerate()
            .map(|(i, client)| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x10ad ^ i as u64);
                    let mut histo = LatencyHistogram::new();
                    for _ in 0..per_client {
                        let doc = rng.gen_range(0..n_docs);
                        let url = format!("http://origin/doc/{doc}");
                        let t = Instant::now();
                        client.fetch(&url).expect("fetch succeeds under load");
                        histo.record(t.elapsed().as_secs_f64() * 1e3);
                    }
                    histo
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    let mut histo = LatencyHistogram::new();
    for h in &histos {
        histo.merge(h);
    }
    // Sanity: the proxy saw real traffic (local browser hits never reach
    // it, so its GET count is at most the client-side total).
    let stats = bed.proxy.stats();
    assert!(stats.requests > 0, "no request reached the proxy");
    assert!(stats.requests <= histo.count(), "proxy GET over-count");
    bed.shutdown();
    ModeReport {
        label: if keep_alive {
            "keep-alive"
        } else {
            "per-request"
        },
        wall_secs,
        requests: histo.count(),
        histo,
    }
}

/// Interleaved measurement rounds per sweep point; each point keeps its
/// best round. Rounds are interleaved (1,2,…,16, then again) rather than
/// repeated back-to-back so slow drift (CPU frequency, container
/// throttling) hits every point equally.
const SWEEP_ROUNDS: usize = 3;

/// Flatness tolerance for the 1→8-worker verdict. The sweep exists to
/// catch *serialization collapses* — a global lock or an undersized
/// downstream pool shows up as a multiple, not a percentage (an origin
/// pool that stopped scaling cost 13x here) — so the band only needs to
/// sit above scheduler jitter, which is ±10–15% for loopback
/// microbenchmarks on a shared single-core host.
const SWEEP_FLAT_TOLERANCE: f64 = 0.85;

/// Runs the keep-alive thread-scaling sweep and renders `BENCH_live.json`.
///
/// Total work is fixed: each point splits `total` requests evenly across
/// its workers, so the curve isolates how throughput responds to
/// concurrency rather than to a growing request count. The store seed and
/// per-worker RNG seeds are constants, making the request schedule
/// identical run to run.
fn run_sweep(total: u32, n_docs: usize, out_path: &str) {
    println!(
        "live_load --sweep: keep-alive, {total} total requests per point, {n_docs} docs, \
         workers {SWEEP_WORKERS:?}, best of {SWEEP_ROUNDS} rounds\n"
    );
    // Warmup: touch the page cache / allocator / loopback stack once so
    // the first measured point doesn't pay the process's cold-start costs.
    let _ = run_mode(true, 2, (total / 16).max(1), n_docs);

    let mut points: Vec<(u32, Option<ModeReport>)> =
        SWEEP_WORKERS.iter().map(|&w| (w, None)).collect();
    for round in 0..SWEEP_ROUNDS {
        for (workers, best) in &mut points {
            let per_client = (total / *workers).max(1);
            let report = run_mode(true, *workers, per_client, n_docs);
            println!(
                "round {}  {:>3} workers  {:>9.0} req/s   p50 {:>7.3} ms   p99 {:>7.3} ms   \
                 ({} requests in {:.2} s)",
                round + 1,
                workers,
                report.req_per_sec(),
                report.histo.quantile_ms(0.50),
                report.histo.quantile_ms(0.99),
                report.requests,
                report.wall_secs,
            );
            if best
                .as_ref()
                .is_none_or(|b| report.req_per_sec() > b.req_per_sec())
            {
                *best = Some(report);
            }
        }
    }
    let points: Vec<(u32, ModeReport)> = points
        .into_iter()
        .map(|(w, r)| (w, r.expect("every point measured")))
        .collect();

    println!();
    for (workers, report) in &points {
        println!(
            "best     {:>3} workers  {:>9.0} req/s   p50 {:>7.3} ms   p99 {:>7.3} ms",
            workers,
            report.req_per_sec(),
            report.histo.quantile_ms(0.50),
            report.histo.quantile_ms(0.99),
        );
    }

    // Monotone-or-flat up to 8 workers: each point within the tolerance
    // band of the best seen at lower concurrency.
    let mut best = 0f64;
    let mut monotone_or_flat = true;
    for (workers, report) in &points {
        if *workers <= 8 {
            if report.req_per_sec() < best * SWEEP_FLAT_TOLERANCE {
                monotone_or_flat = false;
            }
            best = best.max(report.req_per_sec());
        }
    }

    // The in-tree serde shim is a no-op, so the JSON is rendered by hand.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"live_load_thread_scaling\",\n");
    json.push_str("  \"mode\": \"keep-alive\",\n");
    let _ = writeln!(json, "  \"total_requests_per_point\": {total},");
    let _ = writeln!(json, "  \"docs\": {n_docs},");
    json.push_str("  \"store_seed\": 24301,\n");
    let _ = writeln!(json, "  \"monotone_or_flat_1_to_8\": {monotone_or_flat},");
    json.push_str("  \"points\": [\n");
    for (i, (workers, r)) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workers\": {}, \"req_per_sec\": {:.1}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \"requests\": {}, \"wall_secs\": {:.3}}}",
            workers,
            r.req_per_sec(),
            r.histo.quantile_ms(0.50),
            r.histo.quantile_ms(0.99),
            r.histo.mean_ms(),
            r.requests,
            r.wall_secs,
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!(
        "\nwrote {out_path} (monotone-or-flat 1→8 workers: {})",
        if monotone_or_flat { "yes" } else { "NO" }
    );
}

fn arg<T: std::str::FromStr>(raw: Option<String>, name: &str, default: T) -> T {
    match raw {
        None => default,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("bad {name}: {s:?} (usage: live_load [n_clients] [per_client] [n_docs])");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let mut sweep = false;
    let mut out_path = "BENCH_live.json".to_owned();
    let mut positional = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        match a.as_str() {
            "--sweep" => sweep = true,
            "--out" => {
                out_path = raw.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            _ => positional.push(a),
        }
    }
    let mut args = positional.into_iter();

    if sweep {
        let total: u32 = arg(args.next(), "total_requests", 8000);
        let n_docs: usize = arg(args.next(), "n_docs", 64);
        run_sweep(total, n_docs, &out_path);
        return;
    }

    let n_clients: u32 = arg(args.next(), "n_clients", 8);
    let per_client: u32 = arg(args.next(), "per_client", 2000);
    let n_docs: usize = arg(args.next(), "n_docs", 64);

    println!(
        "live_load: {n_clients} clients x {per_client} requests, {n_docs} docs (loopback sockets)\n"
    );

    let per_request = run_mode(false, n_clients, per_client, n_docs);
    per_request.print();
    let keep_alive = run_mode(true, n_clients, per_client, n_docs);
    keep_alive.print();

    println!(
        "\nkeep-alive speedup: {:.2}x req/s",
        keep_alive.req_per_sec() / per_request.req_per_sec()
    );
}
