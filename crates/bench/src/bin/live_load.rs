//! Load generator for the live proxy runtime.
//!
//! Drives N concurrent clients through a full loopback [`TestBed`]
//! (origin + proxy + clients over real sockets) and reports throughput and
//! latency quantiles, once with **keep-alive** connections (the default
//! runtime behaviour: one persistent connection per client, pooled origin
//! connections inside the proxy) and once dialing a **fresh connection per
//! request** (the pre-pooling behaviour, kept behind
//! `ClientAgent::set_keep_alive(false)`).
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin live_load [n_clients] [requests_per_client] [n_docs]
//! ```
//!
//! Defaults: 8 clients x 2000 requests over 64 documents.

use baps_proxy::{DocumentStore, TestBed, TestBedConfig};
use baps_sim::histo::LatencyHistogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct ModeReport {
    label: &'static str,
    wall_secs: f64,
    requests: u64,
    histo: LatencyHistogram,
}

impl ModeReport {
    fn req_per_sec(&self) -> f64 {
        self.requests as f64 / self.wall_secs
    }

    fn print(&self) {
        println!(
            "{:<12} {:>9.0} req/s   p50 {:>7.3} ms   p99 {:>7.3} ms   mean {:>7.3} ms   ({} requests in {:.2} s)",
            self.label,
            self.req_per_sec(),
            self.histo.quantile_ms(0.50),
            self.histo.quantile_ms(0.99),
            self.histo.mean_ms(),
            self.requests,
            self.wall_secs,
        );
    }
}

fn run_mode(keep_alive: bool, n_clients: u32, per_client: u32, n_docs: usize) -> ModeReport {
    // Fresh deployment per mode so neither run inherits warm caches.
    let store = DocumentStore::synthetic(n_docs, 256, 2048, 0x5eed);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients,
            proxy_capacity: 256 << 10,
            // Tiny browser caches keep most requests on the wire, which is
            // what this benchmark is about.
            browser_capacity: 4 << 10,
            ..TestBedConfig::default()
        },
    )
    .expect("test bed starts");
    for client in &bed.clients {
        client.set_keep_alive(keep_alive);
    }

    let t0 = Instant::now();
    let histos: Vec<LatencyHistogram> = std::thread::scope(|scope| {
        let handles: Vec<_> = bed
            .clients
            .iter()
            .enumerate()
            .map(|(i, client)| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x10ad ^ i as u64);
                    let mut histo = LatencyHistogram::new();
                    for _ in 0..per_client {
                        let doc = rng.gen_range(0..n_docs);
                        let url = format!("http://origin/doc/{doc}");
                        let t = Instant::now();
                        client.fetch(&url).expect("fetch succeeds under load");
                        histo.record(t.elapsed().as_secs_f64() * 1e3);
                    }
                    histo
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    let mut histo = LatencyHistogram::new();
    for h in &histos {
        histo.merge(h);
    }
    // Sanity: the proxy saw real traffic (local browser hits never reach
    // it, so its GET count is at most the client-side total).
    let stats = bed.proxy.stats();
    assert!(stats.requests > 0, "no request reached the proxy");
    assert!(stats.requests <= histo.count(), "proxy GET over-count");
    bed.shutdown();
    ModeReport {
        label: if keep_alive {
            "keep-alive"
        } else {
            "per-request"
        },
        wall_secs,
        requests: histo.count(),
        histo,
    }
}

fn arg<T: std::str::FromStr>(raw: Option<String>, name: &str, default: T) -> T {
    match raw {
        None => default,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("bad {name}: {s:?} (usage: live_load [n_clients] [per_client] [n_docs])");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_clients: u32 = arg(args.next(), "n_clients", 8);
    let per_client: u32 = arg(args.next(), "per_client", 2000);
    let n_docs: usize = arg(args.next(), "n_docs", 64);

    println!(
        "live_load: {n_clients} clients x {per_client} requests, {n_docs} docs (loopback sockets)\n"
    );

    let per_request = run_mode(false, n_clients, per_client, n_docs);
    per_request.print();
    let keep_alive = run_mode(true, n_clients, per_client, n_docs);
    keep_alive.print();

    println!(
        "\nkeep-alive speedup: {:.2}x req/s",
        keep_alive.req_per_sec() / per_request.req_per_sec()
    );
}
