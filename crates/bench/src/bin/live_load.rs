//! Load generator for the live proxy runtime.
//!
//! Drives N concurrent clients through a full loopback [`TestBed`]
//! (origin + proxy + clients over real sockets) and reports throughput and
//! latency quantiles, once with **keep-alive** connections (the default
//! runtime behaviour: one persistent connection per client, pooled origin
//! connections inside the proxy) and once dialing a **fresh connection per
//! request** (the pre-pooling behaviour, kept behind
//! `ClientAgent::set_keep_alive(false)`).
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin live_load [--metrics] [n_clients] \
//!     [requests_per_client] [n_docs]
//! cargo run --release --bin live_load -- --sweep [--out BENCH_live.json] \
//!     [total_requests] [n_docs]
//! ```
//!
//! Defaults: 8 clients x 2000 requests over 64 documents.
//!
//! `--sweep` runs the keep-alive mode at 1/2/4/8/16 worker clients with a
//! fixed seed and a fixed total request count (split evenly across
//! workers), writes the scaling curve as JSON to `--out`, then measures
//! the observability overhead by re-running one point with recording
//! disabled ([`baps_obs::set_recording`]); the on/off delta lands in the
//! JSON too. Each point also records the proxy's worker-pool saturation
//! (busy-worker peak, accept-backlog depth, time-in-queue p50/p99) as the
//! `saturation` block, and one dedicated instrumented point is scraped
//! via `TRACE BAPS/1.0` and assembled into per-kind critical-path
//! attribution as the `critical_path` block. The sweep also walks the
//! connection-count axis — 100/1k/10k idle registered connections held
//! open (by a helper child process, so each side of the socket pair gets
//! its own fd table) while 16 active clients drive traffic, in both
//! `io_mode=threads` and `io_mode=reactor` — and records it as the
//! `connections` block. See the README for how to read the file.
//!
//! `--metrics` additionally scrapes the proxy's `METRICS BAPS/1.0`
//! exposition over the wire after the keep-alive run, checks that it
//! parses and that its counters balance, and prints the proxy-side
//! per-tier latency tails next to the client-observed ones.
//!
//! `--smoke` is the CI gate: one `--metrics`-style run (every scrape
//! assertion applies, including the `baps_build_info` /
//! `baps_uptime_seconds` identity gauges), then the overhead A/B, exiting
//! nonzero if always-on recording costs more than 3% throughput.
//! `--io-mode reactor` runs the driven deployment on the epoll reactor;
//! `--no-overhead` skips the A/B (CI uses it for the second, reactor-mode
//! smoke so the wall-clock-heavy overhead gate runs once).
//!
//! `--scenario <name>` replays one adversarial workload shape from
//! `baps_trace::scenarios` (`flash-crowd`, `invalidation-storm`,
//! `diurnal-swing`, `heavy-tail`) concurrently — per-client `Get` queues
//! plus a dedicated publisher client driving the `Invalidate` stream —
//! and prints its throughput/tail point. `--sweep` measures all four and
//! records them as the `scenarios` block of `BENCH_live.json`.

use baps_bench::critical_path;
use baps_bench::scenario::{bed_config, flash_crowd_herd, scenario_corpus, url_of};
use baps_obs::{prom, span, LatencyHistogram};
use baps_proxy::{
    read_message, response_code, write_message, DocumentStore, IoMode, Message, SaturationSnapshot,
    TestBed, TestBedConfig,
};
use baps_trace::{DocId, Scenario, ScenarioOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::time::Instant;

/// Worker counts of the thread-scaling sweep.
const SWEEP_WORKERS: [u32; 5] = [1, 2, 4, 8, 16];

struct ModeReport {
    label: &'static str,
    wall_secs: f64,
    requests: u64,
    histo: LatencyHistogram,
    /// Raw `METRICS BAPS/1.0` exposition scraped over the wire just
    /// before shutdown (only when requested).
    metrics: Option<String>,
    /// Worker-pool saturation at the end of the run: accept-backlog
    /// depth/peak, busy workers, and the time-in-queue histogram.
    saturation: SaturationSnapshot,
    /// Raw `TRACE BAPS/1.0` JSONL span dump (only when requested).
    trace: Option<String>,
}

impl ModeReport {
    fn req_per_sec(&self) -> f64 {
        self.requests as f64 / self.wall_secs
    }

    fn print(&self) {
        println!(
            "{:<12} {:>9.0} req/s   p50 {:>7.3} ms   p90 {:>7.3} ms   p99 {:>7.3} ms   p99.9 {:>7.3} ms   mean {:>7.3} ms   ({} requests in {:.2} s)",
            self.label,
            self.req_per_sec(),
            self.histo.quantile_ms(0.50),
            self.histo.quantile_ms(0.90),
            self.histo.quantile_ms(0.99),
            self.histo.quantile_ms(0.999),
            self.histo.mean_ms(),
            self.requests,
            self.wall_secs,
        );
    }
}

fn run_mode(
    keep_alive: bool,
    io_mode: IoMode,
    n_clients: u32,
    per_client: u32,
    n_docs: usize,
    scrape_metrics: bool,
    scrape_trace: bool,
) -> ModeReport {
    // Fresh deployment per mode so neither run inherits warm caches.
    let store = DocumentStore::synthetic(n_docs, 256, 2048, 0x5eed);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients,
            io_mode,
            proxy_capacity: 256 << 10,
            // Tiny browser caches keep most requests on the wire, which is
            // what this benchmark is about.
            browser_capacity: 4 << 10,
            ..TestBedConfig::default()
        },
    )
    .expect("test bed starts");
    for client in &bed.clients {
        client.set_keep_alive(keep_alive);
    }

    let t0 = Instant::now();
    let histos: Vec<LatencyHistogram> = std::thread::scope(|scope| {
        let handles: Vec<_> = bed
            .clients
            .iter()
            .enumerate()
            .map(|(i, client)| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x10ad ^ i as u64);
                    let mut histo = LatencyHistogram::new();
                    for _ in 0..per_client {
                        let doc = rng.gen_range(0..n_docs);
                        let url = format!("http://origin/doc/{doc}");
                        let t = Instant::now();
                        client.fetch(&url).expect("fetch succeeds under load");
                        histo.record(t.elapsed().as_secs_f64() * 1e3);
                    }
                    histo
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    let mut histo = LatencyHistogram::new();
    for h in &histos {
        histo.merge(h);
    }
    // Sanity: the proxy saw real traffic (local browser hits never reach
    // it, so its GET count is at most the client-side total).
    let stats = bed.proxy.stats();
    assert!(stats.requests > 0, "no request reached the proxy");
    assert!(stats.requests <= histo.count(), "proxy GET over-count");
    // Scrape over the wire (not via `ProxyServer::metrics_text`) so the
    // run exercises the METRICS verb end to end.
    let metrics = scrape_metrics.then(|| {
        let reply = bed.clients[0]
            .proxy_metrics_raw()
            .expect("METRICS roundtrip");
        String::from_utf8(reply.body.to_vec()).expect("exposition is UTF-8")
    });
    let trace = scrape_trace.then(|| {
        let reply = bed.clients[0].proxy_trace_raw().expect("TRACE roundtrip");
        String::from_utf8(reply.body.to_vec()).expect("TRACE body is UTF-8")
    });
    let saturation = bed.proxy.saturation();
    bed.shutdown();
    ModeReport {
        label: if keep_alive {
            "keep-alive"
        } else {
            "per-request"
        },
        wall_secs,
        requests: histo.count(),
        histo,
        metrics,
        saturation,
        trace,
    }
}

/// Checks the scraped exposition (parseable, counters balance against the
/// per-tier serve counts) and prints the proxy-side tier latency tails.
fn summarize_metrics(text: &str) {
    let samples = prom::parse(text).expect("METRICS exposition parses");
    let get = |name: &str, labels: &[(&str, &str)]| {
        prom::find(&samples, name, labels)
            .unwrap_or_else(|| panic!("exposition is missing {name}{labels:?}"))
    };
    let requests = get("baps_requests_total", &[]);
    let by_tier: f64 = ["proxy", "disk", "peer", "origin"]
        .iter()
        .map(|t| get("baps_served_total", &[("tier", t)]))
        .sum();
    let errors = get("baps_errors_total", &[]);
    assert_eq!(
        requests,
        by_tier + errors,
        "requests_total must equal served-by-tier + errors"
    );
    // Counter/histogram agreement: every successfully served GET records
    // exactly one latency observation in its tier's histogram.
    let histo_count: f64 = ["local", "proxy", "disk", "peer", "origin"]
        .iter()
        .map(|t| {
            prom::find(&samples, "baps_request_latency_ms_count", &[("tier", t)])
                .unwrap_or_default()
        })
        .sum();
    assert_eq!(
        histo_count,
        requests - errors,
        "tier histogram counts must sum to requests - errors"
    );
    // Identity gauges (DESIGN.md §14): `baps_build_info` pins the version
    // and serving mode of whatever produced the scrape, `baps_uptime_seconds`
    // distinguishes a restart from a counter reset.
    let build_info = samples
        .iter()
        .find(|s| s.name == "baps_build_info")
        .expect("exposition is missing baps_build_info");
    assert_eq!(build_info.value, 1.0, "baps_build_info must be exactly 1");
    assert!(
        build_info.label("version").is_some_and(|v| !v.is_empty()),
        "baps_build_info must carry a non-empty version label"
    );
    assert!(
        build_info
            .label("io_mode")
            .is_some_and(|m| m == "threads" || m == "reactor"),
        "baps_build_info must carry a valid io_mode label"
    );
    assert!(
        get("baps_uptime_seconds", &[]) >= 0.0,
        "uptime gauge missing or negative"
    );
    // Saturation families: the pool gauge is live and the time-in-queue
    // histogram saw every dispatched connection.
    assert!(get("baps_workers", &[]) > 0.0, "worker gauge missing/zero");
    assert!(
        get("baps_queue_wait_ms_count", &[]) >= 1.0,
        "queue-wait histogram recorded nothing"
    );
    println!(
        "\nMETRICS scrape: {} samples, requests_total {requests} = served-by-tier {by_tier} + errors {errors}, histogram observations {histo_count}",
        samples.len()
    );
    println!("proxy-side serve latency (from baps_request_latency_ms):");
    for tier in ["local", "proxy", "disk", "peer", "origin"] {
        let labels = [("tier", tier)];
        let count =
            prom::find(&samples, "baps_request_latency_ms_count", &labels).unwrap_or_default();
        if count == 0.0 {
            continue;
        }
        let sum = get("baps_request_latency_ms_sum", &labels);
        println!(
            "  {tier:<12} {count:>8.0} obs   mean {:>7.3} ms",
            sum / count
        );
    }
}

/// Interleaved measurement rounds per sweep point; each point keeps its
/// best round. Rounds are interleaved (1,2,…,16, then again) rather than
/// repeated back-to-back so slow drift (CPU frequency, container
/// throttling) hits every point equally.
const SWEEP_ROUNDS: usize = 3;

/// Flatness tolerance for the 1→8-worker verdict. The sweep exists to
/// catch *serialization collapses* — a global lock or an undersized
/// downstream pool shows up as a multiple, not a percentage (an origin
/// pool that stopped scaling cost 13x here) — so the band only needs to
/// sit above scheduler jitter, which is ±10–15% for loopback
/// microbenchmarks on a shared single-core host.
const SWEEP_FLAT_TOLERANCE: f64 = 0.85;

/// Runs the keep-alive thread-scaling sweep and renders `BENCH_live.json`.
///
/// Total work is fixed: each point splits `total` requests evenly across
/// its workers, so the curve isolates how throughput responds to
/// concurrency rather than to a growing request count. The store seed and
/// per-worker RNG seeds are constants, making the request schedule
/// identical run to run.
fn run_sweep(total: u32, n_docs: usize, out_path: &str) {
    println!(
        "live_load --sweep: keep-alive, {total} total requests per point, {n_docs} docs, \
         workers {SWEEP_WORKERS:?}, best of {SWEEP_ROUNDS} rounds\n"
    );
    // Warmup: touch the page cache / allocator / loopback stack once so
    // the first measured point doesn't pay the process's cold-start costs.
    let _ = run_mode(
        true,
        IoMode::Threads,
        2,
        (total / 16).max(1),
        n_docs,
        false,
        false,
    );

    let mut points: Vec<(u32, Option<ModeReport>)> =
        SWEEP_WORKERS.iter().map(|&w| (w, None)).collect();
    for round in 0..SWEEP_ROUNDS {
        for (workers, best) in &mut points {
            let per_client = (total / *workers).max(1);
            let report = run_mode(
                true,
                IoMode::Threads,
                *workers,
                per_client,
                n_docs,
                false,
                false,
            );
            println!(
                "round {}  {:>3} workers  {:>9.0} req/s   p50 {:>7.3} ms   p99 {:>7.3} ms   \
                 ({} requests in {:.2} s)",
                round + 1,
                workers,
                report.req_per_sec(),
                report.histo.quantile_ms(0.50),
                report.histo.quantile_ms(0.99),
                report.requests,
                report.wall_secs,
            );
            if best
                .as_ref()
                .is_none_or(|b| report.req_per_sec() > b.req_per_sec())
            {
                *best = Some(report);
            }
        }
    }
    let points: Vec<(u32, ModeReport)> = points
        .into_iter()
        .map(|(w, r)| (w, r.expect("every point measured")))
        .collect();

    println!();
    for (workers, report) in &points {
        println!(
            "best     {:>3} workers  {:>9.0} req/s   p50 {:>7.3} ms   p99 {:>7.3} ms",
            workers,
            report.req_per_sec(),
            report.histo.quantile_ms(0.50),
            report.histo.quantile_ms(0.99),
        );
    }

    // Monotone-or-flat up to 8 workers: each point within the tolerance
    // band of the best seen at lower concurrency.
    let mut best = 0f64;
    let mut monotone_or_flat = true;
    for (workers, report) in &points {
        if *workers <= 8 {
            if report.req_per_sec() < best * SWEEP_FLAT_TOLERANCE {
                monotone_or_flat = false;
            }
            best = best.max(report.req_per_sec());
        }
    }

    println!("\nsaturation at each best point (proxy worker pool):");
    for (workers, report) in &points {
        let sat = &report.saturation;
        println!(
            "  {:>3} clients  pool {:>2} workers  busy peak {:>2}  queue peak {:>2}  \
             rejected {:>2}  queue-wait p50 {:>7.3} ms  p99 {:>7.3} ms  ({} waits)",
            workers,
            sat.workers,
            sat.busy_workers_peak,
            sat.queue_depth_peak,
            sat.rejected,
            sat.queue_wait.quantile_ms(0.50),
            sat.queue_wait.quantile_ms(0.99),
            sat.queue_wait.count(),
        );
    }

    let (overhead, overhead_measurements) = measure_overhead_gated(n_docs);
    let disk = measure_disk_tier(total, n_docs);
    let scenarios = measure_scenarios(total, n_docs);
    let connections = measure_connections(total, n_docs);

    // Critical-path attribution: one dedicated instrumented point whose
    // TRACE dump is assembled into span trees and aggregated per kind.
    println!("\ncritical-path attribution ({OVERHEAD_WORKERS} workers, from a TRACE scrape):");
    let traced = run_mode(
        true,
        IoMode::Threads,
        OVERHEAD_WORKERS,
        (total / OVERHEAD_WORKERS).max(1),
        n_docs,
        false,
        true,
    );
    let trace_records = span::parse_jsonl(traced.trace.as_deref().expect("traced run dumps TRACE"))
        .expect("TRACE dump parses");
    let trees = span::assemble(&trace_records);
    let attribution = critical_path::attribution(&trees);
    print!("{}", critical_path::render_table(&attribution));

    // The in-tree serde shim is a no-op, so the JSON is rendered by hand.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"live_load_thread_scaling\",\n");
    json.push_str("  \"mode\": \"keep-alive\",\n");
    let _ = writeln!(json, "  \"total_requests_per_point\": {total},");
    let _ = writeln!(json, "  \"docs\": {n_docs},");
    json.push_str("  \"store_seed\": 24301,\n");
    let _ = writeln!(json, "  \"monotone_or_flat_1_to_8\": {monotone_or_flat},");
    json.push_str("  \"points\": [\n");
    for (i, (workers, r)) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workers\": {}, \"req_per_sec\": {:.1}, \"p50_ms\": {:.3}, \
             \"p90_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \
             \"mean_ms\": {:.3}, \"requests\": {}, \"wall_secs\": {:.3}}}",
            workers,
            r.req_per_sec(),
            r.histo.quantile_ms(0.50),
            r.histo.quantile_ms(0.90),
            r.histo.quantile_ms(0.99),
            r.histo.quantile_ms(0.999),
            r.histo.mean_ms(),
            r.requests,
            r.wall_secs,
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"saturation\": [\n");
    for (i, (workers, r)) in points.iter().enumerate() {
        let sat = &r.saturation;
        let _ = write!(
            json,
            "    {{\"clients\": {}, \"pool_workers\": {}, \"busy_workers_peak\": {}, \
             \"queue_depth_peak\": {}, \"queue_rejected\": {}, \"queue_waits\": {}, \
             \"queue_wait_p50_ms\": {:.3}, \"queue_wait_p99_ms\": {:.3}, \
             \"service_p50_ms\": {:.3}}}",
            workers,
            sat.workers,
            sat.busy_workers_peak,
            sat.queue_depth_peak,
            sat.rejected,
            sat.queue_wait.count(),
            sat.queue_wait.quantile_ms(0.50),
            sat.queue_wait.quantile_ms(0.99),
            r.histo.quantile_ms(0.50),
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"critical_path\": [");
    let _ = writeln!(json, "{}", critical_path::render_json(&attribution, "    "));
    json.push_str("  ],\n");
    json.push_str("  \"scenarios\": [\n");
    for (i, p) in scenarios.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"workers\": {SCENARIO_WORKERS}, \"requests\": {}, \
             \"req_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"p999_ms\": {:.3}, \"origin_fetches\": {}, \"origin_fetches_per_doc\": {:.2}, \
             \"coalesced_fetches\": {}, \"invalidation_msgs\": {}",
            p.scenario.name(),
            p.requests,
            p.req_per_sec,
            p.p50_ms,
            p.p99_ms,
            p.p999_ms,
            p.origin_fetches,
            p.origin_fetches_per_doc,
            p.coalesced_fetches,
            p.invalidation_msgs,
        );
        if let Some((workers, origin, coalesced)) = p.herd {
            let _ = write!(
                json,
                ", \"herd_workers\": {workers}, \"herd_origin_fetches\": {origin}, \
                 \"herd_coalesced_fetches\": {coalesced}"
            );
        }
        json.push('}');
        json.push_str(if i + 1 < scenarios.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"connections\": [\n");
    for (i, p) in connections.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"io_mode\": \"{}\", \"idle_conns\": {}, \"active_clients\": {CONN_ACTIVE}, \
             \"serving_threads\": {}, \"loops\": {}, \"registered_fds_peak\": {}, \
             \"req_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}}}",
            p.mode.name(),
            p.idle,
            p.serving_threads,
            p.loops,
            p.registered_fds_peak,
            p.req_per_sec,
            p.p50_ms,
            p.p99_ms,
            p.p999_ms,
        );
        json.push_str(if i + 1 < connections.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"disk_tier\": {\n");
    let _ = writeln!(json, "    \"workers\": {OVERHEAD_WORKERS},");
    let _ = writeln!(json, "    \"req_per_sec\": {:.1},", disk.req_per_sec);
    let _ = writeln!(json, "    \"disk_hits\": {},", disk.disk_hits);
    let _ = writeln!(json, "    \"disk_writes\": {},", disk.disk_writes);
    let _ = writeln!(json, "    \"disk_entries\": {},", disk.disk_entries);
    let _ = writeln!(
        json,
        "    \"post_restart_req_per_sec\": {:.1},",
        disk.post_restart_req_per_sec
    );
    let _ = writeln!(
        json,
        "    \"post_restart_disk_hits\": {},",
        disk.post_restart_disk_hits
    );
    let _ = writeln!(
        json,
        "    \"warm_restart\": {}",
        disk.post_restart_disk_hits > 0
    );
    json.push_str("  },\n");
    json.push_str("  \"observability_overhead\": {\n");
    let _ = writeln!(json, "    \"workers\": {OVERHEAD_WORKERS},");
    let _ = writeln!(json, "    \"paired_slices\": {OVERHEAD_PAIRS},");
    let _ = writeln!(
        json,
        "    \"estimator\": \"trimmed mean of per-round paired deltas; \
         median of 3 measurements when the first lands over budget\","
    );
    let _ = writeln!(json, "    \"measurements\": {overhead_measurements},");
    let _ = writeln!(
        json,
        "    \"recording_on_req_per_sec\": {:.1},",
        overhead.on_rps()
    );
    let _ = writeln!(
        json,
        "    \"recording_off_req_per_sec\": {:.1},",
        overhead.off_rps()
    );
    let _ = writeln!(json, "    \"delta_pct\": {:.2},", overhead.delta_pct());
    let _ = writeln!(json, "    \"within_3pct\": {}", overhead.delta_pct() < 3.0);
    json.push_str("  }\n}\n");
    std::fs::write(out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!(
        "\nwrote {out_path} (monotone-or-flat 1→8 workers: {}, observability overhead {:+.2}%)",
        if monotone_or_flat { "yes" } else { "NO" },
        overhead.delta_pct(),
    );
}

/// Worker count of the observability-overhead A/B point.
const OVERHEAD_WORKERS: u32 = 4;

/// On/off slice pairs of the overhead measurement. Each slice is a short
/// burst of requests against one shared warm deployment; pairing at the
/// tens-of-milliseconds scale puts both sides of a pair inside the same
/// scheduler-burst regime, which whole-run A/B (seconds apart on a shared
/// host) cannot do — identical code measured "+3.5%" that way.
const OVERHEAD_PAIRS: usize = 80;

/// Requests per worker per slice (~40 ms per slice at loopback rates).
const OVERHEAD_SLICE_REQUESTS: u32 = 500;

/// Slice pairs trimmed from each extreme before averaging the paired
/// deltas. Scheduler bursts corrupt whole slices; a trimmed mean discards
/// them while using more of the sample than a median does.
const OVERHEAD_TRIM: usize = 10;

/// Throughput with recording on vs off, per interleaved slice pair.
struct Overhead {
    /// `(on_rps, off_rps)` per pair, measured back to back.
    rounds: Vec<(f64, f64)>,
}

impl Overhead {
    /// Trimmed-mean throughput of the recording-on slices.
    fn on_rps(&self) -> f64 {
        trimmed_mean(self.rounds.iter().map(|&(on, _)| on))
    }

    /// Trimmed-mean throughput of the recording-off slices.
    fn off_rps(&self) -> f64 {
        trimmed_mean(self.rounds.iter().map(|&(_, off)| off))
    }

    /// Throughput lost to recording: the **trimmed mean of the per-pair
    /// deltas**, percent of the pair's recording-off rate. Pairing first,
    /// then trimming the [`OVERHEAD_TRIM`] most extreme pairs from each
    /// side, discards the burst-corrupted pairs a plain mean is hostage
    /// to. Negative means the instrumented side came out faster (the true
    /// delta is below the noise floor).
    fn delta_pct(&self) -> f64 {
        trimmed_mean(
            self.rounds
                .iter()
                .map(|&(on, off)| (off - on) / off * 100.0),
        )
    }
}

/// Mean after dropping the [`OVERHEAD_TRIM`] lowest and highest values
/// (plain mean if too few values; 0 when empty).
fn trimmed_mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let kept = if v.len() > 2 * OVERHEAD_TRIM {
        &v[OVERHEAD_TRIM..v.len() - OVERHEAD_TRIM]
    } else {
        &v[..]
    };
    kept.iter().sum::<f64>() / kept.len() as f64
}

/// One burst of `OVERHEAD_SLICE_REQUESTS` per worker against a shared
/// deployment; returns the slice's request rate.
fn run_slice(bed: &TestBed, n_docs: usize, slice: u64) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for (i, client) in bed.clients.iter().enumerate() {
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x51ce ^ (slice << 8) ^ i as u64);
                for _ in 0..OVERHEAD_SLICE_REQUESTS {
                    let doc = rng.gen_range(0..n_docs);
                    let url = format!("http://origin/doc/{doc}");
                    client.fetch(&url).expect("fetch succeeds under load");
                }
            });
        }
    });
    (OVERHEAD_SLICE_REQUESTS as u64 * bed.clients.len() as u64) as f64 / t0.elapsed().as_secs_f64()
}

/// Measures the cost of always-on recording by interleaving short
/// recording-on and recording-off slices over one warm deployment and
/// differencing each adjacent pair ([`baps_obs::set_recording`] flips
/// between slices). The alternation is fine-grained on purpose: drift
/// (CPU frequency, container throttling, a noisy neighbour) moves slower
/// than a slice, so it cancels inside each pair.
fn measure_overhead(n_docs: usize) -> Overhead {
    println!(
        "\nobservability overhead ({OVERHEAD_WORKERS} workers, trimmed mean of {OVERHEAD_PAIRS} interleaved on/off slice pairs):"
    );
    let store = DocumentStore::synthetic(n_docs, 256, 2048, 0x5eed);
    // The disk tier is configured so its bookkeeping is live, but the
    // memory cache is sized to hold the whole corpus and fully warmed
    // before the first measured slice: the A/B prices always-on recording
    // (plus disk bookkeeping) on the in-memory hot path, not disk I/O.
    // Miss traffic would not just add noise, it would change what is
    // being measured — a memory miss records a flight-recorder event by
    // design, a cost that rides requests already paying for disk or
    // origin I/O, so pricing it against a 14 µs loopback hit would gate
    // the wrong thing.
    let corpus_bytes = (n_docs as u64) * 2048;
    let disk_root = std::env::temp_dir().join(format!("baps_live_overhead_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&disk_root);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: OVERHEAD_WORKERS,
            proxy_capacity: corpus_bytes + (64 << 10),
            browser_capacity: 4 << 10,
            disk_root: Some(disk_root.clone()),
            ..TestBedConfig::default()
        },
    )
    .expect("test bed starts");
    for client in &bed.clients {
        client.set_keep_alive(true);
    }
    // Touch every doc once so the whole corpus is resident in the proxy's
    // memory tier — uniform random slices alone would leave a long miss
    // tail bleeding into the measured pairs.
    for doc in 0..n_docs {
        let url = format!("http://origin/doc/{doc}");
        bed.clients[0].fetch(&url).expect("warmup fetch succeeds");
    }
    // Warmup slices (discarded): allocator arenas, loopback stack.
    for slice in 0..4 {
        let _ = run_slice(&bed, n_docs, slice);
    }

    let mut rounds = Vec::with_capacity(OVERHEAD_PAIRS);
    for pair in 0..OVERHEAD_PAIRS as u64 {
        // Alternate which side of the pair runs first: whatever warmth a
        // slice hands its successor then favours each side equally.
        let mut sides = [0f64; 2];
        let on_first = pair % 2 == 0;
        for (i, &on) in [on_first, !on_first].iter().enumerate() {
            baps_obs::set_recording(on);
            sides[usize::from(!on)] = run_slice(&bed, n_docs, 100 + pair * 2 + i as u64);
        }
        baps_obs::set_recording(true);
        let [on, off] = sides;
        rounds.push((on, off));
    }
    bed.shutdown();
    let _ = std::fs::remove_dir_all(&disk_root);

    let overhead = Overhead { rounds };
    println!(
        "recording on {:>9.0} req/s   off {:>9.0} req/s   trimmed-mean paired delta {:+.2}%",
        overhead.on_rps(),
        overhead.off_rps(),
        overhead.delta_pct(),
    );
    overhead
}

/// Overhead measurement with the flake guard both the smoke gate and the
/// sweep's JSON block use: one measurement decides if it lands under the
/// 3% budget, but a reading over budget triggers two more full
/// measurements and the **median of the three** is what gets reported
/// and gated. A single trimmed-mean estimate still loses to a badly
/// timed scheduler regime shift (a committed 3.66% reading for identical
/// code motivated this); the median of three independent measurements
/// does not. Returns the chosen measurement and how many were taken.
fn measure_overhead_gated(n_docs: usize) -> (Overhead, usize) {
    let first = measure_overhead(n_docs);
    if first.delta_pct() < 3.0 {
        return (first, 1);
    }
    println!(
        "\noverhead {:+.2}% over budget on the first measurement; \
         taking the median of 3",
        first.delta_pct()
    );
    let mut all = vec![first, measure_overhead(n_docs), measure_overhead(n_docs)];
    all.sort_by(|a, b| a.delta_pct().total_cmp(&b.delta_pct()));
    let median = all.swap_remove(1);
    println!("median of 3 measurements: {:+.2}%", median.delta_pct());
    (median, 3)
}

/// Disk-tier point for `BENCH_live.json`.
struct DiskReport {
    req_per_sec: f64,
    disk_hits: u64,
    disk_writes: u64,
    disk_entries: u64,
    post_restart_req_per_sec: f64,
    post_restart_disk_hits: u64,
}

/// Measures the persistent disk tier under load: a deployment whose
/// memory cache is deliberately smaller than the corpus (so misses spill
/// to disk and some GETs serve from it), then a full in-place proxy
/// restart followed by a second driven phase — the post-restart disk-hit
/// count is the warm-restart evidence recorded in the JSON.
fn measure_disk_tier(total: u32, n_docs: usize) -> DiskReport {
    println!("\ndisk tier ({OVERHEAD_WORKERS} workers, memory cache under-sized, one mid-point proxy restart):");
    let disk_root = std::env::temp_dir().join(format!("baps_live_disk_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&disk_root);
    let store = DocumentStore::synthetic(n_docs, 256, 2048, 0x5eed);
    let mut bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: OVERHEAD_WORKERS,
            // Holds only a fraction of the corpus: memory misses spill to
            // the disk tier instead of always refetching from the origin.
            proxy_capacity: 16 << 10,
            browser_capacity: 4 << 10,
            disk_root: Some(disk_root.clone()),
            disk_capacity: 8 << 20,
            ..TestBedConfig::default()
        },
    )
    .expect("test bed starts");
    let per_client = (total / OVERHEAD_WORKERS).max(1);
    let phase = |bed: &TestBed, salt: u64| -> f64 {
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for (i, client) in bed.clients.iter().enumerate() {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(salt ^ i as u64);
                    for _ in 0..per_client {
                        let doc = rng.gen_range(0..n_docs);
                        let url = format!("http://origin/doc/{doc}");
                        client.fetch(&url).expect("fetch succeeds under load");
                    }
                });
            }
        });
        (per_client as u64 * bed.clients.len() as u64) as f64 / t0.elapsed().as_secs_f64()
    };

    let req_per_sec = phase(&bed, 0xd15c);
    let stats = bed.proxy.stats();
    let dstats = bed.proxy.disk_stats().expect("disk tier configured");
    bed.restart_proxy().expect("proxy restarts in place");
    let post_restart_req_per_sec = phase(&bed, 0xd15c ^ 0xffff);
    let post = bed.proxy.stats();
    bed.shutdown();
    let _ = std::fs::remove_dir_all(&disk_root);

    let report = DiskReport {
        req_per_sec,
        disk_hits: stats.disk_hits,
        disk_writes: dstats.writes,
        disk_entries: dstats.entries,
        post_restart_req_per_sec,
        post_restart_disk_hits: post.disk_hits.saturating_sub(stats.disk_hits),
    };
    println!(
        "pre-restart  {:>9.0} req/s   disk hits {}   writes {}   entries {}",
        report.req_per_sec, report.disk_hits, report.disk_writes, report.disk_entries
    );
    println!(
        "post-restart {:>9.0} req/s   disk hits {}   (warm restart: {})",
        report.post_restart_req_per_sec,
        report.post_restart_disk_hits,
        if report.post_restart_disk_hits > 0 {
            "yes"
        } else {
            "NO"
        }
    );
    report
}

/// Workers driving `Get` traffic in a scenario point (a dedicated extra
/// client acts as the invalidation publisher).
const SCENARIO_WORKERS: u32 = 8;

/// Herd size of the flash-crowd coalescing probe.
const SCENARIO_HERD: u32 = 16;

/// One adversarial-scenario measurement for `BENCH_live.json`.
struct ScenarioPoint {
    scenario: Scenario,
    requests: u64,
    invalidation_msgs: u64,
    req_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    origin_fetches: u64,
    /// Origin fetches divided by the number of distinct documents the
    /// schedule touches: the redundant-fetch factor. Near 1.0 means each
    /// doc was fetched from the origin about once despite churn.
    origin_fetches_per_doc: f64,
    coalesced_fetches: u64,
    /// `(workers, origin_fetches, coalesced)` of the herd probe
    /// (flash-crowd only).
    herd: Option<(u32, u64, u64)>,
}

impl ScenarioPoint {
    fn print(&self) {
        println!(
            "{:<18} {:>9.0} req/s   p50 {:>7.3} ms   p99 {:>7.3} ms   p99.9 {:>7.3} ms   \
             origin {:>5} ({:.2}/doc)   coalesced {:>4}   invalidations {:>4}",
            self.scenario.name(),
            self.req_per_sec,
            self.p50_ms,
            self.p99_ms,
            self.p999_ms,
            self.origin_fetches,
            self.origin_fetches_per_doc,
            self.coalesced_fetches,
            self.invalidation_msgs,
        );
        if let Some((workers, origin, coalesced)) = self.herd {
            println!(
                "{:<18} herd: {workers} workers on a cold doc -> {origin} origin fetch(es), \
                 {coalesced} coalesced",
                ""
            );
        }
    }
}

/// Replays one scenario schedule concurrently: every scenario client
/// becomes a worker thread draining its own `Get` queue while one extra
/// publisher client drives the `Invalidate` stream (origin mutate on
/// every other update + piggybacked replica discards + one wire
/// INVALIDATE each). Content checking is the job of the sequential
/// `chaos_soak --scenario` gate; this measures what the shape costs.
fn run_scenario_point(scenario: Scenario, total: u32, n_docs: usize) -> ScenarioPoint {
    let seed = scenario.canonical_seed();
    let cfg = scenario.config(total as u64, SCENARIO_WORKERS, n_docs as u32);
    let schedule = cfg.generate(seed);
    let (store, _expected) = scenario_corpus(&schedule, seed);
    let disk_root = std::env::temp_dir().join(format!(
        "baps_live_scenario_{}_{}",
        scenario.name(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&disk_root);
    let mut tbc = bed_config(&cfg, Some(disk_root.clone()));
    tbc.n_clients += 1; // the publisher
    let bed = TestBed::start(store, tbc).expect("scenario bed starts");
    for client in &bed.clients {
        client.set_keep_alive(true);
    }

    let mut gets: Vec<Vec<DocId>> = vec![Vec::new(); SCENARIO_WORKERS as usize];
    let mut invalidations: Vec<DocId> = Vec::new();
    let mut touched: HashSet<u32> = HashSet::new();
    for op in &schedule.ops {
        match op {
            ScenarioOp::Get { client, doc } => {
                gets[client.0 as usize].push(*doc);
                touched.insert(doc.0);
            }
            ScenarioOp::Invalidate { doc } => invalidations.push(*doc),
        }
    }

    let (publisher, workers) = bed.clients.split_last().expect("bed has clients");
    let t0 = Instant::now();
    let histos: Vec<LatencyHistogram> = std::thread::scope(|scope| {
        let doc_sizes = &schedule.doc_sizes;
        let origin = &bed.origin;
        let worker_refs = workers;
        scope.spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x009b_115b);
            for (seq, doc) in invalidations.iter().enumerate() {
                let url = url_of(*doc);
                if seq.is_multiple_of(2) {
                    let mut next = vec![0u8; doc_sizes[doc.0 as usize] as usize];
                    rng.fill(next.as_mut_slice());
                    origin.mutate(&url, next);
                }
                for client in worker_refs {
                    client.discard(&url);
                }
                publisher
                    .publish_invalidate(&url)
                    .expect("publisher INVALIDATE succeeds");
            }
        });
        let handles: Vec<_> = workers
            .iter()
            .zip(&gets)
            .map(|(client, queue)| {
                scope.spawn(move || {
                    let mut histo = LatencyHistogram::new();
                    for doc in queue {
                        let url = url_of(*doc);
                        let t = Instant::now();
                        client.fetch(&url).expect("fetch succeeds under load");
                        histo.record(t.elapsed().as_secs_f64() * 1e3);
                    }
                    histo
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    let mut histo = LatencyHistogram::new();
    for h in &histos {
        histo.merge(h);
    }
    let stats = bed.proxy.stats();
    bed.shutdown();
    let _ = std::fs::remove_dir_all(&disk_root);

    let herd = (scenario == Scenario::FlashCrowd).then(|| {
        let probe = flash_crowd_herd(seed, SCENARIO_HERD, IoMode::Threads);
        assert!(probe.violations.is_empty(), "{:?}", probe.violations);
        (probe.herd, probe.origin_fetches, probe.coalesced_fetches)
    });

    ScenarioPoint {
        scenario,
        requests: histo.count(),
        invalidation_msgs: schedule.invalidations(),
        req_per_sec: histo.count() as f64 / wall_secs,
        p50_ms: histo.quantile_ms(0.50),
        p99_ms: histo.quantile_ms(0.99),
        p999_ms: histo.quantile_ms(0.999),
        origin_fetches: stats.origin_fetches,
        origin_fetches_per_doc: stats.origin_fetches as f64 / touched.len().max(1) as f64,
        coalesced_fetches: stats.coalesced_fetches,
        herd,
    }
}

/// Measures all four adversarial scenarios for the sweep's JSON block.
fn measure_scenarios(total: u32, n_docs: usize) -> Vec<ScenarioPoint> {
    println!("\nadversarial scenarios ({SCENARIO_WORKERS} workers + 1 publisher, {total} requests each):");
    Scenario::all()
        .into_iter()
        .map(|scenario| {
            let point = run_scenario_point(scenario, total, n_docs);
            point.print();
            point
        })
        .collect()
}

/// Active clients driving traffic at every connection-axis point.
const CONN_ACTIVE: u32 = 16;

/// Idle-connection counts of the axis (the ROADMAP's 100/1k/10k ladder,
/// plus the zero baseline both modes share).
const CONN_IDLE: [usize; 4] = [0, 100, 1_000, 10_000];

/// Idle counts the thread mode is measured at. Beyond this each idle
/// connection costs a whole parked worker thread (the pool is sized
/// `active + idle + headroom` so idle connections cannot starve active
/// ones), which is exactly the scaling wall the reactor removes — the
/// 1k/10k points exist only in reactor mode.
const CONN_IDLE_THREADS_MAX: usize = 100;

/// Interleaved measurement rounds per connection-axis point (best kept).
const CONN_ROUNDS: usize = 3;

/// One point on the connection-count axis.
struct ConnPoint {
    mode: IoMode,
    idle: usize,
    /// Threads the mode spent serving connections: pool workers in
    /// thread mode, event loops + miss-executor workers in reactor mode.
    serving_threads: u64,
    /// Event loops (reactor mode; 0 in thread mode).
    loops: u64,
    /// Peak connections registered with the event loops (reactor mode).
    registered_fds_peak: u64,
    req_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
}

impl ConnPoint {
    fn print(&self) {
        println!(
            "{:<8} idle {:>6}  {:>9.0} req/s   p50 {:>7.3} ms   p99 {:>7.3} ms   \
             p99.9 {:>7.3} ms   serving threads {:>4}   registered peak {:>6}",
            self.mode.name(),
            self.idle,
            self.req_per_sec,
            self.p50_ms,
            self.p99_ms,
            self.p999_ms,
            self.serving_threads,
            self.registered_fds_peak,
        );
    }
}

/// Child-process entry for `--hold-conns ADDR COUNT BASE`: opens `COUNT`
/// keep-alive connections to the proxy at `ADDR`, REGISTERs each one
/// (client ids `BASE..`), reports readiness on stdout, then holds every
/// connection open until stdin closes. Run as a separate process so the
/// client side of 10k socket pairs does not share the benchmark's fd
/// table with the proxy side.
fn hold_conns(addr: &str, count: usize, base: u64) -> ! {
    use std::io::{BufRead, BufReader as StdBufReader, Write};
    let mut held = Vec::with_capacity(count);
    for i in 0..count {
        let stream = std::net::TcpStream::connect(addr).expect("holder connects");
        // Read and write through shared borrows of the one socket — a
        // `try_clone` here would cost a second fd per connection and blow
        // the child's fd table at the 10k rung.
        write_message(
            &mut &stream,
            &Message::new("REGISTER 1 BAPS/1.0").header("Client", (base + i as u64).to_string()),
        )
        .expect("holder REGISTER write");
        let reply = read_message(&mut std::io::BufReader::new(&stream))
            .expect("holder REGISTER read")
            .expect("holder connection open");
        assert_eq!(response_code(&reply), Some(200), "holder REGISTER refused");
        held.push(stream);
    }
    println!("held {count}");
    std::io::stdout().flush().expect("holder reports readiness");
    // Park until the parent drops our stdin; the sockets close with us.
    let mut line = String::new();
    let _ = StdBufReader::new(std::io::stdin()).read_line(&mut line);
    drop(held);
    std::process::exit(0);
}

/// Spawns the idle-connection holder child and blocks until it reports
/// every connection registered. Returns the child; dropping its stdin
/// (killing it) releases the connections.
fn spawn_holder(addr: std::net::SocketAddr, count: usize) -> std::process::Child {
    use std::io::BufRead;
    let exe = std::env::current_exe().expect("own executable path");
    let mut child = std::process::Command::new(exe)
        .arg("--hold-conns")
        .arg(addr.to_string())
        .arg(count.to_string())
        .arg("1000000")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("holder child spawns");
    let stdout = child.stdout.take().expect("holder stdout piped");
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("holder reports readiness");
    assert_eq!(
        line.trim(),
        format!("held {count}"),
        "holder failed to establish its connections"
    );
    child
}

/// Measures one (io_mode, idle-connection-count) point: a fresh
/// deployment, `idle` held-open registered connections, then
/// [`CONN_ACTIVE`] clients driving `total` requests split evenly.
fn measure_conn_point(mode: IoMode, idle: usize, total: u32, n_docs: usize) -> ConnPoint {
    let store = DocumentStore::synthetic(n_docs, 256, 2048, 0x5eed);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: CONN_ACTIVE,
            proxy_capacity: 256 << 10,
            browser_capacity: 4 << 10,
            io_mode: mode,
            // Thread mode can hold an idle connection only by parking a
            // worker on it, so its pool must grow with the idle count.
            // Reactor mode keeps the automatic (active-scaled) sizing for
            // its miss executor regardless of idle connections.
            proxy_workers: match mode {
                IoMode::Threads => CONN_ACTIVE as usize + idle + 4,
                IoMode::Reactor => 0,
            },
            ..TestBedConfig::default()
        },
    )
    .expect("test bed starts");
    for client in &bed.clients {
        client.set_keep_alive(true);
    }
    let holder = (idle > 0).then(|| spawn_holder(bed.proxy.addr(), idle));
    if let Some(r) = bed.proxy.reactor_stats() {
        assert!(
            r.registered_fds >= idle as u64,
            "reactor lost idle connections: {} registered, {idle} held",
            r.registered_fds
        );
    }

    let per_client = (total / CONN_ACTIVE).max(1);
    let t0 = Instant::now();
    let histos: Vec<LatencyHistogram> = std::thread::scope(|scope| {
        let handles: Vec<_> = bed
            .clients
            .iter()
            .enumerate()
            .map(|(i, client)| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xc0a1 ^ i as u64);
                    let mut histo = LatencyHistogram::new();
                    for _ in 0..per_client {
                        let doc = rng.gen_range(0..n_docs);
                        let url = format!("http://origin/doc/{doc}");
                        let t = Instant::now();
                        client.fetch(&url).expect("fetch succeeds under load");
                        histo.record(t.elapsed().as_secs_f64() * 1e3);
                    }
                    histo
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    let mut histo = LatencyHistogram::new();
    for h in &histos {
        histo.merge(h);
    }
    let reactor = bed.proxy.reactor_stats();
    let saturation = bed.proxy.saturation();
    let (serving_threads, loops, registered_peak) = match &reactor {
        // The idle mass must still be registered after the measured
        // burst: the reactor held 10k connections *while* serving.
        Some(r) => {
            assert!(
                r.registered_fds >= idle as u64,
                "reactor dropped idle connections under load: {} left of {idle}",
                r.registered_fds
            );
            (r.loops + saturation.workers, r.loops, r.registered_fds_peak)
        }
        None => (saturation.workers, 0, 0),
    };
    if let Some(mut child) = holder {
        drop(child.stdin.take()); // EOF releases the held connections
        let _ = child.wait();
    }
    bed.shutdown();

    ConnPoint {
        mode,
        idle,
        serving_threads,
        loops,
        registered_fds_peak: registered_peak,
        req_per_sec: histo.count() as f64 / wall_secs,
        p50_ms: histo.quantile_ms(0.50),
        p99_ms: histo.quantile_ms(0.99),
        p999_ms: histo.quantile_ms(0.999),
    }
}

/// Walks the connection-count axis in both io modes ([`CONN_ROUNDS`]
/// interleaved rounds, best-of per point): does holding 100/1k/10k idle
/// registered connections degrade the active path, and what does each
/// mode spend to hold them? Thread mode stops at
/// [`CONN_IDLE_THREADS_MAX`] (beyond that it pays a parked thread per
/// connection); the reactor walks the full ladder on its fixed loop +
/// miss-executor thread budget.
fn measure_connections(total: u32, n_docs: usize) -> Vec<ConnPoint> {
    println!(
        "\nconnection-count axis ({CONN_ACTIVE} active clients, idle ladder {CONN_IDLE:?}, \
         best of {CONN_ROUNDS} rounds):"
    );
    let grid: Vec<(IoMode, usize)> = CONN_IDLE
        .iter()
        .filter(|&&idle| idle <= CONN_IDLE_THREADS_MAX)
        .map(|&idle| (IoMode::Threads, idle))
        .chain(CONN_IDLE.iter().map(|&idle| (IoMode::Reactor, idle)))
        .collect();
    let mut points: Vec<(IoMode, usize, Option<ConnPoint>)> =
        grid.iter().map(|&(m, i)| (m, i, None)).collect();
    for _round in 0..CONN_ROUNDS {
        for (mode, idle, best) in &mut points {
            let point = measure_conn_point(*mode, *idle, total, n_docs);
            if best
                .as_ref()
                .is_none_or(|b| point.req_per_sec > b.req_per_sec)
            {
                *best = Some(point);
            }
        }
    }
    let points: Vec<ConnPoint> = points
        .into_iter()
        .map(|(_, _, p)| p.expect("every point measured"))
        .collect();
    for point in &points {
        point.print();
    }
    points
}

/// CI smoke: scrape `METRICS BAPS/1.0` under load (parse + balance
/// assertions live in [`summarize_metrics`]), then gate on the recording
/// overhead staying under 3%. The overhead estimate rides on loopback
/// scheduler noise, so a first reading over budget triggers two more
/// measurements and the gate judges the median of the three
/// ([`measure_overhead_gated`]).
fn run_smoke(io_mode: IoMode, with_overhead: bool, total: u32, n_docs: usize) {
    println!(
        "live_load --smoke: METRICS exposition{} (io_mode={})\n",
        if with_overhead {
            " + recording-overhead gate"
        } else {
            ""
        },
        io_mode.name()
    );
    let report = run_mode(
        true,
        io_mode,
        OVERHEAD_WORKERS,
        (total / OVERHEAD_WORKERS).max(1),
        n_docs,
        true,
        true,
    );
    report.print();
    summarize_metrics(
        report
            .metrics
            .as_deref()
            .expect("smoke run scrapes METRICS"),
    );
    // The same run's TRACE dump must hold at least one sampled span: the
    // exporter is live, not just the verb.
    let spans = span::parse_jsonl(report.trace.as_deref().expect("smoke run scrapes TRACE"))
        .expect("TRACE dump parses");
    assert!(!spans.is_empty(), "TRACE dump is empty under load");
    println!(
        "TRACE scrape: {} spans, {} trees assembled",
        spans.len(),
        span::assemble(&spans).len()
    );

    if !with_overhead {
        println!("\nsmoke OK: exposition parses, counters balance (overhead gate skipped)");
        return;
    }
    let (overhead, measurements) = measure_overhead_gated(n_docs);
    let delta = overhead.delta_pct();
    if measurements > 1 {
        println!("(gated on the median of {measurements} measurements)");
    }
    if delta >= 3.0 {
        eprintln!("FAIL: observability overhead {delta:+.2}% exceeds the 3% budget");
        std::process::exit(1);
    }
    println!("\nsmoke OK: exposition parses, counters balance, recording overhead {delta:+.2}% (budget 3%)");
}

fn arg<T: std::str::FromStr>(raw: Option<String>, name: &str, default: T) -> T {
    match raw {
        None => default,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("bad {name}: {s:?} (usage: live_load [n_clients] [per_client] [n_docs])");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let mut sweep = false;
    let mut smoke = false;
    let mut metrics = false;
    let mut io_mode = IoMode::Threads;
    let mut with_overhead = true;
    let mut scenario = None;
    let mut out_path = "BENCH_live.json".to_owned();
    let mut positional = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        match a.as_str() {
            // Internal re-exec mode used by the connection-count axis.
            "--hold-conns" => {
                let addr = raw.next().expect("--hold-conns needs ADDR COUNT BASE");
                let count = raw
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--hold-conns COUNT");
                let base = raw
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--hold-conns BASE");
                hold_conns(&addr, count, base);
            }
            "--sweep" => sweep = true,
            "--smoke" => smoke = true,
            "--metrics" => metrics = true,
            "--no-overhead" => with_overhead = false,
            "--io-mode" => {
                io_mode = match raw.next().as_deref() {
                    Some("threads") => IoMode::Threads,
                    Some("reactor") => IoMode::Reactor,
                    other => {
                        eprintln!("bad --io-mode {other:?} (threads|reactor)");
                        std::process::exit(2);
                    }
                };
            }
            "--scenario" => {
                let name = raw.next().unwrap_or_else(|| {
                    eprintln!("--scenario needs a name");
                    std::process::exit(2);
                });
                scenario = Some(Scenario::parse(&name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown scenario {name:?} (one of: flash-crowd, invalidation-storm, \
                         diurnal-swing, heavy-tail)"
                    );
                    std::process::exit(2);
                }));
            }
            "--out" => {
                out_path = raw.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            _ => positional.push(a),
        }
    }
    let mut args = positional.into_iter();

    if let Some(scenario) = scenario {
        let total: u32 = arg(args.next(), "total_requests", 8000);
        let n_docs: usize = arg(args.next(), "n_docs", 64);
        println!(
            "live_load --scenario {}: {SCENARIO_WORKERS} workers + 1 publisher, \
             {total} requests, {n_docs} docs\n",
            scenario.name()
        );
        run_scenario_point(scenario, total, n_docs).print();
        return;
    }

    if sweep {
        let total: u32 = arg(args.next(), "total_requests", 8000);
        let n_docs: usize = arg(args.next(), "n_docs", 64);
        run_sweep(total, n_docs, &out_path);
        return;
    }

    if smoke {
        let total: u32 = arg(args.next(), "total_requests", 8000);
        let n_docs: usize = arg(args.next(), "n_docs", 64);
        run_smoke(io_mode, with_overhead, total, n_docs);
        return;
    }

    let n_clients: u32 = arg(args.next(), "n_clients", 8);
    let per_client: u32 = arg(args.next(), "per_client", 2000);
    let n_docs: usize = arg(args.next(), "n_docs", 64);

    println!(
        "live_load: {n_clients} clients x {per_client} requests, {n_docs} docs (loopback sockets)\n"
    );

    let per_request = run_mode(false, io_mode, n_clients, per_client, n_docs, false, false);
    per_request.print();
    let keep_alive = run_mode(true, io_mode, n_clients, per_client, n_docs, metrics, false);
    keep_alive.print();

    println!(
        "\nkeep-alive speedup: {:.2}x req/s",
        keep_alive.req_per_sec() / per_request.req_per_sec()
    );
    if let Some(text) = &keep_alive.metrics {
        summarize_metrics(text);
    }
}
