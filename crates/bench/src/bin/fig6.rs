//! Figure 6: browsers-aware vs proxy-and-local-browser on BU-98 with
//! "average" browser caches scaled alongside the proxy cache.

use baps_bench::{print_two_org_figure, Cli};
use baps_trace::Profile;

fn main() {
    let cli = Cli::parse();
    print_two_org_figure(Profile::Bu98, cli, "Figure 6");
}
