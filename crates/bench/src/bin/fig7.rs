//! Figure 7: the limit of the browsers-aware proxy server — the CA*netII
//! trace has only 3 clients, so the accumulated browser-cache capacity is
//! tiny relative to the proxy cache and the gain collapses.
//!
//! Paper anchor: both average hit-ratio and byte-hit-ratio increases are
//! below 1 percentage point on this trace.

use baps_bench::{print_two_org_figure, Cli};
use baps_trace::Profile;

fn main() {
    let cli = Cli::parse();
    print_two_org_figure(Profile::CaNetII, cli, "Figure 7");
}
