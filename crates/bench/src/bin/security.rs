//! §6 reliability protocols: integrity + anonymity overhead.
//!
//! The paper claims the data-integrity (digital watermark) and
//! communication-anonymity protocols add trivial overhead. This binary
//! measures the protocol operations on synthetic documents across the Web
//! size spectrum and compares them against the 100 Mbps LAN transfer time
//! of the same documents.

use baps_bench::{banner, Cli};
use baps_core::LatencyParams;
use baps_crypto::{
    requester_open, target_serve, verify_document, KeyPair, PeerId, ProxySigner, SecureRelay,
};
use baps_sim::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn time_ms<R>(iters: u32, mut f: impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() * 1000.0 / iters as f64
}

fn main() {
    let cli = Cli::parse();
    banner("§6: integrity + anonymity protocol overhead vs LAN transfer time");

    let mut rng = StdRng::seed_from_u64(6);
    let signer = ProxySigner::generate(&mut rng);
    let requester_keys = KeyPair::generate(&mut rng);
    let target_keys = KeyPair::generate(&mut rng);
    let latency = LatencyParams::paper();

    let mut table = Table::new(vec![
        "doc size",
        "watermark sign (ms)",
        "verify (ms)",
        "secure relay e2e (ms)",
        "LAN transfer (ms)",
        "integrity % of LAN",
    ]);
    let iters = if cli.scale < 1.0 { 5 } else { 20 };
    for size in [1usize << 10, 8 << 10, 64 << 10, 1 << 20] {
        let mut doc = vec![0u8; size];
        rng.fill(doc.as_mut_slice());
        let wm = signer.watermark(&doc);

        let sign_ms = time_ms(iters, || signer.watermark(&doc));
        let verify_ms = time_ms(iters, || {
            verify_document(&signer.public_key(), &doc, &wm).unwrap()
        });
        let relay_ms = time_ms(iters, || {
            let mut relay = SecureRelay::new();
            let sealed = relay
                .begin(&mut rng, PeerId(1), &target_keys.public, "u")
                .unwrap();
            let reply = target_serve(&mut rng, &target_keys, &sealed, &doc, wm).unwrap();
            let (_, delivery) = relay.complete(reply, &requester_keys.public).unwrap();
            requester_open(&requester_keys, &delivery).unwrap()
        });
        let lan_ms = latency.lan_ms(size as u64);
        table.row(vec![
            format!("{} KB", size >> 10),
            format!("{sign_ms:.3}"),
            format!("{verify_ms:.3}"),
            format!("{relay_ms:.3}"),
            format!("{lan_ms:.3}"),
            format!("{:.2}", 100.0 * (sign_ms + verify_ms) / lan_ms),
        ]);
    }
    print!(
        "{}",
        if cli.csv {
            table.to_csv()
        } else {
            table.render()
        }
    );
    println!(
        "\n(paper §6: \"the associated overheads are trivial\" — integrity costs are a few\n\
         percent of a single LAN transfer; the secure relay adds symmetric encryption,\n\
         which is the dominant cost but still commensurate with one transfer.)"
    );
}
