//! CI gate for the `HEALTH BAPS/1.0` SLO engine and the tail-latency
//! exemplar pipeline (DESIGN.md §14).
//!
//! Starts a loopback deployment whose origin stalls every reply by a
//! fixed 15 ms (so every origin-tier GET lands in the ≥10 ms exemplar
//! tail deterministically), drives load, and then asserts the whole
//! observability loop end to end:
//!
//! 1. `HEALTH` answers 200 with the verdict headers, and the body parses
//!    into the full default rule table — every rule evaluated, every
//!    verdict well-formed.
//! 2. A second scrape two seconds later shows the windows moving: uptime
//!    advanced and the 10 s window saw the between-scrape requests.
//! 3. The `METRICS` exposition conforms (including exemplar syntax) and
//!    carries at least one tail-bucket exemplar on
//!    `baps_request_latency_ms`.
//! 4. **Every** exemplar trace id — from the exposition and from any
//!    offending `HEALTH` rule — resolves through `TRACE` to a complete
//!    sampled span tree (≥ 2 spans: the client fetch root plus at least
//!    one proxy-side hop under it).
//!
//! Exits nonzero on the first violated assertion; CI runs this next to
//! the metrics smoke. Usage: `health_smoke [--io-mode reactor]`.

use baps_obs::{prom, span};
use baps_proxy::{
    response_code, DocumentStore, FaultConfig, FaultPlan, HealthReport, IoMode, TestBed,
    TestBedConfig,
};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

/// Requests in the initial load phase (unique URLs — all origin misses).
const LOAD_REQUESTS: u32 = 192;
/// Requests driven between the two HEALTH scrapes.
const BETWEEN_REQUESTS: u32 = 64;

fn fail(what: &str) -> ! {
    eprintln!("FAIL: {what}");
    std::process::exit(1);
}

fn main() {
    let mut io_mode = IoMode::Threads;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--io-mode" => {
                io_mode = match args.next().as_deref() {
                    Some("threads") => IoMode::Threads,
                    Some("reactor") => IoMode::Reactor,
                    other => fail(&format!("bad --io-mode {other:?}")),
                }
            }
            "--help" | "-h" => {
                println!("usage: health_smoke [--io-mode threads|reactor]");
                return;
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    // Every origin reply stalls 15 ms mid-frame: decisively past the
    // 10 ms exemplar tail floor, far under every timeout — so each of
    // the all-miss GETs below is a *slow success*, and the 1-in-32
    // head-sampled ones must leave tail exemplars behind.
    let faults = Arc::new(FaultPlan::new(
        42,
        FaultConfig {
            p_origin_stall: 1.0,
            stall: Duration::from_millis(15),
            ..FaultConfig::default()
        },
    ));
    let store = DocumentStore::synthetic(512, 200, 1_500, 42);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: 2,
            io_mode,
            fault_plan: Some(faults),
            ..TestBedConfig::default()
        },
    )
    .unwrap_or_else(|e| fail(&format!("test bed failed to start: {e}")));
    println!(
        "# health_smoke: io_mode={} load={LOAD_REQUESTS}+{BETWEEN_REQUESTS} requests",
        bed.proxy.io_mode().name()
    );

    for i in 0..LOAD_REQUESTS {
        let url = format!("http://origin/doc/{i}");
        bed.clients[(i % 2) as usize]
            .fetch(&url)
            .unwrap_or_else(|e| fail(&format!("load fetch {url} failed: {e}")));
    }

    // --- Scrape 1: rule evaluation over the loaded windows. ---------
    let first = scrape_health(&bed);
    let table_len = TestBedConfig::default().slo.rules.len();
    if first.rules.len() != table_len {
        fail(&format!(
            "expected {table_len} evaluated rules, got {}",
            first.rules.len()
        ));
    }
    let signals: BTreeSet<&str> = first.rules.iter().map(|r| r.signal.name()).collect();
    if signals.len() != table_len {
        fail("default rule table must evaluate each signal exactly once");
    }
    for rule in &first.rules {
        println!(
            "# rule={} value={:.4} verdict={}",
            rule.name,
            rule.value,
            rule.verdict.name()
        );
    }
    let p999 = first
        .rule("p999_ceiling")
        .unwrap_or_else(|| fail("p999_ceiling rule missing"));
    if p999.value < 10.0 {
        fail(&format!(
            "stalled origin must push windowed p999 past the 10ms tail floor, got {:.3}ms",
            p999.value
        ));
    }

    // --- Scrape 2, two seconds later: the windows must move. --------
    for i in 0..BETWEEN_REQUESTS {
        bed.clients[0]
            .fetch(&format!("http://origin/doc/{}", LOAD_REQUESTS + i))
            .unwrap_or_else(|e| fail(&format!("between-scrape fetch failed: {e}")));
    }
    std::thread::sleep(Duration::from_secs(2));
    let second = scrape_health(&bed);
    if second.uptime_secs <= first.uptime_secs {
        fail(&format!(
            "uptime did not advance between scrapes ({} -> {})",
            first.uptime_secs, second.uptime_secs
        ));
    }
    let w10 = second
        .windows
        .iter()
        .find(|w| w.window_secs == 10)
        .unwrap_or_else(|| fail("10s window line missing"));
    if w10.requests < BETWEEN_REQUESTS as u64 {
        fail(&format!(
            "10s window must cover the {BETWEEN_REQUESTS} between-scrape requests, saw {}",
            w10.requests
        ));
    }
    if w10.span_secs == 0 || w10.req_per_s <= 0.0 {
        fail("10s window has no span/rate despite fresh load");
    }

    // --- Exemplars: exposition-conformant and TRACE-resolvable. -----
    let metrics = bed.clients[0]
        .proxy_metrics_raw()
        .unwrap_or_else(|e| fail(&format!("METRICS scrape failed: {e}")));
    let text = String::from_utf8(metrics.body.to_vec())
        .unwrap_or_else(|_| fail("METRICS body is not UTF-8"));
    prom::check_conformance(&text)
        .unwrap_or_else(|e| fail(&format!("exposition violates conformance: {e}")));
    let samples = prom::parse(&text).unwrap_or_else(|e| fail(&format!("bad exposition: {e}")));
    let mut exemplar_traces: BTreeSet<String> = samples
        .iter()
        .filter(|s| s.name == "baps_request_latency_ms_bucket")
        .filter_map(|s| s.exemplar.as_ref())
        .filter_map(|e| e.trace_id().map(str::to_string))
        .collect();
    if exemplar_traces.is_empty() {
        fail("no tail-bucket exemplars on baps_request_latency_ms after 15ms-stall load");
    }
    for rule in second.offending() {
        for t in &rule.exemplars {
            exemplar_traces.insert(format!("{t:016x}"));
        }
    }
    println!(
        "# resolving {} exemplar trace ids via TRACE",
        exemplar_traces.len()
    );

    let trace = bed.clients[0]
        .proxy_trace_raw()
        .unwrap_or_else(|e| fail(&format!("TRACE scrape failed: {e}")));
    let dump =
        String::from_utf8(trace.body.to_vec()).unwrap_or_else(|_| fail("TRACE body is not UTF-8"));
    let records =
        span::parse_jsonl(&dump).unwrap_or_else(|e| fail(&format!("bad TRACE dump: {e}")));
    let trees = span::assemble(&records);
    for id in &exemplar_traces {
        let trace_id: baps_obs::TraceId = id
            .parse()
            .unwrap_or_else(|_| fail(&format!("bad exemplar trace id {id:?}")));
        if !span::sampled(trace_id) {
            fail(&format!("exemplar trace {id} is not head-sampled"));
        }
        let tree = trees
            .iter()
            .find(|t| t.trace == trace_id)
            .unwrap_or_else(|| fail(&format!("exemplar trace {id} has no TRACE span tree")));
        let spans = tree.root.records().len();
        if spans < 2 {
            fail(&format!(
                "exemplar trace {id} resolved to a degenerate tree ({spans} span)"
            ));
        }
    }

    println!(
        "PASS: health_smoke io_mode={} rules={} verdict={} exemplars_resolved={}",
        bed.proxy.io_mode().name(),
        second.rules.len(),
        second.verdict.name(),
        exemplar_traces.len()
    );
}

/// One wire HEALTH scrape: asserts transport-level shape, returns the
/// parsed verdict document.
fn scrape_health(bed: &TestBed) -> HealthReport {
    let reply = bed.clients[0]
        .proxy_health_raw()
        .unwrap_or_else(|e| fail(&format!("HEALTH scrape failed: {e}")));
    if response_code(&reply) != Some(200) {
        fail(&format!("HEALTH answered {:?}", reply.start));
    }
    for header in ["Verdict", "Rules", "Uptime-Seconds", "Io-Mode"] {
        if reply.get(header).is_none() {
            fail(&format!("HEALTH reply missing {header} header"));
        }
    }
    let body =
        std::str::from_utf8(&reply.body).unwrap_or_else(|_| fail("HEALTH body is not UTF-8"));
    let report =
        HealthReport::parse(body).unwrap_or_else(|e| fail(&format!("bad verdict document: {e}")));
    if reply.get("Verdict") != Some(report.verdict.name()) {
        fail("Verdict header disagrees with the document verdict");
    }
    report
}
