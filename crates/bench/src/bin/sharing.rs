//! "How much is browser cache data sharable?" — the paper's §4.1 question,
//! answered directly from the traces: cross-client re-reference rates,
//! shared-document fractions, and the implied upper bound on any
//! peer-sharing hit ratio.

use baps_bench::{banner, load_profile, Cli};
use baps_sim::{pct, Table};
use baps_trace::{Profile, SharingStats};

fn main() {
    let cli = Cli::parse();
    banner("§4.1: sharable data locality across the five traces");
    let mut table = Table::new(vec![
        "trace",
        "unique docs",
        "shared docs %",
        "mean sharers",
        "cross-client rerefs %",
        "cross-client bytes %",
        "self rerefs %",
    ]);
    for profile in Profile::all() {
        let (trace, _) = load_profile(profile, cli);
        let s = SharingStats::compute(&trace);
        table.row(vec![
            profile.name().to_owned(),
            format!("{}", s.unique_docs()),
            pct(s.shared_doc_pct()),
            format!("{:.1}", s.mean_sharers),
            pct(s.sharable_request_pct()),
            pct(s.sharable_byte_pct()),
            pct(100.0 * s.self_rerefs as f64 / s.requests.max(1) as f64),
        ]);
    }
    if cli.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
    println!(
        "\nCross-client re-references upper-bound what *any* sharing scheme (proxy or\n\
         browsers-aware) can serve from another client's history; the browsers-aware\n\
         proxy harvests the slice of them whose holder still caches the document\n\
         after the proxy evicted it. CA*netII's 3 clients leave little to share —\n\
         the Fig. 7 limit case."
    );
}
