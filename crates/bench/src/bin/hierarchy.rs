//! Extension: two-level proxy hierarchies with browsers-aware groups.
//!
//! The paper's miss path goes to "an upper level proxy"; its follow-up
//! (TKDE 2004) builds a hybrid hierarchy. This experiment quantifies what
//! browsers-awareness adds at each scope on top of a parent proxy:
//! plain hierarchy vs per-group indexes vs a global index, across group
//! counts.

use baps_bench::{banner, load_profile, Cli};
use baps_core::LatencyParams;
use baps_sim::{pct, run_hierarchy, HierHit, HierarchyConfig, SharingMode, Table};
use baps_trace::Profile;

fn main() {
    let cli = Cli::parse();
    banner("Extension: two-level hierarchy with browsers-aware groups (NLANR-bo1)");
    let (trace, stats) = load_profile(Profile::NlanrBo1, cli);
    let latency = LatencyParams::paper();

    let mut table = Table::new(vec![
        "groups", "sharing", "HR %", "BHR %", "local %", "L1 %", "remote %", "L2 %",
    ]);
    for n_groups in [2u32, 4, 8] {
        for mode in [
            SharingMode::NoSharing,
            SharingMode::GroupBrowsersAware,
            SharingMode::GlobalBrowsersAware,
        ] {
            let cfg = HierarchyConfig::from_stats(&stats, n_groups, mode);
            let s = run_hierarchy(&trace, &cfg, &latency);
            table.row(vec![
                format!("{n_groups}"),
                mode.label().to_owned(),
                pct(s.metrics.hit_ratio()),
                pct(s.metrics.byte_hit_ratio()),
                pct(s.metrics.class_ratio(HierHit::LocalBrowser)),
                pct(s.metrics.class_ratio(HierHit::L1Proxy)),
                pct(s.metrics.class_ratio(HierHit::RemoteBrowser)),
                pct(s.metrics.class_ratio(HierHit::L2Proxy)),
            ]);
        }
    }
    if cli.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
    println!(
        "\nBrowsers-awareness composes with the hierarchy: group indexes recover\n\
         capacity lost to L1 partitioning, and a global index adds the cross-group\n\
         sharing a parent proxy alone cannot provide."
    );
}
