//! Runs every experiment binary in sequence (in-process), printing the
//! complete paper-reproduction report. `tee` it into a file to regenerate
//! the data behind EXPERIMENTS.md:
//!
//! ```sh
//! cargo run --release -p baps-bench --bin runall | tee experiments.txt
//! ```

use std::process::{Command, Stdio};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "memhit",
        "overhead",
        "sharing",
        "security",
        "ablation",
        "latency",
        "hierarchy",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        let path = dir.join(bin);
        eprintln!(">>> running {bin} {}", args.join(" "));
        let status = Command::new(&path)
            .args(&args)
            .stdout(Stdio::inherit())
            .stderr(Stdio::inherit())
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("failed to launch {} ({e}); build with `cargo build --release -p baps-bench` first", path.display());
                std::process::exit(1);
            }
        }
    }
}
