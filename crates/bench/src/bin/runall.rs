//! Runs every experiment binary in sequence (in-process), printing the
//! complete paper-reproduction report. `tee` it into a file to regenerate
//! the data behind EXPERIMENTS.md:
//!
//! ```sh
//! cargo run --release -p baps-bench --bin runall | tee experiments.txt
//! ```
//!
//! With `--parallel`, the binaries fan out over a scoped worker pool with
//! captured output; reports are still printed in input order, so the
//! emitted text is identical to a sequential run, just wall-clock faster
//! on multi-core machines. Remaining arguments are forwarded to every
//! binary (e.g. `--scale 0.1 --csv`).

use std::io::Write;
use std::process::{Command, Output, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const BINS: [&str; 15] = [
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "memhit",
    "overhead",
    "sharing",
    "security",
    "ablation",
    "latency",
    "hierarchy",
];

fn main() {
    let mut parallel = false;
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--parallel" {
                parallel = true;
                false
            } else {
                true
            }
        })
        .collect();
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir").to_path_buf();

    if !parallel {
        for bin in BINS {
            eprintln!(">>> running {bin} {}", args.join(" "));
            let status = Command::new(dir.join(bin))
                .args(&args)
                .stdout(Stdio::inherit())
                .stderr(Stdio::inherit())
                .status();
            match status {
                Ok(s) if s.success() => {}
                Ok(s) => fail(bin, &format!("exited with {s}")),
                Err(e) => launch_fail(bin, &e),
            }
        }
        return;
    }

    // Parallel mode: a shared cursor hands out binary indices; each slot
    // stores the captured output and the coordinator prints slots in input
    // order, blocking on the earliest unfinished one.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(BINS.len());
    eprintln!(
        ">>> running {} experiment binaries over {threads} workers",
        BINS.len()
    );
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<std::io::Result<Output>>>> =
        (0..BINS.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(bin) = BINS.get(i) else { break };
                let out = Command::new(dir.join(bin)).args(&args).output();
                *slots[i].lock().expect("slot lock") = Some(out);
            });
        }
        // Drain in input order as results land; parking briefly instead of
        // a condvar keeps the loop simple (runs are seconds, not micros).
        for (i, bin) in BINS.iter().enumerate() {
            let output = loop {
                if let Some(out) = slots[i].lock().expect("slot lock").take() {
                    break out;
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            };
            eprintln!(">>> {bin} {}", args.join(" "));
            match output {
                Ok(out) => {
                    std::io::stdout().write_all(&out.stdout).expect("stdout");
                    std::io::stderr().write_all(&out.stderr).expect("stderr");
                    if !out.status.success() {
                        fail(bin, &format!("exited with {}", out.status));
                    }
                }
                Err(e) => launch_fail(bin, &e),
            }
        }
    });
}

fn fail(bin: &str, what: &str) -> ! {
    eprintln!("{bin} {what}");
    std::process::exit(1);
}

fn launch_fail(bin: &str, e: &std::io::Error) -> ! {
    eprintln!(
        "failed to launch {bin} ({e}); build with `cargo build --release -p baps-bench` first"
    );
    std::process::exit(1);
}
