//! Calibration helper (developer tool): searches generator parameters per
//! profile so the synthetic traces hit the paper's Table 1 anchors
//! (max hit ratio and max byte hit ratio).
//!
//! Not part of the experiment suite; run it after changing the generator
//! and copy the printed parameters into `baps-trace/src/profiles.rs`.

use baps_trace::{Profile, SynthConfig, TraceStats};

fn measure(cfg: &SynthConfig, seed: u64, scale: f64) -> (f64, f64, f64, f64) {
    let scaled = cfg.scaled(scale);
    let stats = TraceStats::compute(&scaled.generate(seed));
    (
        stats.max_hit_ratio,
        stats.max_byte_hit_ratio,
        stats.total_gb() / scale,
        stats.infinite_gb() / scale,
    )
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    for profile in Profile::all() {
        let target = profile.targets();
        let mut cfg = profile.config();
        let seed = profile.canonical_seed();

        // 1. Binary-search the doc universe for the max hit ratio.
        let (mut lo, mut hi) = (cfg.n_requests as f64 * 0.05, cfg.n_requests as f64 * 3.0);
        for _ in 0..13 {
            let mid = (lo + hi) / 2.0;
            cfg.n_docs = (mid as u32).max(cfg.n_clients);
            let (hr, ..) = measure(&cfg, seed, scale);
            if hr > target.max_hit_ratio {
                lo = mid; // too much locality: more docs
            } else {
                hi = mid;
            }
        }

        // 2. If the universe alone cannot reach the target, tune temporal
        // locality (more of it raises the hit ratio).
        let (hr_now, ..) = measure(&cfg, seed, scale);
        if (hr_now - target.max_hit_ratio).abs() > 1.0 {
            let (mut tlo, mut thi) = (0.0f64, 0.8f64);
            for _ in 0..10 {
                let mid = (tlo + thi) / 2.0;
                cfg.p_temporal = mid;
                let (hr, ..) = measure(&cfg, seed, scale);
                if hr > target.max_hit_ratio {
                    thi = mid;
                } else {
                    tlo = mid;
                }
            }
        }

        // 3. Binary-search the popularity-size bias for max byte hit ratio.
        let (mut blo, mut bhi) = (0.0f64, 1.0f64);
        for _ in 0..10 {
            let mid = (blo + bhi) / 2.0;
            cfg.pop_size_bias = mid;
            let (_, bhr, ..) = measure(&cfg, seed, scale);
            if bhr > target.max_byte_hit_ratio {
                blo = mid; // still too high: stronger bias
            } else {
                bhi = mid;
            }
        }

        // 4. Scale the size model so total GB matches.
        let (hr, bhr, total_gb, inf_gb) = measure(&cfg, seed, scale);
        let size_mult = target.total_gb / total_gb;
        cfg.size_model.body_median *= size_mult;
        cfg.size_model.tail_scale *= size_mult;
        let (hr2, bhr2, total2, inf2) = measure(&cfg, seed, scale);

        println!("--- {} (scale {scale}) ---", profile.name());
        println!(
            "  pass1: HR {hr:.2} (target {:.1})  BHR {bhr:.2} (target {:.2})  total {total_gb:.2} inf {inf_gb:.2}",
            target.max_hit_ratio, target.max_byte_hit_ratio
        );
        println!(
            "  final: HR {hr2:.2}  BHR {bhr2:.2}  total {total2:.2} (target {:.1})  inf {inf2:.2} (target {:.1})",
            target.total_gb, target.infinite_gb
        );
        println!(
            "  params: n_docs = {}, p_temporal = {:.3}, pop_size_bias = {:.3}, body_median = {:.0}, tail_scale = {:.0}",
            cfg.n_docs,
            cfg.p_temporal,
            cfg.pop_size_bias,
            cfg.size_model.body_median,
            cfg.size_model.tail_scale
        );
    }
}
