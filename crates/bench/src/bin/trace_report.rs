//! Assemble `TRACE BAPS/1.0` dumps into causal span trees and print
//! per-kind critical-path attribution.
//!
//! Input is the JSONL span dump a proxy returns for the `TRACE` verb
//! (one span per line; see DESIGN.md §12). The report reconstructs the
//! trees with `baps_obs::span::assemble`, prints how many traces were
//! captured and how deep they stitch, renders the deepest tree as an
//! indented outline, and tabulates per-kind p50/p99 for both the whole
//! span and its *self time* (duration minus children — the share each
//! step contributes to the critical path).
//!
//! Usage:
//!
//! ```text
//! trace_report <dump.jsonl>        # read a saved TRACE body
//! trace_report -                   # read the dump from stdin
//! trace_report --live              # self-contained: start a loopback
//!                                  # deployment, drive a small workload,
//!                                  # scrape TRACE, and report on it
//! ```
//!
//! `--live` accepts `--require-multihop`: exit nonzero unless at least
//! one assembled tree spans three processes (client `fetch` root, a
//! proxy hop under it, and an origin/peer serve span under that). CI
//! runs this as the gating trace smoke.

use baps_bench::critical_path::{attribution, is_multihop, render_table, render_tree};
use baps_obs::span;
use baps_proxy::{response_code, DocumentStore, Source, TestBed, TestBedConfig};
use std::io::Read;

struct Args {
    input: Option<String>,
    live: bool,
    require_multihop: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        input: None,
        live: false,
        require_multihop: false,
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--live" => args.live = true,
            "--require-multihop" => args.require_multihop = true,
            "--help" | "-h" => {
                println!("usage: trace_report [<dump.jsonl> | -] [--live [--require-multihop]]");
                std::process::exit(0);
            }
            other if args.input.is_none() && !other.starts_with("--") => {
                args.input = Some(other.to_owned());
            }
            other => {
                eprintln!("error: unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if args.live == args.input.is_some() {
        eprintln!("error: pass exactly one of <dump.jsonl>, -, or --live");
        std::process::exit(2);
    }
    args
}

/// Drives a small loopback deployment through all three serve paths
/// (origin, proxy, peer) and returns the proxy's `TRACE` dump. Trace ids
/// are deterministic per (client, seq) and head sampling is a pure
/// function of the id, so this workload always yields sampled traces.
fn live_dump() -> String {
    // Small proxy cache so each round's flood evicts the round's seed
    // doc and the follow-up fetch becomes a peer hit (the same shape the
    // live tests use). Enough rounds that head sampling — a pure hash
    // keeping 1 trace in SAMPLE_ONE_IN — deterministically catches both
    // a peer-served and an origin-served fetch.
    let store = DocumentStore::synthetic(512, 200, 2_000, 42);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: 3,
            proxy_capacity: 2_500,
            browser_capacity: 64 << 10,
            ..TestBedConfig::default()
        },
    )
    .expect("loopback deployment starts");

    const ROUNDS: u32 = 60;
    let mut peer_hits = 0u32;
    for round in 0..ROUNDS {
        let url0 = format!("http://origin/doc/{}", round * 8);
        bed.clients[0].fetch(&url0).expect("seed fetch");
        for i in 1..8 {
            bed.clients[2]
                .fetch(&format!("http://origin/doc/{}", round * 8 + i))
                .expect("flood fetch");
        }
        let r = bed.clients[1].fetch(&url0).expect("follow-up fetch");
        if r.source == Source::Peer {
            peer_hits += 1;
        }
    }
    assert!(peer_hits > 0, "workload must produce at least one peer hit");

    let reply = bed.clients[0].proxy_trace_raw().expect("TRACE scrape");
    assert_eq!(response_code(&reply), Some(200), "TRACE must answer 200");
    let body = String::from_utf8(reply.body.to_vec()).expect("TRACE body is UTF-8");
    println!(
        "live deployment: {} fetches driven, {} peer hits, \
         TRACE returned {} bytes (Sample-One-In: {})",
        ROUNDS * 9,
        peer_hits,
        body.len(),
        reply.get("Sample-One-In").unwrap_or("?"),
    );
    bed.shutdown();
    body
}

fn main() {
    let args = parse_args();
    let text = if args.live {
        live_dump()
    } else {
        match args.input.as_deref() {
            Some("-") => {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .expect("read stdin");
                buf
            }
            Some(path) => {
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
            }
            None => unreachable!(),
        }
    };

    let records = match span::parse_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: bad TRACE dump: {e}");
            std::process::exit(1);
        }
    };
    let trees = span::assemble(&records);
    let traces: std::collections::HashSet<_> = trees.iter().map(|t| t.trace).collect();
    let multihop: Vec<_> = trees.iter().filter(|t| is_multihop(t)).collect();
    println!(
        "\n{} spans, {} traces, {} trees ({} spanning client+proxy+far side)",
        records.len(),
        traces.len(),
        trees.len(),
        multihop.len(),
    );

    if let Some(deepest) = trees.iter().max_by_key(|t| t.root.max_depth()) {
        println!(
            "\ndeepest tree (depth {}):\n{}",
            deepest.root.max_depth(),
            render_tree(deepest)
        );
    }

    println!("critical-path attribution (per span kind):");
    print!("{}", render_table(&attribution(&trees)));

    if args.require_multihop && multihop.is_empty() {
        eprintln!(
            "error: no complete multi-hop tree (client fetch -> proxy hop \
             -> origin/peer serve) in the dump"
        );
        std::process::exit(1);
    }
}
