//! §5 overhead estimation.
//!
//! Three claims to reproduce:
//!
//! 1. Remote-browser communication (transfer + bus contention) is a tiny
//!    fraction of total service time — paper: < 1.2% on every trace, with
//!    contention ≤ 0.12% of communication time.
//! 2. Delayed index updates (1%–10% staleness thresholds) degrade the hit
//!    ratio only slightly — paper (citing Summary Cache): 0.2%–1.7%.
//! 3. The browser index is small: ~28 MB for 1000 clients with 8 MB browser
//!    caches of 8 KB objects (16-byte MD5 signature per entry), and Bloom
//!    summaries shrink it by another order of magnitude.

use baps_bench::{banner, load_profile, Cli};
use baps_core::{BrowserSizing, LatencyParams, Organization, SystemConfig};
use baps_index::{IndexModel, BYTES_PER_ENTRY};
use baps_sim::{human_bytes, pct, run, Table};
use baps_trace::Profile;

fn main() {
    let cli = Cli::parse();
    let latency = LatencyParams::paper();

    banner("§5a: remote-browser communication overhead (BAPS, 10% proxy, min browsers)");
    let mut comm = Table::new(vec![
        "trace",
        "remote comm (s)",
        "contention (s)",
        "total service (s)",
        "comm % of total",
        "contention % of comm",
    ]);
    for profile in Profile::all() {
        let (trace, stats) = load_profile(profile, cli);
        let mut cfg = SystemConfig::paper_default(
            Organization::BrowsersAware,
            (stats.infinite_cache_bytes / 10).max(1),
        );
        cfg.browser_sizing = BrowserSizing::Minimum;
        let r = run(&trace, &stats, &cfg, &latency);
        comm.row(vec![
            profile.name().to_owned(),
            format!("{:.1}", r.latency.remote_comm_ms / 1000.0),
            format!("{:.3}", r.latency.contention_ms / 1000.0),
            format!("{:.1}", r.latency.total_ms() / 1000.0),
            pct(r.latency.remote_overhead_pct()),
            pct(r.latency.contention_pct_of_comm()),
        ]);
    }
    print!(
        "{}",
        if cli.csv {
            comm.to_csv()
        } else {
            comm.render()
        }
    );
    println!("(paper: communication < 1.2% of service time; contention <= 0.12% of comm time)\n");

    banner("§5b: hit-ratio degradation under delayed / compressed index updates (NLANR-uc)");
    let (trace, stats) = load_profile(Profile::NlanrUc, cli);
    let base_cfg = |model: IndexModel| {
        let mut cfg = SystemConfig::paper_default(
            Organization::BrowsersAware,
            (stats.infinite_cache_bytes / 10).max(1),
        );
        cfg.browser_sizing = BrowserSizing::Minimum;
        cfg.index_model = model;
        cfg
    };
    let models = [
        IndexModel::Exact,
        IndexModel::Delayed {
            threshold: 0.01,
            interval_ms: None,
        },
        IndexModel::Delayed {
            threshold: 0.10,
            interval_ms: None,
        },
        IndexModel::Bloom {
            bits_per_item: 10,
            threshold: 0.05,
        },
    ];
    let runs: Vec<_> = models
        .iter()
        .map(|&m| (m, run(&trace, &stats, &base_cfg(m), &latency)))
        .collect();
    let exact_hr = runs[0].1.hit_ratio();
    let mut staleness = Table::new(vec![
        "index model",
        "HR %",
        "degradation (pts)",
        "wasted probes",
        "update msgs",
        "update traffic",
        "index memory",
    ]);
    for (model, r) in &runs {
        staleness.row(vec![
            model.label(),
            pct(r.hit_ratio()),
            format!("{:.2}", exact_hr - r.hit_ratio()),
            format!("{}", r.metrics.wasted_probes),
            format!("{}", r.index_stats.messages),
            human_bytes(r.index_stats.update_bytes),
            human_bytes(r.index_memory_bytes),
        ]);
    }
    print!(
        "{}",
        if cli.csv {
            staleness.to_csv()
        } else {
            staleness.render()
        }
    );
    println!("(paper: 1%-10% delay thresholds degrade hit ratios by only ~0.2%-1.7%)\n");

    banner("§5c: index space for the paper's sizing example");
    // 1000 clients, 8 MB browser caches, 8 KB average documents.
    let clients: u64 = 1000;
    let docs_per_client: u64 = (8 << 20) / (8 << 10);
    let exact_bytes = clients * docs_per_client * BYTES_PER_ENTRY;
    let md5_only = clients * docs_per_client * 16;
    let bloom_bytes = clients * docs_per_client * 10 / 8;
    println!(
        "1000 clients x 8 MB browsers of 8 KB docs = {} entries",
        clients * docs_per_client
    );
    println!(
        "  16-byte MD5 signatures alone:   {}",
        human_bytes(md5_only)
    );
    println!(
        "  exact directory (ours, {}B/entry): {}",
        BYTES_PER_ENTRY,
        human_bytes(exact_bytes)
    );
    println!(
        "  Bloom summaries (10 bits/doc):   {}  (paper: ~2 MB with tolerable inaccuracy)",
        human_bytes(bloom_bytes)
    );
}
