//! Chaos soak for the live proxy runtime: drive a full loopback
//! [`TestBed`] under a seeded fault schedule and assert the reliability
//! invariants the paper's design promises (§6).
//!
//! Faults injected (all drawn deterministically from `--seed`, see
//! `baps_proxy::fault`): peers that refuse, vanish, stall mid-frame,
//! truncate frames, or corrupt bodies; an origin that 500s, stalls, or
//! hangs up; a proxy that stalls or severs client connections; and full
//! proxy restarts (every open connection dropped at once).
//!
//! Invariants checked:
//!
//! 1. **Correct bytes or a clean error** — every successful fetch returns
//!    the exact origin body (watermark-verified); corruption is never
//!    silently served.
//! 2. **Bounded time** — no fetch exceeds a hard per-request deadline and
//!    the whole schedule finishes inside a wall-clock budget (no
//!    deadlocks, no unbounded retry loops).
//! 3. **Counter balance** — at the proxy,
//!    `requests == proxy_hits + disk_hits + peer_hits + origin_fetches +
//!    errors`.
//! 4. **Determinism** — run twice (unless `--once`), the two runs inject
//!    identical per-kind fault counts and observe identical per-source
//!    outcome tallies.
//! 5. **Warm restart** (`--restart-warm`) — the proxy runs with a
//!    persistent disk tier and is fully restarted in place halfway through
//!    the schedule. The restarted proxy must re-open its store non-empty
//!    and serve disk hits afterwards, its counters must stay monotonic
//!    across the restart, and every post-restart body is still byte-exact
//!    (invariant 1 keeps applying).
//! 6. **SLO verdicts** — after the schedule, the `HEALTH` verb
//!    (DESIGN.md §14) must judge the degraded-but-working deployment
//!    `ok` against a chaos-calibrated rule table, and a post-schedule
//!    burst of GETs for URLs that exist nowhere (every one a clean
//!    proxy-side error) must flip `error_burn` to `critical`
//!    deterministically.
//!
//! On any violation the binary dumps the deployment's flight-recorder
//! ring (the last ~8k span events before the violation, trace ids
//! included) headed by a live saturation snapshot and the current
//! `HEALTH` verdict line (offending rules + their tail exemplar trace
//! ids), prints a reproduction command, and exits nonzero.
//!
//! With `--scenario <name>` the random schedule is replaced by one of
//! the deterministic adversarial shapes from `baps_trace::scenarios`
//! (`flash-crowd`, `invalidation-storm`, `diurnal-swing`, `heavy-tail`),
//! replayed sequentially against a disk-backed deployment with **no**
//! injected faults — the workload shape is the adversary. The same
//! invariants apply (byte-exact watermark-valid bodies, bounded tails,
//! counter balance, run-to-run determinism), `Invalidate` ops execute
//! the full publisher protocol (origin mutate + piggybacked replica
//! discards + one wire INVALIDATE), and `flash-crowd` additionally runs
//! a 16-worker thundering-herd probe that must coalesce to exactly one
//! origin fetch.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p baps-bench --bin chaos_soak -- \
//!     [--seed N] [--requests N] [--clients N] [--docs N] \
//!     [--intensity F] [--direct] [--once] [--restart-warm] \
//!     [--scenario NAME] [--io-mode threads|reactor]
//! ```
//!
//! `--io-mode reactor` runs the proxy on the epoll reactor (DESIGN.md
//! §13) instead of the worker pool; every invariant above — byte-exact
//! bodies under stalls/drops/truncation/corruption, bounded time,
//! counter balance, run-to-run determinism — is gated identically in
//! both modes.

use baps_bench::scenario::{
    bed_config, flash_crowd_herd, replay_schedule, scenario_corpus, ScenarioTally,
};
use baps_obs::{EventKind, TraceId};
use baps_proxy::fault::FaultKind;
use baps_proxy::{
    DocumentStore, FaultConfig, FaultCounts, FaultPlan, IoMode, ProxyError, SloRule, SloSignal,
    SloTable, Source, TestBed, TestBedConfig, Verdict,
};
use baps_trace::Scenario;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hard ceiling on one fetch (client deadline 900 ms x retries + backoff
/// leaves ample margin; anything slower indicates a hang).
const FETCH_DEADLINE: Duration = Duration::from_secs(10);

/// GETs for nonexistent URLs in the post-schedule error burst. Every one
/// is a clean proxy-side error, so the windowed error rate the burst
/// window sees is 1.0 — far past any sane critical ceiling.
const BURST_REQUESTS: u32 = 200;

/// SLO table calibrated to the envelope this soak deliberately drives:
/// at intensity 1.0 a few percent of fetches fail after bounded retries
/// and tails ride the 1.3 s stall/timeout ladder, which the stock
/// [`SloTable::default`] ceilings (tuned for production-shaped traffic)
/// would flag. These ceilings sit above the chaos envelope while staying
/// far below what the error burst in [`check_health_flip`] produces.
fn chaos_slo() -> SloTable {
    SloTable {
        rules: vec![
            SloRule::new("error_burn", SloSignal::ErrorRate, 10, 0.30, 0.60),
            SloRule::new(
                "p999_ceiling",
                SloSignal::RequestP999Ms,
                60,
                2_500.0,
                8_000.0,
            ),
            SloRule::new(
                "origin_fallback",
                SloSignal::OriginFallbackRate,
                10,
                0.60,
                0.90,
            ),
            SloRule::new("queue_wait", SloSignal::QueueWaitP99Ms, 10, 250.0, 1_000.0),
            SloRule::new("recorder_shed", SloSignal::RecorderShedPerSec, 10, 1e3, 1e5),
            SloRule::new(
                "reactor_ready_depth",
                SloSignal::ReactorReadyDepth,
                1,
                1024.0,
                8192.0,
            ),
        ],
    }
}

#[derive(Debug, Clone, Copy)]
struct SoakArgs {
    seed: u64,
    requests: u64,
    clients: u32,
    docs: usize,
    intensity: f64,
    direct: bool,
    once: bool,
    restart_warm: bool,
    scenario: Option<Scenario>,
    io_mode: IoMode,
}

impl Default for SoakArgs {
    fn default() -> Self {
        SoakArgs {
            seed: 42,
            requests: 2000,
            clients: 6,
            docs: 48,
            intensity: 1.0,
            direct: false,
            once: false,
            restart_warm: false,
            scenario: None,
            io_mode: IoMode::default(),
        }
    }
}

impl SoakArgs {
    /// The full parameter set as a copy-pasteable invocation. This is
    /// the *complete* reproduction recipe — every knob that shapes the
    /// schedule (profile/scenario included) appears here, and the same
    /// line heads the flight-recorder dump on failure.
    fn repro_line(&self) -> String {
        format!(
            "cargo run --release -p baps-bench --bin chaos_soak -- \
             --seed {} --requests {} --clients {} --docs {} --intensity {}{}{}{}{}{}",
            self.seed,
            self.requests,
            self.clients,
            self.docs,
            self.intensity,
            if self.direct { " --direct" } else { "" },
            if self.once { " --once" } else { "" },
            if self.restart_warm {
                " --restart-warm"
            } else {
                ""
            },
            match self.scenario {
                Some(s) => format!(" --scenario {}", s.name()),
                None => String::new(),
            },
            match self.io_mode {
                IoMode::Threads => "",
                IoMode::Reactor => " --io-mode reactor",
            },
        )
    }
}

/// Outcome tallies that must be identical across same-seed runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Tally {
    local: u64,
    proxy: u64,
    disk: u64,
    peer: u64,
    origin: u64,
    failed: u64,
}

impl Tally {
    fn successes(&self) -> u64 {
        self.local + self.proxy + self.disk + self.peer + self.origin
    }
}

struct SoakReport {
    tally: Tally,
    faults: FaultCounts,
    proxy_requests: u64,
    proxy_hits: u64,
    disk_hits: u64,
    peer_hits: u64,
    origin_fetches: u64,
    peer_fallbacks: u64,
    proxy_errors: u64,
    wall: Duration,
    violations: Vec<String>,
    /// The flight-recorder ring, rendered at the moment a violated run
    /// finished (`None` when the run was clean).
    recorder_dump: Option<String>,
}

/// Records a violation both in the driver's list and as an always-on
/// `VIOLATION` event in the flight-recorder ring, so the dump shows where
/// in the event stream the invariant broke.
fn violate(bed: &TestBed, violations: &mut Vec<String>, msg: String) {
    bed.recorder
        .note(TraceId::NONE, EventKind::Violation, msg.clone());
    violations.push(msg);
}

fn run_soak(args: SoakArgs, run: u32) -> SoakReport {
    // Each run gets its own disk root so the determinism pair compares two
    // cold starts, not a cold one against a pre-warmed one.
    let disk_root = args.restart_warm.then(|| {
        let dir = std::env::temp_dir().join(format!("baps_chaos_{}_run{}", args.seed, run));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    });
    let store = DocumentStore::synthetic(args.docs, 256, 2048, args.seed);
    // Ground truth: what every fetch must return, byte for byte.
    let expected: HashMap<String, Vec<u8>> = (0..args.docs)
        .map(|i| {
            let url = format!("http://origin/doc/{i}");
            let body = store.get(&url).expect("synthetic doc exists").to_vec();
            (url, body)
        })
        .collect();

    let plan = Arc::new(FaultPlan::new(
        args.seed,
        FaultConfig::chaos(args.intensity),
    ));
    let mut bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: args.clients,
            io_mode: args.io_mode,
            // Small caches force churn: evictions, invalidations, and a
            // live peer-fetch path instead of an all-hits steady state.
            proxy_capacity: 16 << 10,
            browser_capacity: 8 << 10,
            direct_forward: args.direct,
            // The timeout ladder keeps stalls (1300 ms) decisively above
            // the client deadline, which in turn covers a full proxy
            // fallback chain of peer probes + origin fetch (200 ms each).
            client_timeout: Duration::from_millis(900),
            client_retries: 3,
            peer_timeout: Duration::from_millis(200),
            peer_retries: 1,
            origin_timeout: Duration::from_millis(200),
            origin_retries: 1,
            fault_plan: Some(Arc::clone(&plan)),
            disk_root: disk_root.clone(),
            slo: chaos_slo(),
            ..TestBedConfig::default()
        },
    )
    .expect("test bed starts");
    // With --restart-warm one *full* proxy restart (process-equivalent:
    // workers stopped, memory cache and index lost, disk tier and counter
    // baseline re-opened) lands deterministically at mid-schedule.
    let restart_at = args.restart_warm.then_some(args.requests / 2);
    let mut disk_hits_at_restart = 0;

    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x5eed_5eed);
    let mut tally = Tally::default();
    let mut violations = Vec::new();
    let t0 = Instant::now();

    for r in 0..args.requests {
        // The restart schedule is part of the fault plan: one draw per
        // request tick.
        if plan.restart_due() {
            bed.proxy.drop_connections();
        }
        if restart_at == Some(r) {
            let before = bed.proxy.stats();
            disk_hits_at_restart = before.disk_hits;
            bed.restart_proxy().expect("proxy restarts in place");
            let entries = bed.proxy.disk_stats().map_or(0, |d| d.entries);
            if entries == 0 {
                violate(
                    &bed,
                    &mut violations,
                    format!("request {r}: restarted proxy re-opened an empty disk tier"),
                );
            }
            let after = bed.proxy.stats();
            if after.requests < before.requests {
                violate(
                    &bed,
                    &mut violations,
                    format!(
                        "request {r}: counters regressed across restart \
                         ({} -> {} requests)",
                        before.requests, after.requests
                    ),
                );
            }
        }
        let client = &bed.clients[rng.gen_range(0..args.clients as usize)];
        let doc = rng.gen_range(0..args.docs);
        let url = format!("http://origin/doc/{doc}");
        let t = Instant::now();
        let result = client.fetch(&url);
        let dt = t.elapsed();
        if dt > FETCH_DEADLINE {
            violate(
                &bed,
                &mut violations,
                format!("request {r}: fetch of {url} took {dt:?} (> {FETCH_DEADLINE:?})"),
            );
        }
        match result {
            Ok(res) => {
                if res.body[..] != expected[&url][..] {
                    violate(
                        &bed,
                        &mut violations,
                        format!(
                            "request {r}: WRONG BYTES for {url} from {:?} \
                             ({} bytes, expected {})",
                            res.source,
                            res.body.len(),
                            expected[&url].len()
                        ),
                    );
                }
                match res.source {
                    Source::LocalBrowser => tally.local += 1,
                    Source::Proxy => tally.proxy += 1,
                    Source::ProxyDisk => tally.disk += 1,
                    Source::Peer => tally.peer += 1,
                    Source::Origin => tally.origin += 1,
                }
            }
            Err(e) => {
                // Transient transport/backend failures that survived the
                // bounded retries are honest degradation; anything else
                // (silent 404s, integrity failures leaking through the
                // bypass path, protocol corruption) is a bug.
                match e {
                    ProxyError::Io(_) | ProxyError::Timeout | ProxyError::Unavailable(_) => {
                        tally.failed += 1;
                    }
                    other => violate(
                        &bed,
                        &mut violations,
                        format!("request {r}: unacceptable error for {url}: {other}"),
                    ),
                }
            }
        }
    }
    let wall = t0.elapsed();

    let stats = bed.proxy.stats();
    if stats.requests
        != stats.proxy_hits
            + stats.disk_hits
            + stats.peer_hits
            + stats.origin_fetches
            + stats.errors
    {
        violate(
            &bed,
            &mut violations,
            format!(
                "proxy counter imbalance: requests {} != proxy_hits {} + disk_hits {} \
                 + peer_hits {} + origin_fetches {} + errors {}",
                stats.requests,
                stats.proxy_hits,
                stats.disk_hits,
                stats.peer_hits,
                stats.origin_fetches,
                stats.errors
            ),
        );
    }
    if args.restart_warm && stats.disk_hits <= disk_hits_at_restart {
        violate(
            &bed,
            &mut violations,
            format!(
                "no warm-restart disk hits: {} at restart, {} at end",
                disk_hits_at_restart, stats.disk_hits
            ),
        );
    }
    if tally.successes() + tally.failed != args.requests {
        violate(
            &bed,
            &mut violations,
            format!(
                "driver tally imbalance: {} successes + {} failures != {} requests",
                tally.successes(),
                tally.failed,
                args.requests
            ),
        );
    }
    // Generous wall budget: average 50 ms per request plus a fixed floor.
    // A deadlock or unbounded retry loop blows well past this.
    let budget = Duration::from_millis(60_000 + 50 * args.requests);
    if wall > budget {
        violate(
            &bed,
            &mut violations,
            format!("wall clock {wall:?} exceeded budget {budget:?}"),
        );
    }

    // Fault counts are frozen *before* the HEALTH burst so the run-to-run
    // determinism comparison covers exactly the seeded schedule.
    let faults = plan.counts();
    check_health_flip(&bed, &mut violations);
    let recorder_dump = (!violations.is_empty()).then(|| {
        format!(
            "{}\n{}\n{}",
            saturation_line(&bed),
            health_line(&bed),
            bed.recorder.render()
        )
    });
    bed.shutdown();
    if let Some(dir) = disk_root {
        let _ = std::fs::remove_dir_all(dir);
    }
    SoakReport {
        tally,
        faults,
        proxy_requests: stats.requests,
        proxy_hits: stats.proxy_hits,
        disk_hits: stats.disk_hits,
        peer_hits: stats.peer_hits,
        origin_fetches: stats.origin_fetches,
        peer_fallbacks: stats.peer_fallbacks,
        proxy_errors: stats.errors,
        wall,
        violations,
        recorder_dump,
    }
}

/// One-line runtime-saturation snapshot taken while the deployment is
/// still alive; heads every violation dump so a hang or queue collapse
/// is distinguishable from a logic bug at a glance.
fn saturation_line(bed: &TestBed) -> String {
    let sat = bed.proxy.saturation();
    let reactor = bed.proxy.reactor_stats().map_or(String::new(), |r| {
        format!(
            " | reactor {} loops (fds {} peak {}, busy {:.1}%, \
             inline {} offloaded {})",
            r.loops,
            r.registered_fds,
            r.registered_fds_peak,
            r.busy_fraction * 100.0,
            r.inline_served,
            r.offloaded,
        )
    });
    format!(
        "=== saturation: pool {} workers (busy {} peak {}) | queue depth {} \
         (peak {}, rejected {}) | queue-wait p99 {:.3} ms over {} waits | \
         flight occupancy {} | recorder drops {}{} ===",
        sat.workers,
        sat.busy_workers,
        sat.busy_workers_peak,
        sat.queue_depth,
        sat.queue_depth_peak,
        sat.rejected,
        sat.queue_wait.quantile_ms(0.99),
        sat.queue_wait.count(),
        bed.proxy.flight_occupancy(),
        bed.recorder.dropped(),
        reactor,
    )
}

/// One-line `HEALTH` verdict snapshot taken while the deployment is
/// still alive: the document verdict plus every offending rule with its
/// measured value and tail exemplar trace ids (resolvable through
/// `TRACE`). Rides next to the saturation line atop every violation
/// dump, so an SLO burn is visible before reading the span stream.
fn health_line(bed: &TestBed) -> String {
    let report = bed.proxy.health();
    let offending: Vec<String> = report
        .offending()
        .map(|r| {
            let exemplars = if r.exemplars.is_empty() {
                "-".to_string()
            } else {
                r.exemplars
                    .iter()
                    .map(|t| format!("{t:016x}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            format!(
                "{}={}({:.3}) exemplars {}",
                r.name,
                r.verdict.name(),
                r.value,
                exemplars
            )
        })
        .collect();
    format!(
        "=== health: verdict={} | {} ===",
        report.verdict.name(),
        if offending.is_empty() {
            "all rules ok".to_string()
        } else {
            offending.join(" | ")
        }
    )
}

/// Invariant 6: the chaos-calibrated SLO table judges the completed
/// schedule `ok`, then an error burst flips `error_burn` to `critical`.
///
/// The flip is deterministic by construction: ten forced captures push
/// the window tick train ten seconds past the wall clock (parking the
/// once-a-second sampler), so the `error_burn` 10 s window at the next
/// evaluation starts exactly here and the burst below — GETs for URLs
/// that exist nowhere, every one an error — is the only traffic it sees.
fn check_health_flip(bed: &TestBed, violations: &mut Vec<String>) {
    let clean = bed.proxy.health();
    if clean.verdict != Verdict::Ok {
        let burning: Vec<String> = clean
            .offending()
            .map(|r| format!("{}={}({:.3})", r.name, r.verdict.name(), r.value))
            .collect();
        violate(
            bed,
            violations,
            format!(
                "clean-run HEALTH verdict {} (expected ok): {}",
                clean.verdict.name(),
                burning.join(", ")
            ),
        );
    }
    for _ in 0..10 {
        bed.proxy.sample_windows_now();
    }
    for i in 0..BURST_REQUESTS {
        let url = format!("http://origin/missing/{i}");
        if bed.clients[0].fetch(&url).is_ok() {
            violate(
                bed,
                violations,
                format!("burst fetch of nonexistent {url} returned a body"),
            );
        }
    }
    let burst = bed.proxy.health();
    match burst.rule("error_burn") {
        None => violate(
            bed,
            violations,
            "error_burn rule missing from HEALTH after burst".to_string(),
        ),
        Some(rule) if rule.verdict != Verdict::Critical => violate(
            bed,
            violations,
            format!(
                "error burst did not flip error_burn to critical: verdict {} \
                 (error rate {:.3} over a {} s span)",
                rule.verdict.name(),
                rule.value,
                rule.span_secs
            ),
        ),
        Some(_) => {}
    }
    if burst.verdict != Verdict::Critical {
        violate(
            bed,
            violations,
            format!(
                "document verdict {} after error burst (worst rule must win)",
                burst.verdict.name()
            ),
        );
    }
}

/// Workers in the flash-crowd thundering-herd probe.
const HERD_WORKERS: u32 = 16;

/// Bounded-tails gate for scenario replays: the p99.9 client-observed
/// fetch latency must stay under this on loopback. Generous against
/// scheduler jitter on shared hosts, but far below anything a stranded
/// waiter or retry loop would produce.
const TAIL_BUDGET_MS: f64 = 500.0;

/// Report of one sequential scenario replay (plus the herd probe when
/// the scenario is `flash-crowd`).
struct ScenarioReport {
    tally: ScenarioTally,
    invalidation_msgs: u64,
    origin_fetches: u64,
    coalesced_fetches: u64,
    disk_revalidations: u64,
    p99_ms: f64,
    p999_ms: f64,
    req_per_sec: f64,
    wall: Duration,
    /// `(workers, origin_fetches, coalesced)` of the herd probe.
    herd: Option<(u32, u64, u64)>,
    violations: Vec<String>,
    recorder_dump: Option<String>,
}

fn run_scenario_soak(scenario: Scenario, args: SoakArgs, run: u32) -> ScenarioReport {
    let cfg = scenario.config(args.requests, args.clients, args.docs as u32);
    let schedule = cfg.generate(args.seed);
    let (store, mut expected) = scenario_corpus(&schedule, args.seed);
    // Each run gets its own disk root so the determinism pair compares
    // two cold starts.
    let disk_root = std::env::temp_dir().join(format!(
        "baps_scenario_{}_{}_run{}",
        scenario.name(),
        args.seed,
        run
    ));
    let _ = std::fs::remove_dir_all(&disk_root);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            io_mode: args.io_mode,
            ..bed_config(&cfg, Some(disk_root.clone()))
        },
    )
    .expect("scenario bed starts");

    let outcome = replay_schedule(&bed, &schedule, &mut expected, args.seed, FETCH_DEADLINE);
    let mut violations = outcome.violations;

    let stats = bed.proxy.stats();
    if stats.requests
        != stats.proxy_hits
            + stats.disk_hits
            + stats.peer_hits
            + stats.origin_fetches
            + stats.errors
    {
        violate(
            &bed,
            &mut violations,
            format!(
                "proxy counter imbalance: requests {} != proxy_hits {} + disk_hits {} \
                 + peer_hits {} + origin_fetches {} + errors {}",
                stats.requests,
                stats.proxy_hits,
                stats.disk_hits,
                stats.peer_hits,
                stats.origin_fetches,
                stats.errors
            ),
        );
    }
    if outcome.tally.successes() + outcome.tally.failed != schedule.gets() {
        violate(
            &bed,
            &mut violations,
            format!(
                "driver tally imbalance: {} successes + {} failures != {} gets",
                outcome.tally.successes(),
                outcome.tally.failed,
                schedule.gets()
            ),
        );
    }
    let p999 = outcome.histo.quantile_ms(0.999);
    if p999 > TAIL_BUDGET_MS {
        violate(
            &bed,
            &mut violations,
            format!("unbounded tail: p99.9 {p999:.3} ms exceeds {TAIL_BUDGET_MS} ms"),
        );
    }
    if scenario == Scenario::InvalidationStorm {
        // The storm must force real revalidation waves: unchanged docs
        // come back via If-Digest 304s, not blind disk serves.
        if bed.origin.revalidations() == 0 {
            violate(
                &bed,
                &mut violations,
                "storm produced no origin If-Digest revalidations".into(),
            );
        }
        if stats.disk_revalidations == 0 {
            violate(
                &bed,
                &mut violations,
                "storm produced no disk-tier revalidations".into(),
            );
        }
    }

    // The flash-crowd moment itself: a cold viral doc hit by HERD_WORKERS
    // concurrent clients must cost exactly one origin fetch per TTL
    // window — the miss-coalescing acceptance gate.
    let herd = (scenario == Scenario::FlashCrowd)
        .then(|| flash_crowd_herd(args.seed, HERD_WORKERS, args.io_mode));
    let herd_summary = herd.as_ref().map(|probe| {
        for v in &probe.violations {
            violate(&bed, &mut violations, format!("herd: {v}"));
        }
        if probe.origin_fetches != 1 {
            violate(
                &bed,
                &mut violations,
                format!(
                    "thundering herd of {} cost {} origin fetches (coalescing must make it 1)",
                    probe.herd, probe.origin_fetches
                ),
            );
        }
        if probe.coalesced_fetches != u64::from(probe.herd) - 1 {
            violate(
                &bed,
                &mut violations,
                format!(
                    "herd coalescing counter {} != {} (herd - 1)",
                    probe.coalesced_fetches,
                    probe.herd - 1
                ),
            );
        }
        if probe.errors != 0 {
            violate(
                &bed,
                &mut violations,
                format!("herd probe saw {} proxy errors", probe.errors),
            );
        }
        (probe.herd, probe.origin_fetches, probe.coalesced_fetches)
    });

    let recorder_dump = (!violations.is_empty()).then(|| {
        format!(
            "{}\n{}\n{}",
            saturation_line(&bed),
            health_line(&bed),
            bed.recorder.render()
        )
    });
    bed.shutdown();
    let _ = std::fs::remove_dir_all(&disk_root);
    ScenarioReport {
        tally: outcome.tally,
        invalidation_msgs: outcome.invalidation_msgs,
        origin_fetches: stats.origin_fetches,
        coalesced_fetches: stats.coalesced_fetches,
        disk_revalidations: stats.disk_revalidations,
        p99_ms: outcome.histo.quantile_ms(0.99),
        p999_ms: p999,
        req_per_sec: schedule.gets() as f64 / outcome.wall.as_secs_f64(),
        wall: outcome.wall,
        herd: herd_summary,
        violations,
        recorder_dump,
    }
}

fn print_scenario_report(label: &str, scenario: Scenario, args: SoakArgs, r: &ScenarioReport) {
    println!("--- {label} ---");
    println!(
        "scenario : {} — seed {}, {} requests, {} clients, {} docs, {} invalidation msgs",
        scenario.name(),
        args.seed,
        args.requests,
        args.clients,
        args.docs,
        r.invalidation_msgs,
    );
    println!(
        "outcomes : local {} | proxy {} | disk {} | peer {} | origin {} | degraded-errors {}",
        r.tally.local, r.tally.proxy, r.tally.disk, r.tally.peer, r.tally.origin, r.tally.failed
    );
    println!(
        "proxy    : origin_fetches {} | coalesced_fetches {} | disk_revalidations {}",
        r.origin_fetches, r.coalesced_fetches, r.disk_revalidations
    );
    println!(
        "tails    : p99 {:.3} ms | p99.9 {:.3} ms | {:.0} req/s | wall {:.2} s",
        r.p99_ms,
        r.p999_ms,
        r.req_per_sec,
        r.wall.as_secs_f64()
    );
    if let Some((workers, origin, coalesced)) = r.herd {
        println!(
            "herd     : {workers} concurrent workers on a cold doc -> \
             {origin} origin fetch(es), {coalesced} coalesced"
        );
    }
}

fn scenario_main(scenario: Scenario, args: SoakArgs) {
    println!(
        "chaos_soak --scenario {}: {} requests replayed fault-free (seed {}; \
         --intensity/--direct/--restart-warm do not apply)\n",
        scenario.name(),
        args.requests,
        args.seed
    );
    let first = run_scenario_soak(scenario, args, 1);
    print_scenario_report("run 1", scenario, args, &first);
    if !first.violations.is_empty() {
        fail(args, &first.violations, first.recorder_dump.as_deref());
    }

    if !args.once {
        let second = run_scenario_soak(scenario, args, 2);
        println!();
        print_scenario_report("run 2", scenario, args, &second);
        if !second.violations.is_empty() {
            fail(args, &second.violations, second.recorder_dump.as_deref());
        }
        let mut determinism = Vec::new();
        if first.tally != second.tally {
            determinism.push(format!(
                "outcome tally mismatch: run1 {:?} != run2 {:?}",
                first.tally, second.tally
            ));
        }
        for (name, a, b) in [
            (
                "invalidation_msgs",
                first.invalidation_msgs,
                second.invalidation_msgs,
            ),
            (
                "origin_fetches",
                first.origin_fetches,
                second.origin_fetches,
            ),
            (
                "disk_revalidations",
                first.disk_revalidations,
                second.disk_revalidations,
            ),
        ] {
            if a != b {
                determinism.push(format!("{name} mismatch: run1 {a} != run2 {b}"));
            }
        }
        if !determinism.is_empty() {
            fail(args, &determinism, second.recorder_dump.as_deref());
        }
        println!("\ndeterminism: outcome tallies and proxy counters identical across runs");
    }

    println!("\nall invariants held");
}

fn print_report(label: &str, args: SoakArgs, r: &SoakReport) {
    println!("--- {label} ---");
    println!(
        "schedule : {} requests, {} clients, {} docs, seed {}, intensity {}, io {}{}",
        args.requests,
        args.clients,
        args.docs,
        args.seed,
        args.intensity,
        args.io_mode.name(),
        if args.direct { ", direct-forward" } else { "" },
    );
    if args.restart_warm {
        println!(
            "restart  : full proxy restart at request {}",
            args.requests / 2
        );
    }
    println!(
        "outcomes : local {} | proxy {} | disk {} | peer {} | origin {} | degraded-errors {}",
        r.tally.local, r.tally.proxy, r.tally.disk, r.tally.peer, r.tally.origin, r.tally.failed
    );
    println!(
        "proxy    : requests {} = proxy_hits {} + disk_hits {} + peer_hits {} \
         + origin_fetches {} + errors {} (peer_fallbacks {})",
        r.proxy_requests,
        r.proxy_hits,
        r.disk_hits,
        r.peer_hits,
        r.origin_fetches,
        r.proxy_errors,
        r.peer_fallbacks
    );
    println!("faults   : {} (total {})", r.faults, r.faults.total());
    println!("wall     : {:.2} s", r.wall.as_secs_f64());
}

fn parse_args() -> SoakArgs {
    let mut out = SoakArgs::default();
    let mut args = std::env::args().skip(1);
    let usage = "usage: chaos_soak [--seed N] [--requests N] [--clients N] [--docs N] \
                 [--intensity F] [--direct] [--once] [--restart-warm] \
                 [--scenario flash-crowd|invalidation-storm|diurnal-swing|heavy-tail] \
                 [--io-mode threads|reactor]";
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}\n{usage}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--seed" => out.seed = value("--seed").parse().expect("--seed: u64"),
            "--requests" => out.requests = value("--requests").parse().expect("--requests: u64"),
            "--clients" => out.clients = value("--clients").parse().expect("--clients: u32"),
            "--docs" => out.docs = value("--docs").parse().expect("--docs: usize"),
            "--intensity" => {
                out.intensity = value("--intensity").parse().expect("--intensity: f64")
            }
            "--direct" => out.direct = true,
            "--once" => out.once = true,
            "--restart-warm" => out.restart_warm = true,
            "--scenario" => {
                let name = value("--scenario");
                out.scenario = Some(Scenario::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown scenario {name:?}\n{usage}");
                    std::process::exit(2);
                }));
            }
            "--io-mode" => {
                out.io_mode = match value("--io-mode").as_str() {
                    "threads" => IoMode::Threads,
                    "reactor" => IoMode::Reactor,
                    other => {
                        eprintln!("unknown io mode {other:?}\n{usage}");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown flag {other:?}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if out.clients == 0 || out.docs == 0 || out.requests == 0 {
        eprintln!("--clients, --docs and --requests must be positive\n{usage}");
        std::process::exit(2);
    }
    out
}

fn fail(args: SoakArgs, violations: &[String], recorder_dump: Option<&str>) -> ! {
    if let Some(dump) = recorder_dump {
        // The ring holds the spans (with trace ids) leading up to the
        // violation — the VIOLATION events themselves are interleaved at
        // the positions where each invariant broke. A saturation snapshot
        // (queue depth, busy workers, recorder drops, taken while the
        // deployment was still alive) heads the dump, and the header
        // carries the full parameter set (profile/scenario included) so a
        // pasted dump is reproducible on its own.
        eprintln!("=== flight-recorder dump | {} ===", args.repro_line());
        eprintln!("{dump}");
    }
    for v in violations {
        eprintln!("VIOLATION: {v}");
    }
    eprintln!("reproduce with: {}", args.repro_line());
    std::process::exit(1);
}

fn main() {
    let args = parse_args();
    if let Some(scenario) = args.scenario {
        scenario_main(scenario, args);
        return;
    }
    println!(
        "chaos_soak: {} requests under seeded fault injection (seed {})\n",
        args.requests, args.seed
    );

    let first = run_soak(args, 1);
    print_report("run 1", args, &first);
    if !first.violations.is_empty() {
        fail(args, &first.violations, first.recorder_dump.as_deref());
    }

    if !args.once {
        let second = run_soak(args, 2);
        println!();
        print_report("run 2", args, &second);
        if !second.violations.is_empty() {
            fail(args, &second.violations, second.recorder_dump.as_deref());
        }
        let mut determinism = Vec::new();
        for kind in FaultKind::ALL {
            if first.faults.get(kind) != second.faults.get(kind) {
                determinism.push(format!(
                    "fault count mismatch for {}: run1 {} != run2 {}",
                    kind.name(),
                    first.faults.get(kind),
                    second.faults.get(kind)
                ));
            }
        }
        if first.tally != second.tally {
            determinism.push(format!(
                "outcome tally mismatch: run1 {:?} != run2 {:?}",
                first.tally, second.tally
            ));
        }
        if !determinism.is_empty() {
            // Determinism compares the two completed runs; neither ring is
            // more relevant, so dump the fresher one.
            fail(args, &determinism, second.recorder_dump.as_deref());
        }
        println!("\ndeterminism: per-fault counts and outcome tallies identical across runs");
    }

    println!("\nall invariants held");
}
