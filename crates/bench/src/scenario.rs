//! Scenario replay: shared plumbing for driving the adversarial workload
//! schedules of [`baps_trace::scenarios`] through a live [`TestBed`].
//!
//! `chaos_soak --scenario <name>` replays a schedule **sequentially**, so
//! its outcome tallies are run-to-run deterministic and can gate CI;
//! `live_load --scenario <name>` replays the same schedule concurrently
//! to measure throughput. Both binaries build on the helpers here, so
//! they cannot drift in how a scenario corpus is materialized or how an
//! `Invalidate` op is executed.
//!
//! An `Invalidate` op is the full publisher protocol: mutate the origin
//! copy (every *other* op leaves the bytes unchanged so the unchanged
//! half must come back via `If-Digest` revalidation, not a blind serve),
//! drop every browser replica via [`piggybacked
//! discards`](baps_proxy::ClientAgent::discard), and push exactly **one**
//! `INVALIDATE` with `Purge: 1` through the proxy — the wire cost of a
//! storm is one message per update, not one per replica.

use baps_obs::{EventKind, LatencyHistogram, TraceId};
use baps_proxy::{
    DocumentStore, FaultConfig, FaultPlan, IoMode, ProxyError, Source, TestBed, TestBedConfig,
};
use baps_trace::{DocId, Scenario, ScenarioConfig, ScenarioOp, ScenarioSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// The synthetic origin URL for a scenario document.
pub fn url_of(doc: DocId) -> String {
    format!("http://origin/doc/{}", doc.0)
}

/// Builds the origin corpus a schedule dictates: one document per entry
/// of `doc_sizes`, with deterministic pseudo-random bodies. Returns the
/// store plus the byte-exact ground truth the replay checks against.
pub fn scenario_corpus(
    schedule: &ScenarioSchedule,
    seed: u64,
) -> (DocumentStore, HashMap<String, Vec<u8>>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0c0a_9b0d);
    let mut store = DocumentStore::new();
    let mut expected = HashMap::with_capacity(schedule.doc_sizes.len());
    for (i, &size) in schedule.doc_sizes.iter().enumerate() {
        let mut body = vec![0u8; size as usize];
        rng.fill(body.as_mut_slice());
        let url = url_of(DocId(i as u32));
        store.insert(url.clone(), body.clone());
        expected.insert(url, body);
    }
    (store, expected)
}

/// Deployment shape for a scenario replay: caches deliberately
/// undersized relative to the corpus (so the shape actually churns the
/// LRU and spills to the disk tier) and a persistent disk root so
/// invalidation storms exercise the on-disk expiry path too. Heavy-tail
/// runs get megabyte-scale budgets; its bodies would otherwise never be
/// admitted anywhere.
pub fn bed_config(cfg: &ScenarioConfig, disk_root: Option<PathBuf>) -> TestBedConfig {
    let heavy = cfg.scenario == Scenario::HeavyTail;
    TestBedConfig {
        n_clients: cfg.n_clients,
        proxy_capacity: if heavy { 8 << 20 } else { 24 << 10 },
        browser_capacity: if heavy { 1 << 20 } else { 8 << 10 },
        disk_root,
        disk_capacity: if heavy { 64 << 20 } else { 1 << 20 },
        disk_ttl: Duration::from_secs(3600),
        ..TestBedConfig::default()
    }
}

/// Per-source outcome counts of one replay. Same-seed sequential replays
/// must produce identical tallies — the chaos-soak determinism gate
/// compares two of these directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScenarioTally {
    /// Served from the requesting browser's own cache.
    pub local: u64,
    /// Served from the proxy memory tier.
    pub proxy: u64,
    /// Served from the proxy disk tier.
    pub disk: u64,
    /// Served from a peer browser.
    pub peer: u64,
    /// Fetched from the origin.
    pub origin: u64,
    /// Failed after bounded retries (honest degradation).
    pub failed: u64,
}

impl ScenarioTally {
    /// Total successful fetches.
    pub fn successes(&self) -> u64 {
        self.local + self.proxy + self.disk + self.peer + self.origin
    }
}

/// Everything one sequential schedule replay produced.
pub struct ReplayOutcome {
    /// Per-source outcome counts.
    pub tally: ScenarioTally,
    /// Client-observed fetch latencies.
    pub histo: LatencyHistogram,
    /// Wall-clock time of the replay loop.
    pub wall: Duration,
    /// `INVALIDATE` messages actually put on the wire (exactly one per
    /// executed `Invalidate` op — replica discards piggyback for free).
    pub invalidation_msgs: u64,
    /// Invariant violations (wrong bytes, unacceptable errors, publisher
    /// failures). Each is also recorded as a `VIOLATION` event in the
    /// bed's flight-recorder ring at the moment it happened.
    pub violations: Vec<String>,
}

/// Replays `schedule` sequentially against `bed`, checking every fetched
/// body byte-for-byte against `expected` (which is kept current as
/// `Invalidate` ops mutate the corpus). `fetch_deadline` bounds any
/// single fetch; slower is a violation.
pub fn replay_schedule(
    bed: &TestBed,
    schedule: &ScenarioSchedule,
    expected: &mut HashMap<String, Vec<u8>>,
    seed: u64,
    fetch_deadline: Duration,
) -> ReplayOutcome {
    let mut tally = ScenarioTally::default();
    let mut histo = LatencyHistogram::new();
    let mut violations = Vec::new();
    let mut invalidation_msgs = 0u64;
    let mut mutate_rng = StdRng::seed_from_u64(seed ^ 0x17a1_1da7e);
    let mut seq = 0u64;
    let violate = |violations: &mut Vec<String>, msg: String| {
        bed.recorder
            .note(TraceId::NONE, EventKind::Violation, msg.clone());
        violations.push(msg);
    };
    let t0 = Instant::now();
    for (i, op) in schedule.ops.iter().enumerate() {
        match op {
            ScenarioOp::Get { client, doc } => {
                let url = url_of(*doc);
                let t = Instant::now();
                let result = bed.clients[client.0 as usize].fetch(&url);
                let dt = t.elapsed();
                histo.record(dt.as_secs_f64() * 1e3);
                if dt > fetch_deadline {
                    violate(
                        &mut violations,
                        format!("op {i}: fetch of {url} took {dt:?} (> {fetch_deadline:?})"),
                    );
                }
                match result {
                    Ok(res) => {
                        if res.body[..] != expected[&url][..] {
                            violate(
                                &mut violations,
                                format!(
                                    "op {i}: WRONG BYTES for {url} from {:?} \
                                     ({} bytes, expected {})",
                                    res.source,
                                    res.body.len(),
                                    expected[&url].len()
                                ),
                            );
                        }
                        match res.source {
                            Source::LocalBrowser => tally.local += 1,
                            Source::Proxy => tally.proxy += 1,
                            Source::ProxyDisk => tally.disk += 1,
                            Source::Peer => tally.peer += 1,
                            Source::Origin => tally.origin += 1,
                        }
                    }
                    Err(ProxyError::Io(_) | ProxyError::Timeout | ProxyError::Unavailable(_)) => {
                        tally.failed += 1
                    }
                    Err(other) => violate(
                        &mut violations,
                        format!("op {i}: unacceptable error for {url}: {other}"),
                    ),
                }
            }
            ScenarioOp::Invalidate { doc } => {
                let url = url_of(*doc);
                seq += 1;
                // Every other update actually changes the bytes; the
                // rest republish identical content, so the revalidation
                // path (If-Digest -> 304) is exercised alongside the
                // refetch path.
                if seq.is_multiple_of(2) {
                    let body = expected.get_mut(&url).expect("scenario doc exists");
                    let mut next = vec![0u8; body.len()];
                    mutate_rng.fill(next.as_mut_slice());
                    let stamp = seq.to_le_bytes();
                    let n = stamp.len().min(next.len());
                    next[..n].copy_from_slice(&stamp[..n]);
                    *body = next.clone();
                    if !bed.origin.mutate(&url, next) {
                        violate(
                            &mut violations,
                            format!("op {i}: origin refused mutate of {url}"),
                        );
                    }
                }
                for client in &bed.clients {
                    client.discard(&url);
                }
                match bed.clients[0].publish_invalidate(&url) {
                    Ok(()) => invalidation_msgs += 1,
                    Err(e) => violate(
                        &mut violations,
                        format!("op {i}: publisher INVALIDATE of {url} failed: {e}"),
                    ),
                }
            }
        }
    }
    let wall = t0.elapsed();
    ReplayOutcome {
        tally,
        histo,
        wall,
        invalidation_msgs,
        violations,
    }
}

/// Result of a thundering-herd probe (see [`flash_crowd_herd`]).
pub struct HerdProbe {
    /// Concurrent workers released against the cold document.
    pub herd: u32,
    /// Origin fetches the whole herd cost (the coalescing claim is that
    /// this stays 1 per TTL window regardless of herd size).
    pub origin_fetches: u64,
    /// Requests that coalesced onto the leader's in-flight fetch.
    pub coalesced_fetches: u64,
    /// Proxy-side errors.
    pub errors: u64,
    /// Wall-clock time of the stampede.
    pub wall: Duration,
    /// Byte mismatches or failed fetches — empty on a clean probe.
    pub violations: Vec<String>,
}

/// The flash-crowd moment itself, isolated: a dedicated deployment whose
/// origin stalls every reply, with `herd` clients released by a barrier
/// against one cold document — the start of a TTL window for a viral
/// doc. With miss coalescing, exactly one origin fetch happens and the
/// remaining `herd - 1` requests share the in-flight body.
///
/// This runs on its own bed (not the sequential replay's) because the
/// stampede is genuinely concurrent: its *outcome counters* are
/// deterministic, its interleaving is not, so it must not share counters
/// with the determinism-gated replay. In reactor mode the whole herd
/// lands on the blocking miss executor (a cold doc is a miss), so the
/// probe doubles as the coalescing gate for that path.
pub fn flash_crowd_herd(seed: u64, herd: u32, io_mode: IoMode) -> HerdProbe {
    let store = DocumentStore::synthetic(2, 512, 1024, seed);
    let url = "http://origin/doc/0";
    let want = store.get(url).expect("synthetic doc exists").to_vec();
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: herd,
            io_mode,
            // Retries off: each fetch is exactly one proxy GET, keeping
            // the counter arithmetic exact. The stall pins the leader in
            // flight long enough for the whole herd to pile in.
            client_retries: 0,
            fault_plan: Some(Arc::new(FaultPlan::new(
                seed,
                FaultConfig {
                    p_origin_stall: 1.0,
                    stall: Duration::from_millis(300),
                    ..FaultConfig::default()
                },
            ))),
            ..TestBedConfig::default()
        },
    )
    .expect("herd bed starts");

    let barrier = Arc::new(Barrier::new(herd as usize));
    let t0 = Instant::now();
    let results: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = bed
            .clients
            .iter()
            .map(|client| {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    client.fetch(url)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed();

    let mut violations = Vec::new();
    for (i, result) in results.iter().enumerate() {
        match result {
            Ok(res) if res.body[..] == want[..] => {}
            Ok(res) => violations.push(format!(
                "herd worker {i}: wrong bytes ({} != {} expected)",
                res.body.len(),
                want.len()
            )),
            Err(e) => violations.push(format!("herd worker {i}: fetch failed: {e}")),
        }
    }
    let stats = bed.proxy.stats();
    let probe = HerdProbe {
        herd,
        origin_fetches: stats.origin_fetches,
        coalesced_fetches: stats.coalesced_fetches,
        errors: stats.errors,
        wall,
        violations,
    };
    bed.shutdown();
    probe
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_matches_schedule_sizes() {
        let cfg = Scenario::InvalidationStorm.config(200, 4, 16);
        let schedule = cfg.generate(9);
        let (store, expected) = scenario_corpus(&schedule, 9);
        assert_eq!(store.len(), 16);
        for (i, &size) in schedule.doc_sizes.iter().enumerate() {
            let url = url_of(DocId(i as u32));
            assert_eq!(store.get(&url).unwrap().len(), size as usize);
            assert_eq!(expected[&url].len(), size as usize);
        }
        // Deterministic in the seed.
        let (store2, _) = scenario_corpus(&schedule, 9);
        for url in store.urls() {
            assert_eq!(store.get(url), store2.get(url));
        }
    }

    #[test]
    fn herd_probe_coalesces_to_one_origin_fetch() {
        let probe = flash_crowd_herd(5, 8, IoMode::Threads);
        assert!(probe.violations.is_empty(), "{:?}", probe.violations);
        assert_eq!(probe.origin_fetches, 1);
        assert_eq!(probe.coalesced_fetches, 7);
        assert_eq!(probe.errors, 0);
    }

    #[test]
    fn herd_probe_coalesces_on_the_reactor_too() {
        let probe = flash_crowd_herd(5, 8, IoMode::Reactor);
        assert!(probe.violations.is_empty(), "{:?}", probe.violations);
        assert_eq!(probe.origin_fetches, 1);
        assert_eq!(probe.coalesced_fetches, 7);
        assert_eq!(probe.errors, 0);
    }
}
