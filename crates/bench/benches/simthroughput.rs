//! End-to-end simulator throughput: requests replayed per second for each
//! caching organization, plus generator throughput.

use baps_core::{LatencyParams, Organization, SystemConfig};
use baps_sim::run;
use baps_trace::{SynthConfig, TraceStats};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_replay(c: &mut Criterion) {
    let synth = SynthConfig::small(); // 20k requests
    let trace = synth.generate(9);
    let stats = TraceStats::compute(&trace);
    let latency = LatencyParams::paper();
    let mut group = c.benchmark_group("replay");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(20);
    for org in Organization::all() {
        let cfg = SystemConfig::paper_default(org, stats.infinite_cache_bytes / 10);
        group.bench_with_input(BenchmarkId::from_parameter(org.short()), &cfg, |b, cfg| {
            b.iter(|| run(&trace, &stats, cfg, &latency));
        });
    }
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let synth = SynthConfig::small();
    let mut group = c.benchmark_group("generate");
    group.throughput(Throughput::Elements(synth.n_requests));
    group.sample_size(20);
    group.bench_function("synthetic_trace", |b| {
        b.iter(|| synth.generate(10));
    });
    group.finish();
}

criterion_group!(benches, bench_replay, bench_generation);
criterion_main!(benches);
