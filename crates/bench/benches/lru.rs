//! Cache-substrate micro-benchmarks: LRU / ranked policies / tiered LRU.

use baps_cache::{AnyCache, ByteLru, DocCache, Policy, TieredLru};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const OPS: usize = 100_000;

fn workload(seed: u64) -> Vec<(u32, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..OPS)
        .map(|_| {
            // Zipf-ish key reuse via squaring a uniform variate.
            let u: f64 = rng.gen();
            let key = (u * u * 50_000.0) as u32;
            let size = rng.gen_range(200..20_000) as u64;
            (key, size)
        })
        .collect()
}

fn drive<C: DocCache<u32>>(cache: &mut C, ops: &[(u32, u64)]) -> u64 {
    let mut hits = 0;
    for &(key, size) in ops {
        if cache.touch(&key).is_some() {
            hits += 1;
        } else {
            cache.insert(key, size);
        }
    }
    hits
}

fn bench_policies(c: &mut Criterion) {
    let ops = workload(3);
    let mut group = c.benchmark_group("cache_policies");
    group.throughput(Throughput::Elements(OPS as u64));
    for policy in Policy::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &ops,
            |b, ops| {
                b.iter(|| {
                    let mut cache = AnyCache::new(policy, 64 << 20);
                    drive(&mut cache, ops)
                });
            },
        );
    }
    group.finish();
}

fn bench_tiered_vs_flat(c: &mut Criterion) {
    let ops = workload(4);
    let mut group = c.benchmark_group("lru_variants");
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_function("flat_byte_lru", |b| {
        b.iter(|| {
            let mut cache = ByteLru::new(64 << 20);
            drive(&mut cache, &ops)
        });
    });
    group.bench_function("tiered_lru_10pct_mem", |b| {
        b.iter(|| {
            let mut cache = TieredLru::with_mem_fraction(64 << 20, 0.1);
            let mut hits = 0u64;
            for &(key, size) in &ops {
                if cache.touch(&key).is_some() {
                    hits += 1;
                } else {
                    cache.insert(key, size);
                }
            }
            hits
        });
    });
    group.finish();
}

criterion_group!(benches, bench_policies, bench_tiered_vs_flat);
criterion_main!(benches);
