//! Browser-index micro-benchmarks: exact vs delayed vs Bloom summaries.

use baps_index::{BloomFilter, ExactIndex, IndexModel};
use baps_trace::{ClientId, DocId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const OPS: usize = 100_000;
const CLIENTS: u32 = 256;
const DOCS: u32 = 50_000;

#[derive(Clone, Copy)]
enum Op {
    Store(u32, u32),
    Evict(u32, u32),
    Lookup(u32, u32),
}

fn workload(seed: u64) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..OPS)
        .map(|_| {
            let c = rng.gen_range(0..CLIENTS);
            let d = rng.gen_range(0..DOCS);
            match rng.gen_range(0..10) {
                0..=4 => Op::Store(c, d),
                5..=6 => Op::Evict(c, d),
                _ => Op::Lookup(c, d),
            }
        })
        .collect()
}

fn bench_index_models(c: &mut Criterion) {
    let ops = workload(5);
    let models = [
        ("exact", IndexModel::Exact),
        (
            "delayed-10pct",
            IndexModel::Delayed {
                threshold: 0.10,
                interval_ms: None,
            },
        ),
        (
            "bloom-10b",
            IndexModel::Bloom {
                bits_per_item: 10,
                threshold: 0.05,
            },
        ),
    ];
    let mut group = c.benchmark_group("index_models");
    group.throughput(Throughput::Elements(OPS as u64));
    for (name, model) in models {
        group.bench_with_input(BenchmarkId::from_parameter(name), &ops, |b, ops| {
            b.iter(|| {
                let mut index = model.build(CLIENTS);
                let mut found = 0u64;
                for op in ops {
                    match *op {
                        Op::Store(c, d) => index.on_store(ClientId(c), DocId(d)),
                        Op::Evict(c, d) => index.on_evict(ClientId(c), DocId(d)),
                        Op::Lookup(c, d) => {
                            found += !index.candidates(DocId(d), ClientId(c)).is_empty() as u64;
                        }
                    }
                }
                found
            });
        });
    }
    group.finish();
}

fn bench_bloom_ops(c: &mut Criterion) {
    let mut filter = BloomFilter::for_items(10_000, 10, 4);
    for i in 0..10_000 {
        filter.insert(DocId(i));
    }
    c.bench_function("bloom_contains", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            filter.contains(DocId(i % 60_000))
        });
    });
    c.bench_function("exact_index_lookup", |b| {
        let mut index = ExactIndex::new();
        for i in 0..10_000u32 {
            index.on_store(ClientId(i % CLIENTS), DocId(i % DOCS));
        }
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            index.lookup(DocId(i % DOCS), ClientId(0))
        });
    });
}

criterion_group!(benches, bench_index_models, bench_bloom_ops);
criterion_main!(benches);
