//! MD5 digest throughput (the hash behind URL signatures and watermarks).

use baps_crypto::{md5, sign_digest, verify_digest, KeyPair};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_md5(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("md5");
    for size in [64usize, 1 << 10, 8 << 10, 64 << 10, 1 << 20] {
        let mut data = vec![0u8; size];
        rng.fill(data.as_mut_slice());
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| md5(data));
        });
    }
    group.finish();
}

fn bench_watermark(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let kp = KeyPair::generate(&mut rng);
    let digest = md5(b"a typical cached document digest");
    c.bench_function("sign_digest", |b| {
        b.iter(|| sign_digest(&kp.private, &digest));
    });
    let sig = sign_digest(&kp.private, &digest);
    c.bench_function("verify_digest", |b| {
        b.iter(|| verify_digest(&kp.public, &digest, &sig));
    });
}

criterion_group!(benches, bench_md5, bench_watermark);
criterion_main!(benches);
