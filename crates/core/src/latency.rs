//! Latency-model parameters (paper §4.2 and §5).
//!
//! The paper's simulator estimates service time analytically:
//!
//! * memory access: 2 µs per 16-byte cache block;
//! * disk access: 10 ms per 4 KB page;
//! * remote-browser transfer: 100 Mbps Ethernet with a 0.1 s connection
//!   setup, plus shared-bus contention;
//! * misses pay a WAN fetch (upper-level proxy / origin server), which we
//!   parameterise at early-2000s WAN rates.
//!
//! All times are in milliseconds.

use serde::{Deserialize, Serialize};

/// Analytic latency parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyParams {
    /// Microseconds per memory block access.
    pub mem_us_per_block: f64,
    /// Memory block size in bytes.
    pub mem_block_bytes: u64,
    /// Milliseconds per disk page access.
    pub disk_ms_per_page: f64,
    /// Disk page size in bytes.
    pub disk_page_bytes: u64,
    /// LAN bandwidth in megabits per second.
    pub lan_mbps: f64,
    /// LAN connection setup time in milliseconds.
    pub lan_conn_ms: f64,
    /// WAN bandwidth in megabits per second (miss path).
    pub wan_mbps: f64,
    /// WAN connection + server latency in milliseconds (miss path).
    pub wan_conn_ms: f64,
}

impl Default for LatencyParams {
    fn default() -> Self {
        LatencyParams::paper()
    }
}

impl LatencyParams {
    /// The paper's parameters: 2 µs / 16 B memory block, 10 ms / 4 KB disk
    /// page, 100 Mbps LAN with 0.1 s connection setup; the WAN side
    /// (unspecified in the paper) is set to a T1-class 1.5 Mbps with 1 s of
    /// connection + server time, typical of 2001 measurements.
    pub fn paper() -> Self {
        LatencyParams {
            mem_us_per_block: 2.0,
            mem_block_bytes: 16,
            disk_ms_per_page: 10.0,
            disk_page_bytes: 4096,
            lan_mbps: 100.0,
            lan_conn_ms: 100.0,
            wan_mbps: 1.5,
            wan_conn_ms: 1000.0,
        }
    }

    /// Time to read `size` bytes from memory, ms.
    pub fn mem_ms(&self, size: u64) -> f64 {
        let blocks = size.div_ceil(self.mem_block_bytes.max(1));
        blocks as f64 * self.mem_us_per_block / 1000.0
    }

    /// Time to read `size` bytes from disk, ms.
    pub fn disk_ms(&self, size: u64) -> f64 {
        let pages = size.div_ceil(self.disk_page_bytes.max(1)).max(1);
        pages as f64 * self.disk_ms_per_page
    }

    /// Pure LAN wire time for `size` bytes (no connection setup), ms.
    pub fn lan_transfer_ms(&self, size: u64) -> f64 {
        (size as f64 * 8.0) / (self.lan_mbps * 1000.0)
    }

    /// Full remote-browser transfer: connection + wire time, ms.
    pub fn lan_ms(&self, size: u64) -> f64 {
        self.lan_conn_ms + self.lan_transfer_ms(size)
    }

    /// Full miss path: WAN connection + wire time, ms.
    pub fn wan_ms(&self, size: u64) -> f64 {
        self.wan_conn_ms + (size as f64 * 8.0) / (self.wan_mbps * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_block_math() {
        let p = LatencyParams::paper();
        // 16 bytes = 1 block = 2 µs = 0.002 ms.
        assert!((p.mem_ms(16) - 0.002).abs() < 1e-12);
        // 17 bytes round up to 2 blocks.
        assert!((p.mem_ms(17) - 0.004).abs() < 1e-12);
        // 8 KB = 512 blocks = 1.024 ms.
        assert!((p.mem_ms(8192) - 1.024).abs() < 1e-9);
    }

    #[test]
    fn disk_page_math() {
        let p = LatencyParams::paper();
        assert!((p.disk_ms(4096) - 10.0).abs() < 1e-12);
        assert!((p.disk_ms(4097) - 20.0).abs() < 1e-12);
        // Even a 1-byte read pays a full page.
        assert!((p.disk_ms(1) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn lan_math() {
        let p = LatencyParams::paper();
        // 8 KB over 100 Mbps = 65536 bits / 100_000 bits-per-ms = 0.655 ms.
        assert!((p.lan_transfer_ms(8192) - 0.65536).abs() < 1e-9);
        assert!((p.lan_ms(8192) - 100.65536).abs() < 1e-9);
    }

    #[test]
    fn wan_dominates_lan() {
        let p = LatencyParams::paper();
        for size in [1_000u64, 10_000, 100_000] {
            assert!(p.wan_ms(size) > p.lan_ms(size) * 3.0);
        }
    }

    #[test]
    fn memory_beats_disk_beats_lan() {
        let p = LatencyParams::paper();
        let size = 8192;
        assert!(p.mem_ms(size) < p.disk_ms(size));
        assert!(p.disk_ms(size) < p.lan_ms(size));
    }
}
