//! System configuration: cache sizing rules and request-routing options.

use crate::org::Organization;
use baps_cache::Policy;
use baps_index::IndexModel;
use serde::{Deserialize, Serialize};

/// How each client's browser cache is sized (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BrowserSizing {
    /// The paper's *minimum*: `proxy_capacity / n_clients`.
    Minimum,
    /// The paper's *average*: `k × proxy_capacity / n_clients`, k in 2..10.
    AverageK(f64),
    /// A fixed byte size per browser.
    Fixed(u64),
    /// A fraction of the mean per-client infinite cache size (used by
    /// Figs. 4–6, which scale browser caches as a percentage of the average
    /// infinite browser cache).
    FractionOfClientInfinite(f64),
}

impl BrowserSizing {
    /// Resolves the rule to a concrete byte size.
    ///
    /// * `proxy_capacity` — the proxy cache size in bytes;
    /// * `n_clients` — number of clients;
    /// * `mean_client_infinite` — average per-client infinite cache bytes
    ///   (from [`baps_trace::TraceStats`]).
    pub fn resolve(&self, proxy_capacity: u64, n_clients: u32, mean_client_infinite: f64) -> u64 {
        let n = n_clients.max(1) as u64;
        match *self {
            BrowserSizing::Minimum => (proxy_capacity / n).max(1),
            BrowserSizing::AverageK(k) => {
                (((proxy_capacity as f64) * k / n as f64).round() as u64).max(1)
            }
            BrowserSizing::Fixed(bytes) => bytes,
            BrowserSizing::FractionOfClientInfinite(frac) => {
                ((mean_client_infinite * frac).round() as u64).max(1)
            }
        }
    }
}

/// What happens to a document served from a *remote* browser cache.
///
/// The paper (§3.2, global-browsers description) does not re-cache documents
/// fetched from another browser; that is the default here and a knob for the
/// ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RemoteHitCaching {
    /// Neither the requester nor the proxy stores the forwarded copy.
    NoCaching,
    /// The requesting browser stores the copy (as if user-fetched).
    CacheAtRequester,
    /// The proxy absorbs the copy (fetch-and-forward implementation).
    CacheAtProxy,
    /// Both requester and proxy store it.
    CacheBoth,
}

impl RemoteHitCaching {
    /// Whether the requester stores remote-hit documents.
    pub fn at_requester(self) -> bool {
        matches!(
            self,
            RemoteHitCaching::CacheAtRequester | RemoteHitCaching::CacheBoth
        )
    }

    /// Whether the proxy stores remote-hit documents.
    pub fn at_proxy(self) -> bool {
        matches!(
            self,
            RemoteHitCaching::CacheAtProxy | RemoteHitCaching::CacheBoth
        )
    }
}

/// Full configuration of a simulated caching system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Which caching organization to run.
    pub organization: Organization,
    /// Proxy cache capacity in bytes (ignored by organizations without a
    /// proxy cache).
    pub proxy_capacity: u64,
    /// Browser cache sizing rule (ignored by proxy-only).
    pub browser_sizing: BrowserSizing,
    /// Memory-tier fraction of each cache (the paper uses 1/10).
    pub mem_fraction: f64,
    /// Memory-tier fraction of *browser* caches, when different from
    /// `mem_fraction`. The paper argues browsers increasingly run their
    /// entire cache from a RAM drive ("browser cache in memory", §1); set
    /// this to `Some(1.0)` to model that. `None` uses `mem_fraction`.
    pub browser_mem_fraction: Option<f64>,
    /// Browser-index model (browsers-aware / global-browsers only).
    pub index_model: IndexModel,
    /// Remote-hit caching behaviour.
    pub remote_hit_caching: RemoteHitCaching,
    /// Whether serving a peer request counts as an access in the serving
    /// browser's cache (promotes the document toward its memory tier). An
    /// LRU cache promotes on every access, so this defaults to `true`; the
    /// ablation bench flips it.
    pub peer_serve_promotes: bool,
    /// Replacement policy (the paper uses LRU everywhere).
    pub policy: Policy,
    /// Document time-to-live in simulated milliseconds. Cached copies older
    /// than this are revalidated against the origin before being served
    /// (the paper's index entries carry "a time stamp of the file or the
    /// TTL provided by the data source"); `None` disables expiry.
    pub ttl_ms: Option<u64>,
}

impl SystemConfig {
    /// The paper's baseline configuration for a given organization and
    /// proxy size: minimum browser caches, 1/10 memory, exact index, LRU,
    /// no re-caching of remote hits.
    pub fn paper_default(organization: Organization, proxy_capacity: u64) -> SystemConfig {
        SystemConfig {
            organization,
            proxy_capacity,
            browser_sizing: BrowserSizing::Minimum,
            mem_fraction: 0.1,
            browser_mem_fraction: None,
            index_model: IndexModel::Exact,
            remote_hit_caching: RemoteHitCaching::NoCaching,
            peer_serve_promotes: true,
            policy: Policy::Lru,
            ttl_ms: None,
        }
    }

    /// Validates invariants; returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.mem_fraction) {
            return Err(format!("mem_fraction {} outside [0,1]", self.mem_fraction));
        }
        if let Some(f) = self.browser_mem_fraction {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("browser_mem_fraction {f} outside [0,1]"));
            }
        }

        if self.organization.has_proxy_cache() && self.proxy_capacity == 0 {
            return Err("proxy organizations need proxy_capacity > 0".into());
        }
        if let BrowserSizing::AverageK(k) = self.browser_sizing {
            if k <= 0.0 {
                return Err("AverageK needs k > 0".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_sizing_divides_proxy() {
        let s = BrowserSizing::Minimum.resolve(1000, 10, 0.0);
        assert_eq!(s, 100);
    }

    #[test]
    fn average_k_sizing_scales() {
        let s = BrowserSizing::AverageK(4.0).resolve(1000, 10, 0.0);
        assert_eq!(s, 400);
    }

    #[test]
    fn fraction_of_infinite_sizing() {
        let s = BrowserSizing::FractionOfClientInfinite(0.1).resolve(0, 10, 50_000.0);
        assert_eq!(s, 5_000);
    }

    #[test]
    fn sizing_never_zero() {
        assert!(BrowserSizing::Minimum.resolve(5, 10, 0.0) >= 1);
        assert!(BrowserSizing::FractionOfClientInfinite(0.0001).resolve(0, 1, 1.0) >= 1);
    }

    #[test]
    fn remote_hit_caching_matrix() {
        assert!(!RemoteHitCaching::NoCaching.at_requester());
        assert!(!RemoteHitCaching::NoCaching.at_proxy());
        assert!(RemoteHitCaching::CacheAtRequester.at_requester());
        assert!(RemoteHitCaching::CacheAtProxy.at_proxy());
        assert!(RemoteHitCaching::CacheBoth.at_requester());
        assert!(RemoteHitCaching::CacheBoth.at_proxy());
    }

    #[test]
    fn paper_default_validates() {
        for org in Organization::all() {
            let cfg = SystemConfig::paper_default(org, 1 << 20);
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = SystemConfig::paper_default(Organization::BrowsersAware, 100);
        cfg.mem_fraction = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper_default(Organization::ProxyOnly, 0);
        assert!(cfg.validate().is_err());
        cfg.proxy_capacity = 1;
        assert!(cfg.validate().is_ok());

        let mut cfg = SystemConfig::paper_default(Organization::BrowsersAware, 100);
        cfg.browser_sizing = BrowserSizing::AverageK(0.0);
        assert!(cfg.validate().is_err());
    }
}
