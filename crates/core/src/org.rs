//! The five Web-caching organizations compared in the paper (§3.2).

use serde::{Deserialize, Serialize};

/// A caching organization: which caches exist and how a request routes
/// through them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Organization {
    /// No browser caches; every request goes straight to the proxy cache.
    ProxyOnly,
    /// Private browser caches only; misses go straight to the server.
    LocalBrowserOnly,
    /// Browser caches globally shared via an index at every client, but no
    /// proxy cache. Documents fetched from another browser are *not*
    /// re-cached by the requester (paper §3.2).
    GlobalBrowsersOnly,
    /// The conventional hierarchy: private browser cache, then proxy cache,
    /// then server.
    ProxyAndLocalBrowser,
    /// The paper's contribution: browser cache, then proxy cache, then the
    /// *browser index* (peer browser caches), then server.
    BrowsersAware,
}

impl Organization {
    /// All five organizations in the paper's order.
    pub fn all() -> [Organization; 5] {
        [
            Organization::ProxyOnly,
            Organization::LocalBrowserOnly,
            Organization::GlobalBrowsersOnly,
            Organization::ProxyAndLocalBrowser,
            Organization::BrowsersAware,
        ]
    }

    /// The paper's name for the organization.
    pub fn name(self) -> &'static str {
        match self {
            Organization::ProxyOnly => "proxy-cache-only",
            Organization::LocalBrowserOnly => "local-browser-cache-only",
            Organization::GlobalBrowsersOnly => "global-browsers-cache-only",
            Organization::ProxyAndLocalBrowser => "proxy-and-local-browser",
            Organization::BrowsersAware => "browsers-aware-proxy-server",
        }
    }

    /// A short label for table columns.
    pub fn short(self) -> &'static str {
        match self {
            Organization::ProxyOnly => "P-only",
            Organization::LocalBrowserOnly => "B-only",
            Organization::GlobalBrowsersOnly => "GB-only",
            Organization::ProxyAndLocalBrowser => "P+LB",
            Organization::BrowsersAware => "BAPS",
        }
    }

    /// Whether this organization deploys per-client browser caches.
    pub fn has_browser_caches(self) -> bool {
        !matches!(self, Organization::ProxyOnly)
    }

    /// Whether this organization deploys a proxy cache.
    pub fn has_proxy_cache(self) -> bool {
        !matches!(
            self,
            Organization::LocalBrowserOnly | Organization::GlobalBrowsersOnly
        )
    }

    /// Whether this organization consults peer browser caches.
    pub fn shares_browsers(self) -> bool {
        matches!(
            self,
            Organization::GlobalBrowsersOnly | Organization::BrowsersAware
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(
            Organization::BrowsersAware.name(),
            "browsers-aware-proxy-server"
        );
        assert_eq!(
            Organization::ProxyAndLocalBrowser.name(),
            "proxy-and-local-browser"
        );
    }

    #[test]
    fn capability_matrix() {
        use Organization::*;
        assert!(!ProxyOnly.has_browser_caches());
        assert!(ProxyOnly.has_proxy_cache());
        assert!(LocalBrowserOnly.has_browser_caches());
        assert!(!LocalBrowserOnly.has_proxy_cache());
        assert!(GlobalBrowsersOnly.shares_browsers());
        assert!(!GlobalBrowsersOnly.has_proxy_cache());
        assert!(ProxyAndLocalBrowser.has_proxy_cache());
        assert!(!ProxyAndLocalBrowser.shares_browsers());
        assert!(BrowsersAware.has_proxy_cache());
        assert!(BrowsersAware.shares_browsers());
        assert!(BrowsersAware.has_browser_caches());
    }

    #[test]
    fn all_lists_five() {
        assert_eq!(Organization::all().len(), 5);
        let shorts: Vec<&str> = Organization::all().iter().map(|o| o.short()).collect();
        assert!(shorts.contains(&"BAPS"));
    }
}
