//! Classification of how each request was served.

use baps_cache::Tier;
use baps_trace::ClientId;
use serde::{Deserialize, Serialize};

/// Where a request was satisfied (paper Fig. 3's breakdown categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HitClass {
    /// Served by the requester's own browser cache.
    LocalBrowser,
    /// Served by the proxy cache.
    Proxy,
    /// Served by another client's browser cache via the browser index.
    RemoteBrowser,
    /// Fetched from the origin server (or upper-level proxy).
    Miss,
}

impl HitClass {
    /// Whether the request counts as a hit for the paper's hit-ratio metric
    /// ("requests that hit in browser caches or in the proxy cache").
    pub fn is_hit(self) -> bool {
        !matches!(self, HitClass::Miss)
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            HitClass::LocalBrowser => "local-browser",
            HitClass::Proxy => "proxy",
            HitClass::RemoteBrowser => "remote-browsers",
            HitClass::Miss => "miss",
        }
    }
}

/// Everything the simulator records about one processed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// Where the request was served.
    pub class: HitClass,
    /// The storage tier that served a hit (memory vs disk), if applicable.
    pub tier: Option<Tier>,
    /// The peer that served a remote-browser hit.
    pub remote_peer: Option<ClientId>,
    /// Bytes served.
    pub size: u64,
    /// Number of index candidates probed that did *not* actually hold the
    /// document (stale index entries or Bloom false positives).
    pub wasted_probes: u32,
    /// Whether this request observed a changed document size (forced miss).
    pub size_change: bool,
}

impl Outcome {
    /// A plain miss outcome.
    pub fn miss(size: u64) -> Outcome {
        Outcome {
            class: HitClass::Miss,
            tier: None,
            remote_peer: None,
            size,
            wasted_probes: 0,
            size_change: false,
        }
    }

    /// A hit outcome of the given class.
    pub fn hit(class: HitClass, tier: Option<Tier>, size: u64) -> Outcome {
        debug_assert!(class.is_hit());
        Outcome {
            class,
            tier,
            remote_peer: None,
            size,
            wasted_probes: 0,
            size_change: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_classification() {
        assert!(HitClass::LocalBrowser.is_hit());
        assert!(HitClass::Proxy.is_hit());
        assert!(HitClass::RemoteBrowser.is_hit());
        assert!(!HitClass::Miss.is_hit());
    }

    #[test]
    fn constructors() {
        let m = Outcome::miss(100);
        assert_eq!(m.class, HitClass::Miss);
        assert_eq!(m.size, 100);
        let h = Outcome::hit(HitClass::Proxy, Some(Tier::Memory), 50);
        assert_eq!(h.class, HitClass::Proxy);
        assert_eq!(h.tier, Some(Tier::Memory));
    }

    #[test]
    fn labels() {
        assert_eq!(HitClass::RemoteBrowser.label(), "remote-browsers");
    }
}
