//! # baps-core — Browsers-Aware Proxy Server core types
//!
//! The shared vocabulary of the BAPS reproduction:
//!
//! * [`Organization`] — the five caching organizations of the paper's §3.2;
//! * [`SystemConfig`] / [`BrowserSizing`] / [`RemoteHitCaching`] — system
//!   configuration, including the paper's browser-cache sizing rules
//!   (*minimum* = proxy/n, *average* = k·proxy/n);
//! * [`HitClass`] / [`Outcome`] — request classification (local browser /
//!   proxy / remote browser / miss);
//! * [`LatencyParams`] — the analytic latency model of §4.2/§5.
//!
//! The trace-driven simulator (`baps-sim`) and the live proxy (`baps-proxy`)
//! are both built on these types.

#![warn(missing_docs)]

pub mod config;
pub mod hit;
pub mod latency;
pub mod org;

pub use config::{BrowserSizing, RemoteHitCaching, SystemConfig};
pub use hit::{HitClass, Outcome};
pub use latency::LatencyParams;
pub use org::Organization;
