//! Property-based tests of the workload generator and log parsers.

use baps_trace::{
    parse_bu, parse_squid, read_trace, write_trace, BuOptions, SquidOptions, SynthConfig,
    TraceStats,
};
use proptest::prelude::*;
use std::io::BufReader;

fn synth_config() -> impl Strategy<Value = SynthConfig> {
    (
        2u32..24,      // clients
        200u64..3_000, // requests
        0.2f64..1.2,   // doc_alpha
        0.0f64..0.9,   // client_alpha
        0.0f64..0.5,   // p_private
        0.0f64..0.4,   // private_frac
        0.0f64..0.5,   // p_group
        1u32..6,       // group_count
        0.0f64..0.4,   // group_frac
        0.0f64..0.7,   // p_temporal
        0.0f64..1.0,   // pop_size_bias
        0.0f64..0.05,  // p_size_change
    )
        .prop_map(
            |(
                n_clients,
                n_requests,
                doc_alpha,
                client_alpha,
                p_private,
                private_frac,
                p_group,
                group_count,
                group_frac,
                p_temporal,
                pop_size_bias,
                p_size_change,
            )| {
                let mut cfg = SynthConfig::small();
                cfg.n_clients = n_clients;
                cfg.n_requests = n_requests;
                cfg.n_docs = (n_requests as u32).max(n_clients * 4);
                cfg.doc_alpha = doc_alpha;
                cfg.client_alpha = client_alpha;
                cfg.p_private = p_private;
                cfg.private_frac = private_frac;
                cfg.p_group = p_group;
                cfg.group_count = group_count;
                cfg.group_frac = group_frac;
                cfg.p_temporal = p_temporal;
                cfg.pop_size_bias = pop_size_bias;
                cfg.p_size_change = p_size_change;
                cfg
            },
        )
        .prop_filter("valid config", |cfg| cfg.validate().is_ok())
}

proptest! {
    /// Every generated trace respects its declared universe, is time
    /// ordered, and is deterministic in the seed.
    #[test]
    fn generator_invariants(cfg in synth_config(), seed in any::<u64>()) {
        let t = cfg.generate(seed);
        prop_assert_eq!(t.len() as u64, cfg.n_requests);
        prop_assert!(t.n_clients <= cfg.n_clients);
        for w in t.requests.windows(2) {
            prop_assert!(w[0].time_ms <= w[1].time_ms);
        }
        for r in t.iter() {
            prop_assert!(r.client.0 < cfg.n_clients);
            prop_assert!(r.doc.0 < cfg.n_docs);
            prop_assert!(r.size >= 1);
        }
        let t2 = cfg.generate(seed);
        prop_assert_eq!(t.requests, t2.requests);
    }

    /// Statistics are internally consistent for arbitrary workloads.
    #[test]
    fn stats_consistency(cfg in synth_config(), seed in any::<u64>()) {
        let t = cfg.generate(seed);
        let s = TraceStats::compute(&t);
        prop_assert_eq!(s.requests, t.len() as u64);
        prop_assert_eq!(s.total_bytes, t.total_bytes());
        prop_assert!(s.unique_docs <= s.requests);
        prop_assert!(s.infinite_cache_bytes <= s.total_bytes);
        prop_assert!(s.max_hit_ratio <= 100.0);
        prop_assert!(s.max_byte_hit_ratio <= 100.0);
        // Hits + uniques + size-changes account for every request.
        let hits = (s.max_hit_ratio / 100.0 * s.requests as f64).round() as u64;
        prop_assert_eq!(hits + s.unique_docs + s.size_changes, s.requests);
    }

    /// Binary trace round-trips for arbitrary workloads.
    #[test]
    fn binio_roundtrip(cfg in synth_config(), seed in any::<u64>()) {
        let t = cfg.generate(seed);
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.requests, t.requests);
        prop_assert_eq!(back.n_clients, t.n_clients);
        prop_assert_eq!(back.n_docs, t.n_docs);
    }

    /// The Squid parser never panics on arbitrary UTF-8 input.
    #[test]
    fn squid_parser_never_panics(lines in proptest::collection::vec(".{0,120}", 0..30)) {
        let joined = lines.join("\n");
        let _ = parse_squid(
            BufReader::new(joined.as_bytes()),
            "fuzz",
            &SquidOptions::default(),
        );
    }

    /// The BU parser never panics on arbitrary UTF-8 input.
    #[test]
    fn bu_parser_never_panics(lines in proptest::collection::vec(".{0,120}", 0..30)) {
        let joined = lines.join("\n");
        let _ = parse_bu(BufReader::new(joined.as_bytes()), "fuzz", &BuOptions::default());
    }
}
