//! Property-based tests of the workload generator and log parsers.

use baps_trace::{
    parse_bu, parse_squid, read_trace, write_trace, BuOptions, Scenario, ScenarioOp, SquidOptions,
    SynthConfig, TraceStats,
};
use proptest::prelude::*;
use std::io::BufReader;

fn synth_config() -> impl Strategy<Value = SynthConfig> {
    (
        2u32..24,      // clients
        200u64..3_000, // requests
        0.2f64..1.2,   // doc_alpha
        0.0f64..0.9,   // client_alpha
        0.0f64..0.5,   // p_private
        0.0f64..0.4,   // private_frac
        0.0f64..0.5,   // p_group
        1u32..6,       // group_count
        0.0f64..0.4,   // group_frac
        0.0f64..0.7,   // p_temporal
        0.0f64..1.0,   // pop_size_bias
        0.0f64..0.05,  // p_size_change
    )
        .prop_map(
            |(
                n_clients,
                n_requests,
                doc_alpha,
                client_alpha,
                p_private,
                private_frac,
                p_group,
                group_count,
                group_frac,
                p_temporal,
                pop_size_bias,
                p_size_change,
            )| {
                let mut cfg = SynthConfig::small();
                cfg.n_clients = n_clients;
                cfg.n_requests = n_requests;
                cfg.n_docs = (n_requests as u32).max(n_clients * 4);
                cfg.doc_alpha = doc_alpha;
                cfg.client_alpha = client_alpha;
                cfg.p_private = p_private;
                cfg.private_frac = private_frac;
                cfg.p_group = p_group;
                cfg.group_count = group_count;
                cfg.group_frac = group_frac;
                cfg.p_temporal = p_temporal;
                cfg.pop_size_bias = pop_size_bias;
                cfg.p_size_change = p_size_change;
                cfg
            },
        )
        .prop_filter("valid config", |cfg| cfg.validate().is_ok())
}

proptest! {
    /// Every generated trace respects its declared universe, is time
    /// ordered, and is deterministic in the seed.
    #[test]
    fn generator_invariants(cfg in synth_config(), seed in any::<u64>()) {
        let t = cfg.generate(seed);
        prop_assert_eq!(t.len() as u64, cfg.n_requests);
        prop_assert!(t.n_clients <= cfg.n_clients);
        for w in t.requests.windows(2) {
            prop_assert!(w[0].time_ms <= w[1].time_ms);
        }
        for r in t.iter() {
            prop_assert!(r.client.0 < cfg.n_clients);
            prop_assert!(r.doc.0 < cfg.n_docs);
            prop_assert!(r.size >= 1);
        }
        let t2 = cfg.generate(seed);
        prop_assert_eq!(t.requests, t2.requests);
    }

    /// Statistics are internally consistent for arbitrary workloads.
    #[test]
    fn stats_consistency(cfg in synth_config(), seed in any::<u64>()) {
        let t = cfg.generate(seed);
        let s = TraceStats::compute(&t);
        prop_assert_eq!(s.requests, t.len() as u64);
        prop_assert_eq!(s.total_bytes, t.total_bytes());
        prop_assert!(s.unique_docs <= s.requests);
        prop_assert!(s.infinite_cache_bytes <= s.total_bytes);
        prop_assert!(s.max_hit_ratio <= 100.0);
        prop_assert!(s.max_byte_hit_ratio <= 100.0);
        // Hits + uniques + size-changes account for every request.
        let hits = (s.max_hit_ratio / 100.0 * s.requests as f64).round() as u64;
        prop_assert_eq!(hits + s.unique_docs + s.size_changes, s.requests);
    }

    /// Binary trace round-trips for arbitrary workloads.
    #[test]
    fn binio_roundtrip(cfg in synth_config(), seed in any::<u64>()) {
        let t = cfg.generate(seed);
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.requests, t.requests);
        prop_assert_eq!(back.n_clients, t.n_clients);
        prop_assert_eq!(back.n_docs, t.n_docs);
    }

    /// The Squid parser never panics on arbitrary UTF-8 input.
    #[test]
    fn squid_parser_never_panics(lines in proptest::collection::vec(".{0,120}", 0..30)) {
        let joined = lines.join("\n");
        let _ = parse_squid(
            BufReader::new(joined.as_bytes()),
            "fuzz",
            &SquidOptions::default(),
        );
    }

    /// The BU parser never panics on arbitrary UTF-8 input.
    #[test]
    fn bu_parser_never_panics(lines in proptest::collection::vec(".{0,120}", 0..30)) {
        let joined = lines.join("\n");
        let _ = parse_bu(BufReader::new(joined.as_bytes()), "fuzz", &BuOptions::default());
    }

    /// The same seed yields a byte-identical scenario schedule, for every
    /// scenario over arbitrary dimensions, and every op stays inside the
    /// declared client/doc universe.
    #[test]
    fn scenario_same_seed_byte_identical(
        which in 0usize..4,
        n_requests in 500u64..3_000,
        n_clients in 2u32..12,
        n_docs in 8u32..96,
        seed in any::<u64>(),
    ) {
        let scenario = Scenario::all()[which];
        let cfg = scenario.config(n_requests, n_clients, n_docs);
        prop_assert!(cfg.validate().is_ok());
        let a = cfg.generate(seed);
        let b = cfg.generate(seed);
        prop_assert_eq!(&a.ops, &b.ops);
        prop_assert_eq!(&a.doc_sizes, &b.doc_sizes);
        prop_assert_eq!(a.hot_doc, b.hot_doc);
        prop_assert_eq!(a.gets(), n_requests);
        for op in &a.ops {
            match op {
                ScenarioOp::Get { client, doc } => {
                    prop_assert!(client.0 < n_clients);
                    prop_assert!(doc.0 < n_docs);
                }
                ScenarioOp::Invalidate { doc } => prop_assert!(doc.0 < n_docs),
            }
        }
    }

    /// The flash-crowd hot doc starts cold and reaches its configured
    /// traffic share (within sampling tolerance) once the ramp completes.
    #[test]
    fn flash_crowd_reaches_configured_share(
        hot_share in 0.3f64..0.65,
        seed in any::<u64>(),
    ) {
        let mut cfg = Scenario::FlashCrowd.config(6_000, 8, 64);
        cfg.hot_share = hot_share;
        let sched = cfg.generate(seed);
        let hot = sched.hot_doc.expect("flash crowd sets hot_doc");
        let pre_end = (cfg.ramp_start * cfg.n_requests as f64) as usize;
        let hot_pre = sched.ops[..pre_end]
            .iter()
            .filter(|op| matches!(op, ScenarioOp::Get { doc, .. } if *doc == hot))
            .count();
        prop_assert!(
            (hot_pre as f64) < pre_end as f64 * 0.05,
            "hot doc must start cold: {} hits in {} pre-ramp ops", hot_pre, pre_end
        );
        let post_start = ((cfg.ramp_start + cfg.ramp_window) * cfg.n_requests as f64) as usize;
        let post = &sched.ops[post_start..];
        let hot_post = post
            .iter()
            .filter(|op| matches!(op, ScenarioOp::Get { doc, .. } if *doc == hot))
            .count();
        let share = hot_post as f64 / post.len() as f64;
        prop_assert!(
            (share - hot_share).abs() < 0.06,
            "post-ramp share {} vs target {}", share, hot_share
        );
    }

    /// Heavy-tail body sizes respect the declared envelope: every size is
    /// clamped to the model's max, and the empirical mean of a large
    /// sample lands inside the declared mean range.
    #[test]
    fn heavy_tail_sizes_match_declared_envelope(seed in any::<u64>()) {
        let cfg = Scenario::HeavyTail.config(10, 4, 3_000);
        let sched = cfg.generate(seed);
        let max = cfg.max_body_bytes();
        let (lo, hi) = cfg.declared_mean_bytes();
        prop_assert!(sched.doc_sizes.iter().all(|&s| (1024..=max).contains(&s)));
        prop_assert!(sched.doc_sizes.iter().any(|&s| s > 1 << 20),
            "a 3000-doc heavy-tail sample should include megabyte bodies");
        let mean = sched.doc_sizes.iter().map(|&s| s as f64).sum::<f64>()
            / sched.doc_sizes.len() as f64;
        prop_assert!(
            mean > lo && mean < hi,
            "empirical mean {} outside declared envelope ({}, {})", mean, lo, hi
        );
    }
}
