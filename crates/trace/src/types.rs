//! Core trace data model: clients, documents, requests and traces.
//!
//! A [`Trace`] is a time-ordered sequence of [`Request`]s issued by a set of
//! clients against a universe of documents. Documents are identified by a
//! dense [`DocId`] obtained by interning URLs; clients by a dense
//! [`ClientId`]. Every request carries the size of the document *as observed
//! by that request*, so document-change events (the paper counts a request
//! whose size differs from the cached copy as a miss) are representable.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Dense identifier of a client machine (a browser).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClientId(pub u32);

/// Dense identifier of a unique document (an interned URL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DocId(pub u32);

impl ClientId {
    /// Index usable for direct vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl DocId {
    /// Index usable for direct vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A single Web request record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Milliseconds since the start of the trace.
    pub time_ms: u64,
    /// The client that issued the request.
    pub client: ClientId,
    /// The requested document.
    pub doc: DocId,
    /// Size in bytes of the document as returned to this request.
    pub size: u32,
}

/// A complete, time-ordered request trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable trace name (e.g. `"NLANR-uc"`).
    pub name: String,
    /// Requests sorted by `time_ms` (ties keep input order).
    pub requests: Vec<Request>,
    /// Number of distinct clients; all `ClientId`s are `< n_clients`.
    pub n_clients: u32,
    /// Number of distinct documents; all `DocId`s are `< n_docs`.
    pub n_docs: u32,
}

impl Trace {
    /// Creates an empty trace with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            requests: Vec::new(),
            n_clients: 0,
            n_docs: 0,
        }
    }

    /// Number of requests in the trace.
    #[inline]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace contains no requests.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Iterates over the requests in time order.
    pub fn iter(&self) -> impl Iterator<Item = &Request> + '_ {
        self.requests.iter()
    }

    /// Appends a request, growing the client/document universe as needed.
    pub fn push(&mut self, req: Request) {
        self.n_clients = self.n_clients.max(req.client.0 + 1);
        self.n_docs = self.n_docs.max(req.doc.0 + 1);
        self.requests.push(req);
    }

    /// Sorts requests by timestamp (stable: ties keep insertion order).
    pub fn sort_by_time(&mut self) {
        self.requests.sort_by_key(|r| r.time_ms);
    }

    /// Total bytes requested across all requests.
    pub fn total_bytes(&self) -> u64 {
        self.requests.iter().map(|r| r.size as u64).sum()
    }

    /// Returns a copy of the trace restricted to the given clients,
    /// with client ids renumbered densely in ascending order of the old ids.
    ///
    /// Used by the client-scaling experiment (paper Fig. 8): the document
    /// universe is left untouched so document ids remain comparable.
    pub fn restrict_clients(&self, keep: &[ClientId]) -> Trace {
        let mut renumber: HashMap<ClientId, ClientId> = HashMap::with_capacity(keep.len());
        let mut sorted = keep.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for (new, old) in sorted.iter().enumerate() {
            renumber.insert(*old, ClientId(new as u32));
        }
        let requests: Vec<Request> = self
            .requests
            .iter()
            .filter_map(|r| {
                renumber.get(&r.client).map(|&c| Request {
                    time_ms: r.time_ms,
                    client: c,
                    doc: r.doc,
                    size: r.size,
                })
            })
            .collect();
        Trace {
            name: format!("{}[{}c]", self.name, sorted.len()),
            requests,
            n_clients: sorted.len() as u32,
            n_docs: self.n_docs,
        }
    }

    /// The set of distinct clients that actually issued at least one request.
    pub fn active_clients(&self) -> Vec<ClientId> {
        let mut seen = vec![false; self.n_clients as usize];
        for r in &self.requests {
            seen[r.client.index()] = true;
        }
        (0..self.n_clients)
            .filter(|&i| seen[i as usize])
            .map(ClientId)
            .collect()
    }
}

/// Interns URL strings to dense [`DocId`]s (and client keys to [`ClientId`]s).
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `key`, allocating a fresh one on first sight.
    pub fn intern(&mut self, key: &str) -> u32 {
        if let Some(&id) = self.map.get(key) {
            return id;
        }
        let id = self.names.len() as u32;
        self.map.insert(key.to_owned(), id);
        self.names.push(key.to_owned());
        id
    }

    /// Looks up an id without allocating.
    pub fn get(&self, key: &str) -> Option<u32> {
        self.map.get(key).copied()
    }

    /// Reverse lookup: the original string for `id`.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no keys have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: u64, c: u32, d: u32, s: u32) -> Request {
        Request {
            time_ms: t,
            client: ClientId(c),
            doc: DocId(d),
            size: s,
        }
    }

    #[test]
    fn push_grows_universe() {
        let mut t = Trace::new("t");
        t.push(req(0, 3, 7, 100));
        assert_eq!(t.n_clients, 4);
        assert_eq!(t.n_docs, 8);
        t.push(req(1, 1, 9, 50));
        assert_eq!(t.n_clients, 4);
        assert_eq!(t.n_docs, 10);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn total_bytes_sums_sizes() {
        let mut t = Trace::new("t");
        t.push(req(0, 0, 0, 100));
        t.push(req(1, 0, 1, 250));
        assert_eq!(t.total_bytes(), 350);
    }

    #[test]
    fn restrict_clients_renumbers_densely() {
        let mut t = Trace::new("t");
        t.push(req(0, 0, 0, 10));
        t.push(req(1, 2, 1, 20));
        t.push(req(2, 4, 0, 10));
        let r = t.restrict_clients(&[ClientId(4), ClientId(2)]);
        assert_eq!(r.n_clients, 2);
        assert_eq!(r.len(), 2);
        // ClientId(2) -> 0, ClientId(4) -> 1 (ascending renumber).
        assert_eq!(r.requests[0].client, ClientId(0));
        assert_eq!(r.requests[1].client, ClientId(1));
        // Document universe untouched.
        assert_eq!(r.n_docs, t.n_docs);
    }

    #[test]
    fn restrict_clients_dedups_keep_list() {
        let mut t = Trace::new("t");
        t.push(req(0, 1, 0, 10));
        let r = t.restrict_clients(&[ClientId(1), ClientId(1)]);
        assert_eq!(r.n_clients, 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn active_clients_skips_silent_ids() {
        let mut t = Trace::new("t");
        t.push(req(0, 0, 0, 10));
        t.push(req(1, 5, 0, 10));
        assert_eq!(t.active_clients(), vec![ClientId(0), ClientId(5)]);
    }

    #[test]
    fn sort_by_time_is_stable() {
        let mut t = Trace::new("t");
        t.push(req(5, 0, 0, 1));
        t.push(req(1, 1, 1, 2));
        t.push(req(5, 2, 2, 3));
        t.sort_by_time();
        assert_eq!(t.requests[0].client, ClientId(1));
        assert_eq!(t.requests[1].client, ClientId(0));
        assert_eq!(t.requests[2].client, ClientId(2));
    }

    #[test]
    fn interner_roundtrip() {
        let mut i = Interner::new();
        let a = i.intern("http://a/");
        let b = i.intern("http://b/");
        assert_ne!(a, b);
        assert_eq!(i.intern("http://a/"), a);
        assert_eq!(i.name(a), Some("http://a/"));
        assert_eq!(i.get("http://b/"), Some(b));
        assert_eq!(i.get("http://c/"), None);
        assert_eq!(i.len(), 2);
    }
}
