//! Trace characterisation: the quantities reported in the paper's Table 1.
//!
//! *Infinite cache size* is the total size needed to store every unique
//! requested document (using each document's latest observed size). The
//! *maximum hit ratio* (resp. *maximum byte hit ratio*) is the hit ratio an
//! infinitely large shared cache would achieve: a request hits iff its
//! document was requested before **and** its size has not changed since the
//! previous request (the paper counts size-changed documents as misses).

use crate::types::{ClientId, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Summary statistics of a trace (the columns of the paper's Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Trace name.
    pub name: String,
    /// Total number of requests.
    pub requests: u64,
    /// Total bytes transferred over all requests.
    pub total_bytes: u64,
    /// Number of unique documents requested.
    pub unique_docs: u64,
    /// Infinite cache size in bytes (sum of latest sizes of unique docs).
    pub infinite_cache_bytes: u64,
    /// Number of clients that issued at least one request.
    pub clients: u64,
    /// Hit ratio of an infinite shared cache (percent).
    pub max_hit_ratio: f64,
    /// Byte hit ratio of an infinite shared cache (percent).
    pub max_byte_hit_ratio: f64,
    /// Number of requests that observed a changed document size.
    pub size_changes: u64,
    /// Mean document size in bytes (over unique documents, latest size).
    pub mean_doc_size: f64,
    /// Mean per-client infinite browser-cache size in bytes: the average over
    /// clients of the bytes needed to hold every unique document that client
    /// requested. Used to size "average" browser caches (paper §4.2).
    pub mean_client_infinite_bytes: f64,
}

impl TraceStats {
    /// Computes the statistics of `trace` in a single pass.
    pub fn compute(trace: &Trace) -> TraceStats {
        let mut last_size: HashMap<u32, u32> = HashMap::new();
        let mut per_client_seen: HashMap<(ClientId, u32), ()> = HashMap::new();
        let mut per_client_bytes: HashMap<ClientId, u64> = HashMap::new();
        let mut client_active: HashMap<ClientId, ()> = HashMap::new();

        let mut hits = 0u64;
        let mut hit_bytes = 0u64;
        let mut total_bytes = 0u64;
        let mut size_changes = 0u64;

        for r in trace.iter() {
            total_bytes += r.size as u64;
            client_active.entry(r.client).or_insert(());
            match last_size.get(&r.doc.0).copied() {
                Some(prev) if prev == r.size => {
                    hits += 1;
                    hit_bytes += r.size as u64;
                }
                Some(_) => {
                    size_changes += 1;
                    last_size.insert(r.doc.0, r.size);
                }
                None => {
                    last_size.insert(r.doc.0, r.size);
                }
            }
            // Per-client unique footprint: count each (client, doc) pair once,
            // at its first observed size. (An approximation: size churn is
            // rare enough that it does not meaningfully move the mean.)
            if per_client_seen.insert((r.client, r.doc.0), ()).is_none() {
                *per_client_bytes.entry(r.client).or_insert(0) += r.size as u64;
            }
        }

        let requests = trace.len() as u64;
        let unique_docs = last_size.len() as u64;
        let infinite_cache_bytes: u64 = last_size.values().map(|&s| s as u64).sum();
        let clients = client_active.len() as u64;
        let mean_client_infinite_bytes = if clients == 0 {
            0.0
        } else {
            per_client_bytes.values().sum::<u64>() as f64 / clients as f64
        };

        TraceStats {
            name: trace.name.clone(),
            requests,
            total_bytes,
            unique_docs,
            infinite_cache_bytes,
            clients,
            max_hit_ratio: percent(hits, requests),
            max_byte_hit_ratio: percent(hit_bytes, total_bytes),
            size_changes,
            mean_doc_size: if unique_docs == 0 {
                0.0
            } else {
                infinite_cache_bytes as f64 / unique_docs as f64
            },
            mean_client_infinite_bytes,
        }
    }

    /// Total trace volume in gigabytes (10^9 bytes, as the paper reports).
    pub fn total_gb(&self) -> f64 {
        self.total_bytes as f64 / 1e9
    }

    /// Infinite cache size in gigabytes.
    pub fn infinite_gb(&self) -> f64 {
        self.infinite_cache_bytes as f64 / 1e9
    }
}

fn percent(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ClientId, DocId, Request};

    fn req(t: u64, c: u32, d: u32, s: u32) -> Request {
        Request {
            time_ms: t,
            client: ClientId(c),
            doc: DocId(d),
            size: s,
        }
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::compute(&Trace::new("e"));
        assert_eq!(s.requests, 0);
        assert_eq!(s.max_hit_ratio, 0.0);
        assert_eq!(s.mean_doc_size, 0.0);
    }

    #[test]
    fn repeats_are_infinite_hits() {
        let mut t = Trace::new("t");
        t.push(req(0, 0, 0, 100));
        t.push(req(1, 1, 0, 100));
        t.push(req(2, 0, 1, 300));
        let s = TraceStats::compute(&t);
        assert_eq!(s.requests, 3);
        assert_eq!(s.unique_docs, 2);
        assert_eq!(s.infinite_cache_bytes, 400);
        // 1 hit of 3 requests.
        assert!((s.max_hit_ratio - 33.333).abs() < 0.01);
        // 100 hit bytes of 500 total.
        assert!((s.max_byte_hit_ratio - 20.0).abs() < 0.01);
        assert_eq!(s.size_changes, 0);
        assert_eq!(s.clients, 2);
    }

    #[test]
    fn size_change_is_a_miss_and_updates_footprint() {
        let mut t = Trace::new("t");
        t.push(req(0, 0, 0, 100));
        t.push(req(1, 0, 0, 200)); // changed: miss
        t.push(req(2, 0, 0, 200)); // unchanged: hit
        let s = TraceStats::compute(&t);
        assert_eq!(s.size_changes, 1);
        assert_eq!(s.infinite_cache_bytes, 200); // latest size
        assert!((s.max_hit_ratio - 33.333).abs() < 0.01);
    }

    #[test]
    fn per_client_infinite_bytes_average() {
        let mut t = Trace::new("t");
        // Client 0 touches docs {0 (100), 1 (300)} -> 400 bytes.
        // Client 1 touches doc {0 (100)} -> 100 bytes.
        t.push(req(0, 0, 0, 100));
        t.push(req(1, 0, 1, 300));
        t.push(req(2, 1, 0, 100));
        t.push(req(3, 0, 0, 100)); // repeat, no footprint growth
        let s = TraceStats::compute(&t);
        assert!((s.mean_client_infinite_bytes - 250.0).abs() < 1e-9);
    }

    #[test]
    fn gb_helpers() {
        let mut t = Trace::new("t");
        t.push(req(0, 0, 0, 1_000_000_000));
        let s = TraceStats::compute(&t);
        assert!((s.total_gb() - 1.0).abs() < 1e-9);
        assert!((s.infinite_gb() - 1.0).abs() < 1e-9);
    }
}
