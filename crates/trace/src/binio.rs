//! Compact binary (de)serialisation of traces.
//!
//! Full-size traces run to hundreds of thousands of records; the binary
//! format stores each request as four little-endian integers with
//! delta-encoded timestamps, roughly 4× smaller than JSON and fast enough to
//! round-trip full experiment inputs. The format is versioned with a magic
//! header so stale files fail loudly.

use crate::types::{ClientId, DocId, Request, Trace};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"BAPSTRC1";

/// Writes `trace` to `w` in the compact binary format.
pub fn write_trace<W: Write>(w: &mut W, trace: &Trace) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, trace.name.len() as u32)?;
    w.write_all(trace.name.as_bytes())?;
    write_u32(w, trace.n_clients)?;
    write_u32(w, trace.n_docs)?;
    write_u64(w, trace.requests.len() as u64)?;
    let mut prev_time = 0u64;
    for r in &trace.requests {
        let delta = r.time_ms.checked_sub(prev_time).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "requests must be sorted by time before writing",
            )
        })?;
        prev_time = r.time_ms;
        write_varint(w, delta)?;
        write_u32(w, r.client.0)?;
        write_u32(w, r.doc.0)?;
        write_u32(w, r.size)?;
    }
    Ok(())
}

/// Reads a trace previously written with [`write_trace`].
pub fn read_trace<R: Read>(r: &mut R) -> io::Result<Trace> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a BAPS trace file (bad magic)",
        ));
    }
    let name_len = read_u32(r)? as usize;
    if name_len > 1 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unreasonable name length",
        ));
    }
    let mut name_bytes = vec![0u8; name_len];
    r.read_exact(&mut name_bytes)?;
    let name =
        String::from_utf8(name_bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let n_clients = read_u32(r)?;
    let n_docs = read_u32(r)?;
    let n = read_u64(r)?;
    let mut requests = Vec::with_capacity(n.min(1 << 28) as usize);
    let mut time = 0u64;
    for _ in 0..n {
        time += read_varint(r)?;
        let client = ClientId(read_u32(r)?);
        let doc = DocId(read_u32(r)?);
        let size = read_u32(r)?;
        if client.0 >= n_clients || doc.0 >= n_docs {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request references out-of-universe client/doc",
            ));
        }
        requests.push(Request {
            time_ms: time,
            client,
            doc,
            size,
        });
    }
    Ok(Trace {
        name,
        requests,
        n_clients,
        n_docs,
    })
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// LEB128-style unsigned varint.
fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflow",
            ));
        }
        v |= ((b[0] & 0x7f) as u64) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    #[test]
    fn roundtrip_synthetic_trace() {
        let t = SynthConfig::small().scaled(0.2).generate(9);
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back.name, t.name);
        assert_eq!(back.n_clients, t.n_clients);
        assert_eq!(back.n_docs, t.n_docs);
        assert_eq!(back.requests, t.requests);
    }

    #[test]
    fn roundtrip_empty_trace() {
        let t = Trace::new("empty");
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.name, "empty");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&mut &b"NOTATRCE...."[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unsorted_trace_rejected_on_write() {
        let mut t = Trace::new("t");
        t.push(Request {
            time_ms: 10,
            client: ClientId(0),
            doc: DocId(0),
            size: 1,
        });
        t.push(Request {
            time_ms: 5,
            client: ClientId(0),
            doc: DocId(0),
            size: 1,
        });
        let mut buf = Vec::new();
        assert!(write_trace(&mut buf, &t).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let t = SynthConfig::small().scaled(0.05).generate(1);
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }
    }
}
