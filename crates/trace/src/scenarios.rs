//! Adversarial workload scenarios.
//!
//! The calibrated profiles in [`crate::profiles`] model *steady-state*
//! traffic. Real proxy deployments die under non-stationary shapes: a
//! cold document going viral, a publisher invalidating its corpus, the
//! working set swelling and shrinking with the day, or a handful of
//! multi-megabyte objects dominating the byte stream. This module
//! provides those shapes as first-class deterministic generators.
//!
//! A [`Scenario`] names a shape; [`Scenario::config`] produces a tuned
//! [`ScenarioConfig`]; [`ScenarioConfig::generate`] expands it with a
//! seed into a [`ScenarioSchedule`] — a flat, replayable list of
//! [`ScenarioOp`]s plus the per-document body sizes the driver should
//! install at the origin. The same `(config, seed)` pair always yields
//! a byte-identical schedule, so chaos soaks built on top of it stay
//! run-to-run deterministic.

use crate::dist::{DocSize, LogNormal, Pareto, Zipf};
use crate::synth::SizeModelConfig;
use crate::types::{ClientId, DocId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One step of a scenario schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioOp {
    /// `client` fetches `doc` through the proxy.
    Get {
        /// The requesting browser client.
        client: ClientId,
        /// The document requested.
        doc: DocId,
    },
    /// The publisher updates `doc` at the origin: the driver must mutate
    /// the origin copy and push an INVALIDATE through the proxy so no
    /// cached replica can be served stale.
    Invalidate {
        /// The document whose content changes.
        doc: DocId,
    },
}

/// A fully expanded, deterministic scenario schedule.
#[derive(Debug, Clone)]
pub struct ScenarioSchedule {
    /// The shape that generated this schedule.
    pub scenario: Scenario,
    /// Ordered operations to replay.
    pub ops: Vec<ScenarioOp>,
    /// Number of distinct clients referenced by `ops`.
    pub n_clients: u32,
    /// Number of distinct documents referenced by `ops`.
    pub n_docs: u32,
    /// Body size in bytes for each document `0..n_docs`; the driver
    /// should seed the origin corpus with exactly these sizes.
    pub doc_sizes: Vec<u32>,
    /// The document that goes viral (flash crowd only).
    pub hot_doc: Option<DocId>,
}

impl ScenarioSchedule {
    /// Number of `Get` operations in the schedule.
    pub fn gets(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, ScenarioOp::Get { .. }))
            .count() as u64
    }

    /// Number of `Invalidate` operations in the schedule.
    pub fn invalidations(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, ScenarioOp::Invalidate { .. }))
            .count() as u64
    }

    /// Fraction of `Get` operations that target `hot_doc` (0.0 when the
    /// scenario has no hot document).
    pub fn hot_share(&self) -> f64 {
        let Some(hot) = self.hot_doc else { return 0.0 };
        let mut gets = 0u64;
        let mut hot_gets = 0u64;
        for op in &self.ops {
            if let ScenarioOp::Get { doc, .. } = op {
                gets += 1;
                if *doc == hot {
                    hot_gets += 1;
                }
            }
        }
        if gets == 0 {
            0.0
        } else {
            hot_gets as f64 / gets as f64
        }
    }
}

/// The four adversarial traffic shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// One cold document ramps to ~half of all traffic inside a
    /// configurable window — the thundering-herd shape.
    FlashCrowd,
    /// Periodic bursts of document updates force INVALIDATE plus
    /// revalidation waves through the memory and disk tiers.
    InvalidationStorm,
    /// Working-set size oscillates through day/night cycles so the LRU
    /// and disk tier thrash at the boundaries.
    DiurnalSwing,
    /// Heavy-tail large-object mix with bodies into the megabytes,
    /// stressing whole-body frames and disk write-through.
    HeavyTail,
}

impl Scenario {
    /// All scenarios, in canonical order.
    pub fn all() -> [Scenario; 4] {
        [
            Scenario::FlashCrowd,
            Scenario::InvalidationStorm,
            Scenario::DiurnalSwing,
            Scenario::HeavyTail,
        ]
    }

    /// The kebab-case name used by `--scenario` flags and BENCH keys.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::FlashCrowd => "flash-crowd",
            Scenario::InvalidationStorm => "invalidation-storm",
            Scenario::DiurnalSwing => "diurnal-swing",
            Scenario::HeavyTail => "heavy-tail",
        }
    }

    /// Parses a kebab-case scenario name.
    pub fn parse(name: &str) -> Option<Scenario> {
        Scenario::all().into_iter().find(|s| s.name() == name)
    }

    /// A distinct per-scenario seed so fixed-seed CI runs of different
    /// scenarios do not share RNG streams.
    pub fn canonical_seed(self) -> u64 {
        match self {
            Scenario::FlashCrowd => 0xf1a5_4c70,
            Scenario::InvalidationStorm => 0x5702_a11e,
            Scenario::DiurnalSwing => 0xd1e1_05c1,
            Scenario::HeavyTail => 0x7a11_b0d1,
        }
    }

    /// Tuned default configuration for this shape at the requested
    /// schedule size.
    pub fn config(self, n_requests: u64, n_clients: u32, n_docs: u32) -> ScenarioConfig {
        let mut cfg = ScenarioConfig {
            scenario: self,
            n_requests,
            n_clients,
            n_docs,
            zipf_alpha: 0.8,
            base_min_size: 256,
            base_max_size: 2048,
            hot_share: 0.5,
            ramp_start: 0.1,
            ramp_window: 0.25,
            storm_period: 200,
            storm_docs: 8,
            cycles: 3.0,
            min_working_frac: 0.15,
            size_model: None,
        };
        if self == Scenario::HeavyTail {
            // Median ~16 KB lognormal body with a 20% Pareto tail from
            // 128 KB, clamped at 4 MB: mean lands in the low hundreds
            // of kilobytes — see `declared_mean_bytes`.
            cfg.size_model = Some(SizeModelConfig {
                body_median: 16.0 * 1024.0,
                body_sigma: 1.0,
                tail_scale: 128.0 * 1024.0,
                tail_shape: 1.1,
                tail_prob: 0.2,
                min: 1024,
                max: 4 << 20,
            });
        }
        cfg
    }
}

/// Tunable parameters for one scenario run. Fields that do not apply to
/// the chosen [`Scenario`] are ignored by [`ScenarioConfig::generate`].
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Which shape to generate.
    pub scenario: Scenario,
    /// Total number of `Get` operations to emit.
    pub n_requests: u64,
    /// Number of distinct clients.
    pub n_clients: u32,
    /// Number of distinct documents.
    pub n_docs: u32,
    /// Zipf exponent for background document popularity.
    pub zipf_alpha: f64,
    /// Minimum body size for the uniform base corpus, bytes.
    pub base_min_size: u32,
    /// Maximum body size for the uniform base corpus, bytes.
    pub base_max_size: u32,
    /// Flash crowd: target share of traffic for the hot doc after the
    /// ramp completes, in `(0, 1)`.
    pub hot_share: f64,
    /// Flash crowd: fraction of the schedule before the ramp begins.
    pub ramp_start: f64,
    /// Flash crowd: fraction of the schedule over which the hot share
    /// ramps linearly from zero to `hot_share`.
    pub ramp_window: f64,
    /// Invalidation storm: `Get` operations between bursts.
    pub storm_period: u64,
    /// Invalidation storm: distinct documents invalidated per burst.
    pub storm_docs: u32,
    /// Diurnal swing: number of full day/night cycles in the schedule.
    pub cycles: f64,
    /// Diurnal swing: working-set size at the trough, as a fraction of
    /// `n_docs` (the peak uses the full corpus).
    pub min_working_frac: f64,
    /// Heavy tail: body-size model replacing the uniform base corpus.
    pub size_model: Option<SizeModelConfig>,
}

impl ScenarioConfig {
    /// Validates parameter ranges; returns a description of the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_requests == 0 {
            return Err("n_requests must be positive".into());
        }
        if self.n_clients == 0 {
            return Err("n_clients must be positive".into());
        }
        if self.n_docs < 2 {
            return Err("n_docs must be at least 2".into());
        }
        if self.zipf_alpha <= 0.0 || !self.zipf_alpha.is_finite() {
            return Err("zipf_alpha must be finite and positive".into());
        }
        if self.base_min_size == 0 || self.base_min_size > self.base_max_size {
            return Err("base size range must satisfy 0 < min <= max".into());
        }
        if !(self.hot_share > 0.0 && self.hot_share < 1.0) {
            return Err("hot_share must be in (0, 1)".into());
        }
        if !(self.ramp_start >= 0.0 && self.ramp_window > 0.0)
            || self.ramp_start + self.ramp_window > 1.0
        {
            return Err("ramp_start + ramp_window must fit in [0, 1]".into());
        }
        if self.storm_period == 0 {
            return Err("storm_period must be positive".into());
        }
        if self.storm_docs == 0 || self.storm_docs > self.n_docs {
            return Err("storm_docs must be in 1..=n_docs".into());
        }
        if self.cycles <= 0.0 || !self.cycles.is_finite() {
            return Err("cycles must be finite and positive".into());
        }
        if !(self.min_working_frac > 0.0 && self.min_working_frac <= 1.0) {
            return Err("min_working_frac must be in (0, 1]".into());
        }
        Ok(())
    }

    /// Declared envelope for the mean generated body size, bytes. The
    /// heavy-tail proptest asserts the empirical mean of a large sample
    /// falls inside this range; other scenarios bound it by the uniform
    /// base corpus.
    pub fn declared_mean_bytes(&self) -> (f64, f64) {
        match &self.size_model {
            // Lognormal(median 16K, σ1.0) mean ≈ 26K at weight 0.8 plus
            // a Pareto(128K, 1.1) tail clamped at 4 MB (mean ≈ 540K) at
            // weight 0.2 puts the true mean near 130K; the envelope is
            // deliberately loose because the tail has infinite variance.
            Some(_) => (48.0 * 1024.0, 320.0 * 1024.0),
            None => (self.base_min_size as f64, self.base_max_size as f64),
        }
    }

    /// Maximum body size this configuration can emit, bytes.
    pub fn max_body_bytes(&self) -> u32 {
        match &self.size_model {
            Some(m) => m.max,
            None => self.base_max_size,
        }
    }

    /// Expands the configuration into a deterministic schedule. The
    /// same `(self, seed)` pair always produces an identical result.
    ///
    /// # Panics
    /// Panics if [`ScenarioConfig::validate`] fails.
    pub fn generate(&self, seed: u64) -> ScenarioSchedule {
        if let Err(e) = self.validate() {
            panic!("invalid scenario config: {e}");
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ce0_a210_u64.rotate_left(17));
        let doc_sizes = self.gen_sizes(&mut rng);
        let (ops, hot_doc) = match self.scenario {
            Scenario::FlashCrowd => self.gen_flash_crowd(&mut rng),
            Scenario::InvalidationStorm => (self.gen_storm(&mut rng), None),
            Scenario::DiurnalSwing => (self.gen_diurnal(&mut rng), None),
            Scenario::HeavyTail => (self.gen_heavy_tail(&mut rng), None),
        };
        ScenarioSchedule {
            scenario: self.scenario,
            ops,
            n_clients: self.n_clients,
            n_docs: self.n_docs,
            doc_sizes,
            hot_doc,
        }
    }

    fn gen_sizes(&self, rng: &mut StdRng) -> Vec<u32> {
        match &self.size_model {
            Some(m) => {
                let model = DocSize::new(
                    LogNormal::from_median(m.body_median, m.body_sigma),
                    Pareto::new(m.tail_scale, m.tail_shape),
                    m.tail_prob,
                    m.min,
                    m.max,
                );
                (0..self.n_docs).map(|_| model.sample(rng)).collect()
            }
            None => (0..self.n_docs)
                .map(|_| rng.gen_range(self.base_min_size..=self.base_max_size))
                .collect(),
        }
    }

    fn client(&self, rng: &mut StdRng) -> ClientId {
        ClientId(rng.gen_range(0..self.n_clients))
    }

    /// The hot doc is the *least* popular background rank so it is
    /// genuinely cold before the ramp begins.
    fn gen_flash_crowd(&self, rng: &mut StdRng) -> (Vec<ScenarioOp>, Option<DocId>) {
        let hot = DocId(self.n_docs - 1);
        let zipf = Zipf::new(u64::from(self.n_docs), self.zipf_alpha);
        let n = self.n_requests;
        let mut ops = Vec::with_capacity(n as usize);
        for i in 0..n {
            let frac = i as f64 / n as f64;
            let p_hot = if frac < self.ramp_start {
                0.0
            } else if frac < self.ramp_start + self.ramp_window {
                self.hot_share * (frac - self.ramp_start) / self.ramp_window
            } else {
                self.hot_share
            };
            let client = self.client(rng);
            let doc = if rng.gen::<f64>() < p_hot {
                hot
            } else {
                DocId(zipf.sample(rng) as u32)
            };
            ops.push(ScenarioOp::Get { client, doc });
        }
        (ops, Some(hot))
    }

    fn gen_storm(&self, rng: &mut StdRng) -> Vec<ScenarioOp> {
        let zipf = Zipf::new(u64::from(self.n_docs), self.zipf_alpha);
        let mut ops = Vec::with_capacity(self.n_requests as usize);
        let mut burst = Vec::with_capacity(self.storm_docs as usize);
        for i in 0..self.n_requests {
            if i > 0 && i % self.storm_period == 0 {
                // Invalidate the *popular* ranks: every cached replica
                // of a hot doc must revalidate, which is the worst case
                // for both the memory and disk tiers.
                burst.clear();
                while burst.len() < self.storm_docs as usize {
                    let doc = DocId(zipf.sample(rng) as u32);
                    if !burst.contains(&doc) {
                        burst.push(doc);
                    }
                }
                for &doc in &burst {
                    ops.push(ScenarioOp::Invalidate { doc });
                }
            }
            let client = self.client(rng);
            let doc = DocId(zipf.sample(rng) as u32);
            ops.push(ScenarioOp::Get { client, doc });
        }
        ops
    }

    fn gen_diurnal(&self, rng: &mut StdRng) -> Vec<ScenarioOp> {
        let zipf = Zipf::new(u64::from(self.n_docs), self.zipf_alpha);
        let n = self.n_requests;
        let mut ops = Vec::with_capacity(n as usize);
        let stride = self.n_docs / 2 + 1;
        for i in 0..n {
            let progress = self.cycles * i as f64 / n as f64;
            // Smooth day/night swing in [0, 1].
            let phase = 0.5 - 0.5 * (progress * 2.0 * std::f64::consts::PI).cos();
            let frac = self.min_working_frac + (1.0 - self.min_working_frac) * phase;
            let working = ((self.n_docs as f64 * frac).round() as u32).max(1);
            // Rotate the window each cycle so successive days touch a
            // shifted slice of the corpus and the LRU actually churns.
            let offset = (progress as u32).wrapping_mul(stride) % self.n_docs;
            let rank = zipf.sample(rng) as u32 % working;
            let doc = DocId((offset + rank) % self.n_docs);
            let client = self.client(rng);
            ops.push(ScenarioOp::Get { client, doc });
        }
        ops
    }

    fn gen_heavy_tail(&self, rng: &mut StdRng) -> Vec<ScenarioOp> {
        let zipf = Zipf::new(u64::from(self.n_docs), self.zipf_alpha);
        (0..self.n_requests)
            .map(|_| ScenarioOp::Get {
                client: self.client(rng),
                doc: DocId(zipf.sample(rng) as u32),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(s: Scenario) -> ScenarioConfig {
        s.config(2_000, 6, 48)
    }

    #[test]
    fn names_round_trip() {
        for s in Scenario::all() {
            assert_eq!(Scenario::parse(s.name()), Some(s));
        }
        assert_eq!(Scenario::parse("nope"), None);
    }

    #[test]
    fn canonical_seeds_distinct() {
        let seeds: Vec<u64> = Scenario::all().iter().map(|s| s.canonical_seed()).collect();
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                assert_ne!(seeds[i], seeds[j]);
            }
        }
    }

    #[test]
    fn default_configs_validate() {
        for s in Scenario::all() {
            small(s).validate().expect("default config must validate");
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        for s in Scenario::all() {
            let cfg = small(s);
            let a = cfg.generate(7);
            let b = cfg.generate(7);
            assert_eq!(a.ops, b.ops, "{}", s.name());
            assert_eq!(a.doc_sizes, b.doc_sizes, "{}", s.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = small(Scenario::FlashCrowd);
        assert_ne!(cfg.generate(1).ops, cfg.generate(2).ops);
    }

    #[test]
    fn flash_crowd_ramps_to_target() {
        let cfg = small(Scenario::FlashCrowd);
        let sched = cfg.generate(Scenario::FlashCrowd.canonical_seed());
        let hot = sched.hot_doc.expect("flash crowd sets hot_doc");
        // Before the ramp the hot doc is cold; after it, near target.
        let pre = &sched.ops[..(cfg.n_requests as f64 * cfg.ramp_start) as usize];
        let hot_pre = pre
            .iter()
            .filter(|op| matches!(op, ScenarioOp::Get { doc, .. } if *doc == hot))
            .count();
        assert!(
            (hot_pre as f64) < pre.len() as f64 * 0.1,
            "hot doc must start cold, got {hot_pre}/{}",
            pre.len()
        );
        let post_start = ((cfg.ramp_start + cfg.ramp_window) * cfg.n_requests as f64) as usize;
        let post = &sched.ops[post_start..];
        let hot_post = post
            .iter()
            .filter(|op| matches!(op, ScenarioOp::Get { doc, .. } if *doc == hot))
            .count();
        let share = hot_post as f64 / post.len() as f64;
        assert!(
            (share - cfg.hot_share).abs() < 0.08,
            "post-ramp hot share {share:.3} vs target {}",
            cfg.hot_share
        );
    }

    #[test]
    fn storm_emits_bursts() {
        let cfg = small(Scenario::InvalidationStorm);
        let sched = cfg.generate(3);
        let expected = (cfg.n_requests - 1) / cfg.storm_period * u64::from(cfg.storm_docs);
        assert_eq!(sched.invalidations(), expected);
        assert_eq!(sched.gets(), cfg.n_requests);
    }

    #[test]
    fn diurnal_touches_whole_corpus() {
        let cfg = small(Scenario::DiurnalSwing);
        let sched = cfg.generate(5);
        let mut seen = vec![false; cfg.n_docs as usize];
        for op in &sched.ops {
            if let ScenarioOp::Get { doc, .. } = op {
                seen[doc.index()] = true;
            }
        }
        let touched = seen.iter().filter(|s| **s).count();
        assert!(touched > cfg.n_docs as usize / 2, "touched {touched}");
    }

    #[test]
    fn heavy_tail_sizes_clamped() {
        let cfg = small(Scenario::HeavyTail);
        let sched = cfg.generate(11);
        let max = cfg.max_body_bytes();
        assert!(sched.doc_sizes.iter().all(|&s| s >= 1024 && s <= max));
        // At least one doc should exceed the base corpus ceiling.
        assert!(sched.doc_sizes.iter().any(|&s| s > 64 * 1024));
    }

    #[test]
    fn ids_stay_in_range() {
        for s in Scenario::all() {
            let cfg = small(s);
            let sched = cfg.generate(9);
            for op in &sched.ops {
                match op {
                    ScenarioOp::Get { client, doc } => {
                        assert!(client.0 < cfg.n_clients);
                        assert!(doc.0 < cfg.n_docs);
                    }
                    ScenarioOp::Invalidate { doc } => assert!(doc.0 < cfg.n_docs),
                }
            }
        }
    }
}
