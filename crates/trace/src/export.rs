//! Exporting traces as Squid native access logs.
//!
//! The inverse of [`crate::squid::parse_squid`]: any [`Trace`] — synthetic
//! or parsed — can be written back out in the NLANR log format, so the
//! synthetic workloads can drive external tools (or be re-ingested through
//! the parser, which the round-trip tests exercise).

use crate::types::Trace;
use std::io::{self, Write};

/// Naming scheme used when a trace has no URL/client strings of its own.
#[derive(Debug, Clone)]
pub struct ExportNames {
    /// Base epoch timestamp (seconds) for the first request.
    pub epoch_s: u64,
    /// URL prefix; document `d` becomes `<url_prefix><d>`.
    pub url_prefix: String,
}

impl Default for ExportNames {
    fn default() -> Self {
        ExportNames {
            // 2000-07-14, matching the NLANR-uc collection date.
            epoch_s: 963_532_800,
            url_prefix: "http://synth.example/doc/".to_owned(),
        }
    }
}

impl ExportNames {
    /// Synthesises a stable client address for a client id
    /// (`10.x.y.z`, one address per client, NLANR-style sanitised space).
    pub fn client_addr(&self, client: u32) -> String {
        format!(
            "10.{}.{}.{}",
            (client >> 16) & 0xff,
            (client >> 8) & 0xff,
            client & 0xff
        )
    }
}

/// Writes `trace` to `w` as a Squid native access log.
///
/// Every record is emitted as a successful `TCP_MISS/200 GET` so the
/// round-trip through [`crate::squid::parse_squid`] with default options
/// preserves every request.
pub fn write_squid_log<W: Write>(w: &mut W, trace: &Trace, names: &ExportNames) -> io::Result<()> {
    let mut out = io::BufWriter::new(w);
    for r in trace.iter() {
        let ts_s = names.epoch_s as f64 + r.time_ms as f64 / 1000.0;
        writeln!(
            out,
            "{ts_s:.3} 120 {client} TCP_MISS/200 {size} GET {prefix}{doc} - DIRECT/origin text/html",
            client = names.client_addr(r.client.0),
            size = r.size,
            prefix = names.url_prefix,
            doc = r.doc.0,
        )?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::squid::{parse_squid, SquidOptions};
    use crate::synth::SynthConfig;
    use std::collections::HashMap;
    use std::io::BufReader;

    #[test]
    fn roundtrip_through_parser() {
        let trace = SynthConfig::small().scaled(0.1).generate(31);
        let mut buf = Vec::new();
        write_squid_log(&mut buf, &trace, &ExportNames::default()).unwrap();
        let (parsed, _urls, _clients) = parse_squid(
            BufReader::new(buf.as_slice()),
            "roundtrip",
            &SquidOptions::default(),
        )
        .unwrap();

        assert_eq!(parsed.len(), trace.len());
        // Ids are re-interned by first appearance, so check a consistent
        // bijection plus exact sizes/times.
        let mut doc_map: HashMap<u32, u32> = HashMap::new();
        let mut client_map: HashMap<u32, u32> = HashMap::new();
        // The parser rebases time to the first record.
        let base = trace.requests[0].time_ms;
        for (a, b) in trace.iter().zip(parsed.iter()) {
            assert_eq!(a.time_ms - base, b.time_ms);
            assert_eq!(a.size, b.size);
            assert_eq!(*doc_map.entry(a.doc.0).or_insert(b.doc.0), b.doc.0);
            assert_eq!(
                *client_map.entry(a.client.0).or_insert(b.client.0),
                b.client.0
            );
        }
        // Bijections, not mere functions.
        let distinct_docs: std::collections::HashSet<u32> = doc_map.values().copied().collect();
        assert_eq!(distinct_docs.len(), doc_map.len());
        let distinct_clients: std::collections::HashSet<u32> =
            client_map.values().copied().collect();
        assert_eq!(distinct_clients.len(), client_map.len());
    }

    #[test]
    fn empty_trace_writes_nothing() {
        let mut buf = Vec::new();
        write_squid_log(&mut buf, &Trace::new("e"), &ExportNames::default()).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn client_addresses_are_stable_and_distinct() {
        let names = ExportNames::default();
        assert_eq!(names.client_addr(0), "10.0.0.0");
        assert_eq!(names.client_addr(259), "10.0.1.3");
        assert_ne!(names.client_addr(1), names.client_addr(2));
        assert_eq!(names.client_addr(7), names.client_addr(7));
    }

    #[test]
    fn format_fields_parse_individually() {
        let mut t = Trace::new("t");
        t.push(crate::types::Request {
            time_ms: 1500,
            client: crate::types::ClientId(3),
            doc: crate::types::DocId(9),
            size: 4120,
        });
        let mut buf = Vec::new();
        write_squid_log(&mut buf, &t, &ExportNames::default()).unwrap();
        let line = String::from_utf8(buf).unwrap();
        let fields: Vec<&str> = line.split_ascii_whitespace().collect();
        assert_eq!(fields.len(), 10);
        assert!(fields[0].ends_with(".500"));
        assert_eq!(fields[2], "10.0.0.3");
        assert_eq!(fields[4], "4120");
        assert_eq!(fields[6], "http://synth.example/doc/9");
    }
}
