//! Sharable-locality analysis: the paper's headline question is "how much
//! browser cache data is sharable?" — these statistics answer it directly
//! from the trace, independent of any cache configuration.
//!
//! A document is *shared* when more than one client requests it; a request
//! is a *cross-client re-reference* when its document was previously
//! requested by a different client (an upper bound on what any
//! peer-sharing scheme — proxy or browsers-aware — can serve from another
//! client's history). The browsers-aware design specifically harvests
//! cross-client re-references whose previous requester still holds the
//! document after the proxy lost it.

use crate::types::Trace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Sharing statistics of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharingStats {
    /// Number of distinct documents requested by exactly one client.
    pub private_docs: u64,
    /// Number of distinct documents requested by 2..=5 clients.
    pub group_docs: u64,
    /// Number of distinct documents requested by more than 5 clients.
    pub popular_docs: u64,
    /// Requests whose document had previously been requested by a
    /// *different* client.
    pub cross_client_rerefs: u64,
    /// Bytes of those cross-client re-references.
    pub cross_client_bytes: u64,
    /// Requests whose document had previously been requested by the *same*
    /// client (self re-references; local browser-cache territory).
    pub self_rerefs: u64,
    /// Total requests.
    pub requests: u64,
    /// Total bytes.
    pub total_bytes: u64,
    /// Mean number of distinct clients per shared (2+ client) document.
    pub mean_sharers: f64,
}

impl SharingStats {
    /// Computes sharing statistics in one pass.
    pub fn compute(trace: &Trace) -> SharingStats {
        // Per-doc: set of clients seen so far (small vecs; most docs are
        // touched by few clients).
        let mut seen: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut cross_client_rerefs = 0u64;
        let mut cross_client_bytes = 0u64;
        let mut self_rerefs = 0u64;
        let mut total_bytes = 0u64;

        for r in trace.iter() {
            total_bytes += r.size as u64;
            let clients = seen.entry(r.doc.0).or_default();
            if !clients.is_empty() {
                if clients.contains(&r.client.0) {
                    if clients.len() == 1 {
                        self_rerefs += 1;
                    } else {
                        // Doc known to this client *and* others: count as a
                        // cross-client re-reference opportunity.
                        cross_client_rerefs += 1;
                        cross_client_bytes += r.size as u64;
                    }
                } else {
                    cross_client_rerefs += 1;
                    cross_client_bytes += r.size as u64;
                }
            }
            if !clients.contains(&r.client.0) {
                clients.push(r.client.0);
            }
        }

        let mut private_docs = 0u64;
        let mut group_docs = 0u64;
        let mut popular_docs = 0u64;
        let mut sharer_sum = 0u64;
        let mut shared_count = 0u64;
        for clients in seen.values() {
            match clients.len() {
                1 => private_docs += 1,
                2..=5 => {
                    group_docs += 1;
                    sharer_sum += clients.len() as u64;
                    shared_count += 1;
                }
                _ => {
                    popular_docs += 1;
                    sharer_sum += clients.len() as u64;
                    shared_count += 1;
                }
            }
        }

        SharingStats {
            private_docs,
            group_docs,
            popular_docs,
            cross_client_rerefs,
            cross_client_bytes,
            self_rerefs,
            requests: trace.len() as u64,
            total_bytes,
            mean_sharers: if shared_count == 0 {
                0.0
            } else {
                sharer_sum as f64 / shared_count as f64
            },
        }
    }

    /// Distinct documents.
    pub fn unique_docs(&self) -> u64 {
        self.private_docs + self.group_docs + self.popular_docs
    }

    /// Cross-client re-references as a percentage of all requests: the
    /// upper bound on any peer-sharing hit ratio.
    pub fn sharable_request_pct(&self) -> f64 {
        pct(self.cross_client_rerefs, self.requests)
    }

    /// Cross-client re-referenced bytes as a percentage of all bytes.
    pub fn sharable_byte_pct(&self) -> f64 {
        pct(self.cross_client_bytes, self.total_bytes)
    }

    /// Shared (2+ client) documents as a percentage of distinct documents.
    pub fn shared_doc_pct(&self) -> f64 {
        pct(self.group_docs + self.popular_docs, self.unique_docs())
    }
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;
    use crate::types::{ClientId, DocId, Request};

    fn req(t: u64, c: u32, d: u32, s: u32) -> Request {
        Request {
            time_ms: t,
            client: ClientId(c),
            doc: DocId(d),
            size: s,
        }
    }

    #[test]
    fn classification_counts() {
        let mut t = Trace::new("t");
        t.push(req(0, 0, 0, 100)); // doc 0: first sight
        t.push(req(1, 1, 0, 100)); // cross-client reref
        t.push(req(2, 0, 1, 50)); // doc 1: private to client 0
        t.push(req(3, 0, 1, 50)); // self reref
        t.push(req(4, 0, 0, 100)); // doc 0 shared by {0,1}: cross-client
        let s = SharingStats::compute(&t);
        assert_eq!(s.requests, 5);
        assert_eq!(s.cross_client_rerefs, 2);
        assert_eq!(s.self_rerefs, 1);
        assert_eq!(s.private_docs, 1);
        assert_eq!(s.group_docs, 1);
        assert_eq!(s.popular_docs, 0);
        assert!((s.mean_sharers - 2.0).abs() < 1e-9);
        assert!((s.sharable_request_pct() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn popular_docs_bucket() {
        let mut t = Trace::new("t");
        for c in 0..7 {
            t.push(req(c as u64, c, 0, 10));
        }
        let s = SharingStats::compute(&t);
        assert_eq!(s.popular_docs, 1);
        assert_eq!(s.group_docs, 0);
        assert_eq!(s.cross_client_rerefs, 6);
        assert!((s.mean_sharers - 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace() {
        let s = SharingStats::compute(&Trace::new("e"));
        assert_eq!(s.requests, 0);
        assert_eq!(s.sharable_request_pct(), 0.0);
        assert_eq!(s.shared_doc_pct(), 0.0);
    }

    #[test]
    fn private_pool_docs_never_shared() {
        // The generator's private pools must show up as private docs only.
        let cfg = SynthConfig::small().scaled(0.2);
        let t = cfg.generate(21);
        let private_total = ((cfg.n_docs as f64) * cfg.private_frac) as u32;
        let private_base = cfg.n_docs - private_total;
        let mut seen: HashMap<u32, Vec<u32>> = HashMap::new();
        for r in t.iter() {
            if r.doc.0 >= private_base {
                let v = seen.entry(r.doc.0).or_default();
                if !v.contains(&r.client.0) {
                    v.push(r.client.0);
                }
            }
        }
        assert!(seen.values().all(|v| v.len() == 1));
    }

    #[test]
    fn synthetic_trace_has_sharable_locality() {
        let t = SynthConfig::small().scaled(0.3).generate(22);
        let s = SharingStats::compute(&t);
        assert!(
            s.sharable_request_pct() > 10.0,
            "{}",
            s.sharable_request_pct()
        );
        assert!(s.shared_doc_pct() > 1.0);
        assert!(s.unique_docs() > 0);
    }
}
