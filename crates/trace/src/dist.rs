//! Random samplers used by the synthetic workload generator.
//!
//! Web workloads are classically modelled with a Zipf-like document
//! popularity distribution and heavy-tailed document sizes (lognormal body,
//! Pareto tail). These samplers are implemented here directly so the crate
//! only depends on `rand`'s core traits, and so every distribution is
//! deterministic under a seeded RNG.

use rand::Rng;

/// Zipf-like distribution over ranks `0..n` with exponent `alpha`:
/// `P(rank = i) ∝ 1 / (i + 1)^alpha`.
///
/// Sampling uses rejection-inversion (W. Hörmann, G. Derflinger,
/// "Rejection-inversion to generate variates from monotone discrete
/// distributions"), which is O(1) per sample and needs no O(n) table, so it
/// scales to document universes of millions.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    // Precomputed constants of the rejection-inversion scheme.
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `alpha > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha <= 0` or `alpha` is not finite.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        let h_x1 = Self::h_integral(1.5, alpha) - 1.0;
        let h_n = Self::h_integral(n as f64 + 0.5, alpha);
        let s =
            2.0 - Self::h_integral_inv(Self::h_integral(2.5, alpha) - Self::h(2.0, alpha), alpha);
        Zipf {
            n,
            alpha,
            h_x1,
            h_n,
            s,
        }
    }

    /// `H(x) = ∫ t^-alpha dt` up to additive constant: `(x^(1-a) - 1)/(1-a)`,
    /// or `ln x` for `a = 1`.
    fn h_integral(x: f64, alpha: f64) -> f64 {
        if (alpha - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - alpha) - 1.0) / (1.0 - alpha)
        }
    }

    /// `h(x) = x^-alpha`.
    fn h(x: f64, alpha: f64) -> f64 {
        x.powf(-alpha)
    }

    /// Inverse of [`Self::h_integral`].
    fn h_integral_inv(x: f64, alpha: f64) -> f64 {
        if (alpha - 1.0).abs() < 1e-12 {
            x.exp()
        } else {
            // Clamp against tiny negative arguments from rounding.
            let t = (1.0 + x * (1.0 - alpha)).max(0.0);
            t.powf(1.0 / (1.0 - alpha))
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent alpha.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Samples a rank in `0..n` (0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = Self::h_integral_inv(u, self.alpha);
            let kf = x.round().clamp(1.0, self.n as f64);
            if kf - x <= self.s
                || u >= Self::h_integral(kf + 0.5, self.alpha) - Self::h(kf, self.alpha)
            {
                return kf as u64 - 1;
            }
        }
    }
}

/// Samples from a lognormal distribution: `exp(mu + sigma * N(0,1))`.
///
/// The standard normal is generated with the Box–Muller transform.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal with the given parameters of the underlying normal.
    ///
    /// # Panics
    /// Panics if `sigma` is negative or either parameter is not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Creates a lognormal from a target *median* and sigma.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0);
        Self::new(median.ln(), sigma)
    }

    /// Samples one value (> 0).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: avoid u1 == 0 which makes ln(u1) = -inf.
        let mut u1: f64 = rng.gen();
        while u1 <= f64::MIN_POSITIVE {
            u1 = rng.gen();
        }
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// Pareto distribution with scale `x_m > 0` and shape `alpha > 0`.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    x_m: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    /// Panics if `x_m <= 0` or `alpha <= 0`.
    pub fn new(x_m: f64, alpha: f64) -> Self {
        assert!(x_m > 0.0 && alpha > 0.0);
        Pareto { x_m, alpha }
    }

    /// Samples one value (>= x_m) by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut u: f64 = rng.gen();
        while u <= f64::MIN_POSITIVE {
            u = rng.gen();
        }
        self.x_m / u.powf(1.0 / self.alpha)
    }
}

/// Heavy-tailed Web document size model: lognormal body with a Pareto tail,
/// clamped to `[min, max]` bytes.
///
/// With probability `tail_prob` the size is drawn from the Pareto tail,
/// otherwise from the lognormal body. This mirrors the classical model of
/// Web object sizes (Barford & Crovella).
#[derive(Debug, Clone, Copy)]
pub struct DocSize {
    body: LogNormal,
    tail: Pareto,
    tail_prob: f64,
    min: u32,
    max: u32,
}

impl DocSize {
    /// Creates the hybrid size model.
    ///
    /// # Panics
    /// Panics if `min > max` or `tail_prob` is outside `[0, 1]`.
    pub fn new(body: LogNormal, tail: Pareto, tail_prob: f64, min: u32, max: u32) -> Self {
        assert!(min <= max);
        assert!((0.0..=1.0).contains(&tail_prob));
        DocSize {
            body,
            tail,
            tail_prob,
            min,
            max,
        }
    }

    /// A reasonable default for early-2000s Web traffic: median ~4 KB body,
    /// a Pareto(8 KB, 1.2) tail taken 8% of the time, clamped to
    /// [64 B, 8 MB].
    pub fn web_default() -> Self {
        DocSize::new(
            LogNormal::from_median(4096.0, 1.2),
            Pareto::new(8192.0, 1.2),
            0.08,
            64,
            8 << 20,
        )
    }

    /// Samples a document size in bytes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let raw = if rng.gen::<f64>() < self.tail_prob {
            self.tail.sample(rng)
        } else {
            self.body.sample(rng)
        };
        let clamped = raw.clamp(self.min as f64, self.max as f64);
        clamped.round() as u32
    }
}

/// Samples an index in `0..weights.len()` proportionally to `weights`,
/// using a precomputed cumulative table and binary search (O(log n)).
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    /// Builds the table. Weights must be non-negative and sum to > 0.
    ///
    /// # Panics
    /// Panics on empty weights, negative weights, or a zero sum.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty());
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must sum to a positive value");
        WeightedIndex { cumulative }
    }

    /// Builds Zipf weights over `n` items: weight of item i is 1/(i+1)^alpha.
    pub fn zipf(n: usize, alpha: f64) -> Self {
        assert!(n > 0);
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(alpha)).collect();
        Self::new(&weights)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples an index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().unwrap();
        let x = rng.gen::<f64>() * total;
        match self
            .cumulative
            .binary_search_by(|probe| probe.partial_cmp(&x).unwrap())
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Exponential inter-arrival sampler with the given mean (in the same unit
/// the caller interprets, e.g. milliseconds).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with `mean > 0`.
    ///
    /// # Panics
    /// Panics if `mean <= 0`.
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0);
        Exponential { mean }
    }

    /// Samples one inter-arrival gap.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut u: f64 = rng.gen();
        while u <= f64::MIN_POSITIVE {
            u = rng.gen();
        }
        -self.mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn zipf_ranks_in_range() {
        let z = Zipf::new(1000, 0.8);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(z.sample(&mut r) < 1000);
        }
    }

    #[test]
    fn zipf_rank0_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng();
        let mut counts = [0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut r) as usize] += 1;
        }
        // Rank 0 should clearly dominate rank 10 and rank 50.
        assert!(counts[0] > counts[10] * 2);
        assert!(counts[0] > counts[50] * 5);
    }

    #[test]
    fn zipf_matches_theory_roughly() {
        // For alpha = 1 over n = 10, P(0) = 1/H_10 ≈ 0.3414.
        let z = Zipf::new(10, 1.0);
        let mut r = rng();
        let trials = 200_000;
        let mut c0 = 0u32;
        for _ in 0..trials {
            if z.sample(&mut r) == 0 {
                c0 += 1;
            }
        }
        let p0 = c0 as f64 / trials as f64;
        assert!((p0 - 0.3414).abs() < 0.01, "p0 = {p0}");
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 0.7);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 0);
        }
    }

    #[test]
    fn lognormal_median_is_close() {
        let d = LogNormal::from_median(4096.0, 1.0);
        let mut r = rng();
        let mut v: Vec<f64> = (0..20_001).map(|_| d.sample(&mut r)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!((median / 4096.0 - 1.0).abs() < 0.1, "median = {median}");
    }

    #[test]
    fn pareto_lower_bound_holds() {
        let p = Pareto::new(8192.0, 1.2);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(p.sample(&mut r) >= 8192.0);
        }
    }

    #[test]
    fn doc_size_respects_clamp() {
        let d = DocSize::web_default();
        let mut r = rng();
        for _ in 0..20_000 {
            let s = d.sample(&mut r);
            assert!((64..=(8 << 20)).contains(&s));
        }
    }

    #[test]
    fn doc_size_is_heavy_tailed() {
        let d = DocSize::web_default();
        let mut r = rng();
        let samples: Vec<u32> = (0..50_000).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        // Heavy tail: mean well above median.
        assert!(mean > median * 1.5, "mean={mean} median={median}");
    }

    #[test]
    fn weighted_index_prefers_heavy_items() {
        let w = WeightedIndex::new(&[8.0, 1.0, 1.0]);
        let mut r = rng();
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[w.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[1] * 4);
        assert!(counts[0] > counts[2] * 4);
    }

    #[test]
    fn weighted_index_zero_weight_never_sampled() {
        let w = WeightedIndex::new(&[1.0, 0.0, 1.0]);
        let mut r = rng();
        for _ in 0..5_000 {
            assert_ne!(w.sample(&mut r), 1);
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let e = Exponential::new(250.0);
        let mut r = rng();
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| e.sample(&mut r)).sum();
        let mean = sum / n as f64;
        assert!((mean / 250.0 - 1.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    #[should_panic]
    fn zipf_rejects_zero_ranks() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic]
    fn weighted_rejects_zero_sum() {
        let _ = WeightedIndex::new(&[0.0, 0.0]);
    }
}
