//! Synthetic Web workload generator.
//!
//! The original NLANR / Boston University / CA*netII logs used in the paper
//! are no longer distributable (client identities were sanitised and the
//! archives have rotted), so experiments are driven by synthetic traces that
//! reproduce the *locality structure* the paper's results depend on:
//!
//! * **Popularity skew** — documents in a shared pool are drawn from a
//!   Zipf-like distribution (exponent [`SynthConfig::doc_alpha`]).
//! * **Cross-client sharing vs. privacy** — a fraction of each client's
//!   requests target a private document pool nobody else requests
//!   ([`SynthConfig::p_private`]); the rest hit the shared pool. This knob
//!   controls how much browser-cache content is *sharable*, the quantity the
//!   paper measures.
//! * **Temporal locality** — with probability [`SynthConfig::p_temporal`] a
//!   client re-requests a document from its own recent-history LRU stack,
//!   with stack positions drawn Zipf-like (browser caches live off this).
//! * **Heavy-tailed sizes** — lognormal body + Pareto tail ([`DocSize`]).
//! * **Document churn** — each request mutates its document's size with
//!   probability [`SynthConfig::p_size_change`]; the paper counts requests
//!   that observe a changed size as misses.
//! * **Client activity skew** — requests are attributed to clients with a
//!   Zipf-like activity distribution ([`SynthConfig::client_alpha`]).
//!
//! Generation is fully deterministic given a seed.

use crate::dist::{DocSize, Exponential, WeightedIndex, Zipf};
use crate::types::{ClientId, DocId, Request, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic workload generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Trace name to stamp on the output.
    pub name: String,
    /// Number of client machines.
    pub n_clients: u32,
    /// Number of requests to generate.
    pub n_requests: u64,
    /// Total document universe (shared pool + all private pools).
    pub n_docs: u32,
    /// Zipf exponent of shared-pool document popularity (typically 0.6–0.9).
    pub doc_alpha: f64,
    /// Zipf exponent of client activity (0 = uniform activity).
    pub client_alpha: f64,
    /// Probability that a "fresh" request targets the client's private pool.
    pub p_private: f64,
    /// Fraction of the document universe reserved for private pools.
    pub private_frac: f64,
    /// Probability that a "fresh" request targets the client's *group*
    /// pool: documents shared by a small community of clients (the same
    /// lab, course or department). Group docs are requested by a handful of
    /// clients over long time spans, which is exactly the \"sharable but
    /// proxy-evicted\" locality the browsers-aware proxy harvests.
    pub p_group: f64,
    /// Number of client groups (clients are assigned round-robin).
    pub group_count: u32,
    /// Fraction of the document universe reserved for group pools.
    pub group_frac: f64,
    /// Probability of re-requesting from the client's recent-history stack.
    pub p_temporal: f64,
    /// Depth of the per-client recent-history stack.
    pub stack_depth: usize,
    /// Zipf exponent over stack positions (higher = tighter reuse).
    pub stack_alpha: f64,
    /// Document size model.
    pub size_model: SizeModelConfig,
    /// Per-request probability that the requested document changed size.
    pub p_size_change: f64,
    /// Mean inter-arrival time between consecutive requests, milliseconds.
    pub mean_interarrival_ms: f64,
    /// Popularity–size anti-correlation in `[0, 1]`: 0 leaves sizes
    /// independent of popularity; 1 makes the most popular shared documents
    /// roughly 5× smaller than the least popular. Real traces show popular
    /// objects are small, which is why the paper's *maximum byte hit ratio*
    /// sits well below its *maximum hit ratio*.
    pub pop_size_bias: f64,
}

/// Serializable description of the document-size model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizeModelConfig {
    /// Median of the lognormal body, bytes.
    pub body_median: f64,
    /// Sigma of the lognormal body.
    pub body_sigma: f64,
    /// Scale of the Pareto tail, bytes.
    pub tail_scale: f64,
    /// Shape of the Pareto tail.
    pub tail_shape: f64,
    /// Probability a size is drawn from the tail.
    pub tail_prob: f64,
    /// Minimum size, bytes.
    pub min: u32,
    /// Maximum size, bytes.
    pub max: u32,
}

impl SizeModelConfig {
    /// Early-2000s Web default (median ~4 KB, heavy tail to 8 MB).
    pub fn web_default() -> Self {
        SizeModelConfig {
            body_median: 4096.0,
            body_sigma: 1.2,
            tail_scale: 8192.0,
            tail_shape: 1.2,
            tail_prob: 0.08,
            min: 64,
            max: 8 << 20,
        }
    }

    fn build(&self) -> DocSize {
        DocSize::new(
            crate::dist::LogNormal::from_median(self.body_median, self.body_sigma),
            crate::dist::Pareto::new(self.tail_scale, self.tail_shape),
            self.tail_prob,
            self.min,
            self.max,
        )
    }
}

impl SynthConfig {
    /// A small, fast configuration useful in unit tests and examples.
    pub fn small() -> Self {
        SynthConfig {
            name: "small".to_owned(),
            n_clients: 16,
            n_requests: 20_000,
            n_docs: 4_000,
            doc_alpha: 0.8,
            client_alpha: 0.5,
            p_private: 0.25,
            private_frac: 0.3,
            p_group: 0.15,
            group_count: 4,
            group_frac: 0.2,
            p_temporal: 0.35,
            stack_depth: 64,
            stack_alpha: 0.9,
            size_model: SizeModelConfig::web_default(),
            p_size_change: 0.005,
            mean_interarrival_ms: 150.0,
            pop_size_bias: 0.6,
        }
    }

    /// Validates invariants; returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_clients == 0 {
            return Err("n_clients must be > 0".into());
        }
        if self.n_docs < self.n_clients {
            return Err("n_docs must be >= n_clients (private pools)".into());
        }
        for (name, p) in [
            ("p_private", self.p_private),
            ("private_frac", self.private_frac),
            ("p_group", self.p_group),
            ("group_frac", self.group_frac),
            ("p_temporal", self.p_temporal),
            ("p_size_change", self.p_size_change),
            ("pop_size_bias", self.pop_size_bias),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be within [0, 1], got {p}"));
            }
        }
        if self.doc_alpha <= 0.0 || self.stack_alpha <= 0.0 {
            return Err("zipf exponents must be positive".into());
        }
        if self.private_frac + self.group_frac >= 1.0 {
            return Err("private_frac + group_frac must leave a shared pool".into());
        }
        if self.p_group > 0.0 && self.group_count == 0 {
            return Err("p_group > 0 needs group_count > 0".into());
        }
        if self.mean_interarrival_ms <= 0.0 {
            return Err("mean_interarrival_ms must be positive".into());
        }
        Ok(())
    }

    /// Returns a copy with the request count (and document universe) scaled
    /// by `frac`, preserving locality structure. Handy for fast tests.
    pub fn scaled(&self, frac: f64) -> SynthConfig {
        assert!(frac > 0.0 && frac <= 1.0);
        let mut c = self.clone();
        c.n_requests = ((self.n_requests as f64 * frac).round() as u64).max(1);
        c.n_docs = ((self.n_docs as f64 * frac).round() as u32).max(self.n_clients);
        c
    }

    /// Generates the trace deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        self.validate().expect("invalid SynthConfig");
        let mut rng = StdRng::seed_from_u64(seed);

        // --- Partition the document universe: shared | groups | private. ---
        let private_total = ((self.n_docs as f64) * self.private_frac) as u32;
        let group_total = ((self.n_docs as f64) * self.group_frac) as u32;
        let shared_count = (self.n_docs - private_total - group_total).max(1);
        let group_count = self.group_count.max(1);
        let group_pool = if self.p_group > 0.0 {
            group_total / group_count
        } else {
            0
        };
        let group_base = shared_count;
        let private_per_client = private_total / self.n_clients; // may be 0
        let private_base = shared_count + group_total;

        let shared_zipf = Zipf::new(shared_count as u64, self.doc_alpha);
        let group_zipf = if group_pool > 1 {
            Some(Zipf::new(group_pool as u64, self.doc_alpha.min(0.8)))
        } else {
            None
        };
        let private_zipf = if private_per_client > 1 {
            Some(Zipf::new(private_per_client as u64, self.doc_alpha))
        } else {
            None
        };
        let client_pick = WeightedIndex::zipf(self.n_clients as usize, self.client_alpha);
        let interarrival = Exponential::new(self.mean_interarrival_ms);
        let size_model = self.size_model.build();

        // Shuffle shared ranks onto document ids so popularity is not
        // correlated with id order (parsers of real logs have no such order).
        let mut shared_perm: Vec<u32> = (0..shared_count).collect();
        for i in (1..shared_perm.len()).rev() {
            let j = rng.gen_range(0..=i);
            shared_perm.swap(i, j);
        }
        // Inverse permutation: shared doc id -> popularity rank, used by the
        // popularity–size bias below.
        let mut shared_rank: Vec<u32> = vec![0; shared_count as usize];
        for (rank, &doc) in shared_perm.iter().enumerate() {
            shared_rank[doc as usize] = rank as u32;
        }

        // Lazily assigned document sizes.
        let mut sizes: Vec<u32> = vec![0; self.n_docs as usize];

        // Per-client recent-history stacks (front = most recent).
        let mut stacks: Vec<Vec<u32>> = vec![Vec::new(); self.n_clients as usize];
        let stack_zipf_cache: Vec<Option<Zipf>> = (0..=self.stack_depth)
            .map(|n| {
                if n >= 2 {
                    Some(Zipf::new(n as u64, self.stack_alpha))
                } else {
                    None
                }
            })
            .collect();

        let mut trace = Trace::new(self.name.clone());
        trace.n_clients = self.n_clients;
        trace.n_docs = self.n_docs;
        let mut clock_ms = 0f64;

        for _ in 0..self.n_requests {
            clock_ms += interarrival.sample(&mut rng);
            let client = client_pick.sample(&mut rng) as u32;
            let stack = &mut stacks[client as usize];

            let doc: u32 = if !stack.is_empty() && rng.gen::<f64>() < self.p_temporal {
                // Temporal re-reference from the client's own history.
                // Users revisit *pages* far more than large downloads, so
                // with probability `pop_size_bias` we draw two candidate
                // stack positions and keep the smaller document
                // (power-of-two-choices, biased small).
                let zipf = &stack_zipf_cache[stack.len().min(self.stack_depth)];
                let pick = |rng: &mut StdRng| match zipf {
                    Some(z) => (z.sample(rng) as usize).min(stack.len() - 1),
                    None => 0,
                };
                let first = stack[pick(&mut rng)];
                if rng.gen::<f64>() < self.pop_size_bias {
                    let second = stack[pick(&mut rng)];
                    if sizes[second as usize] != 0 && sizes[second as usize] < sizes[first as usize]
                    {
                        second
                    } else {
                        first
                    }
                } else {
                    first
                }
            } else if group_pool > 0 && rng.gen::<f64>() < self.p_group {
                // Community pool shared by this client's group.
                let group = client % group_count;
                let rank = match &group_zipf {
                    Some(z) => z.sample(&mut rng) as u32,
                    None => 0,
                };
                group_base + group * group_pool + rank
            } else if private_per_client > 0 && rng.gen::<f64>() < self.p_private {
                // Private pool of this client.
                let rank = match &private_zipf {
                    Some(z) => z.sample(&mut rng) as u32,
                    None => 0,
                };
                private_base + client * private_per_client + rank
            } else {
                // Shared pool.
                shared_perm[shared_zipf.sample(&mut rng) as usize]
            };

            // Size assignment / churn.
            let slot = &mut sizes[doc as usize];
            if *slot == 0 {
                let base = size_model.sample(&mut rng).max(1);
                // Popularity–size anti-correlation: popular shared docs are
                // scaled down by a power law of their rank fraction. At
                // bias = 1 the most popular documents end up ~2 orders of
                // magnitude smaller than the least popular, matching the
                // strong skew of real Web traces (tiny icons are hot,
                // huge one-shot downloads are cold).
                // Popularity rank fraction of this document within its own
                // pool. Group/private pools are sampled Zipf-by-offset, so
                // the offset *is* the rank there; the shared pool is
                // permuted and uses the inverse permutation.
                let rf = if doc < shared_count {
                    shared_rank[doc as usize] as f64 / shared_count as f64
                } else if doc < private_base {
                    ((doc - group_base) % group_pool.max(1)) as f64 / group_pool.max(1) as f64
                } else {
                    ((doc - private_base) % private_per_client.max(1)) as f64
                        / private_per_client.max(1) as f64
                };
                let mult = if self.pop_size_bias > 0.0 {
                    ((rf + 0.01) / 1.01).powf(2.2 * self.pop_size_bias)
                } else {
                    1.0
                };
                *slot = ((base as f64 * mult).round() as u32).max(1);
            } else if rng.gen::<f64>() < self.p_size_change {
                // Perturb the size by up to ±25%, staying >= 1 byte.
                let factor = 0.75 + rng.gen::<f64>() * 0.5;
                let next = ((*slot as f64) * factor).round().max(1.0) as u32;
                // Guarantee an observable change.
                *slot = if next == *slot { next + 1 } else { next };
            }
            let size = *slot;

            // Maintain the LRU history stack.
            if let Some(pos) = stack.iter().position(|&d| d == doc) {
                stack.remove(pos);
            }
            stack.insert(0, doc);
            stack.truncate(self.stack_depth);

            trace.requests.push(Request {
                time_ms: clock_ms as u64,
                client: ClientId(client),
                doc: DocId(doc),
                size,
            });
        }

        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::small();
        let a = cfg.generate(7);
        let b = cfg.generate(7);
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SynthConfig::small();
        let a = cfg.generate(1);
        let b = cfg.generate(2);
        assert_ne!(a.requests, b.requests);
    }

    #[test]
    fn respects_universe_bounds() {
        let cfg = SynthConfig::small();
        let t = cfg.generate(3);
        assert_eq!(t.len() as u64, cfg.n_requests);
        for r in t.iter() {
            assert!(r.client.0 < cfg.n_clients);
            assert!(r.doc.0 < cfg.n_docs);
            assert!(r.size >= 1);
        }
    }

    #[test]
    fn timestamps_are_monotone() {
        let t = SynthConfig::small().generate(4);
        for w in t.requests.windows(2) {
            assert!(w[0].time_ms <= w[1].time_ms);
        }
    }

    #[test]
    fn private_docs_stay_private() {
        let cfg = SynthConfig::small();
        let t = cfg.generate(5);
        let private_total = ((cfg.n_docs as f64) * cfg.private_frac) as u32;
        let group_total = ((cfg.n_docs as f64) * cfg.group_frac) as u32;
        let private_base = cfg.n_docs - private_total;
        let _ = group_total;
        let per_client = private_total / cfg.n_clients;
        let mut owner: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for r in t.iter() {
            if r.doc.0 >= private_base {
                let expected_owner = (r.doc.0 - private_base) / per_client;
                let prev = owner.insert(r.doc.0, r.client.0);
                assert_eq!(r.client.0, expected_owner);
                if let Some(p) = prev {
                    assert_eq!(p, r.client.0, "private doc requested by two clients");
                }
            }
        }
    }

    #[test]
    fn temporal_locality_raises_max_hit_ratio() {
        let mut hot = SynthConfig::small();
        hot.p_temporal = 0.6;
        let mut cold = SynthConfig::small();
        cold.p_temporal = 0.0;
        let s_hot = TraceStats::compute(&hot.generate(6));
        let s_cold = TraceStats::compute(&cold.generate(6));
        assert!(
            s_hot.max_hit_ratio > s_cold.max_hit_ratio + 2.0,
            "hot {} vs cold {}",
            s_hot.max_hit_ratio,
            s_cold.max_hit_ratio
        );
    }

    #[test]
    fn size_change_rate_tracks_config() {
        let mut cfg = SynthConfig::small();
        cfg.p_size_change = 0.05;
        let s = TraceStats::compute(&cfg.generate(8));
        let rate = s.size_changes as f64 / s.requests as f64;
        // Only repeat touches can mutate; expect the observed rate to be
        // positive and below the configured per-request rate.
        assert!(rate > 0.0 && rate < 0.05 * 1.5, "rate = {rate}");
    }

    #[test]
    fn scaled_preserves_client_count() {
        let cfg = SynthConfig::small().scaled(0.1);
        assert_eq!(cfg.n_clients, SynthConfig::small().n_clients);
        assert_eq!(cfg.n_requests, 2_000);
        let t = cfg.generate(1);
        assert_eq!(t.len(), 2_000);
    }

    #[test]
    fn pop_size_bias_lowers_byte_hit_ratio() {
        let mut biased = SynthConfig::small();
        biased.pop_size_bias = 0.9;
        let mut flat = SynthConfig::small();
        flat.pop_size_bias = 0.0;
        let sb = TraceStats::compute(&biased.generate(11));
        let sf = TraceStats::compute(&flat.generate(11));
        let gap_b = sb.max_hit_ratio - sb.max_byte_hit_ratio;
        let gap_f = sf.max_hit_ratio - sf.max_byte_hit_ratio;
        assert!(gap_b > gap_f, "biased gap {gap_b} <= flat gap {gap_f}");
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let mut cfg = SynthConfig::small();
        cfg.p_private = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_tiny_universe() {
        let mut cfg = SynthConfig::small();
        cfg.n_docs = cfg.n_clients - 1;
        assert!(cfg.validate().is_err());
    }
}
