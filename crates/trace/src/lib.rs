//! # baps-trace — Web request traces for the Browsers-Aware Proxy Server
//!
//! This crate provides everything the BAPS reproduction needs on the
//! workload side:
//!
//! * the trace data model ([`Trace`], [`Request`], [`ClientId`], [`DocId`]),
//! * trace characterisation matching the paper's Table 1 ([`TraceStats`]),
//! * a synthetic workload generator with calibrated per-paper-trace
//!   profiles ([`SynthConfig`], [`Profile`]) — the original NLANR/BU/CA*netII
//!   logs are no longer distributable, see [`profiles`] for the substitution
//!   rationale,
//! * parsers for the real log formats (Squid native logs via
//!   [`parse_squid`], BU condensed logs via [`parse_bu`]) so genuine archives
//!   can be replayed when available, and
//! * a compact binary trace format ([`write_trace`] / [`read_trace`]).
//!
//! All randomness flows through seeded [`rand::rngs::StdRng`] instances, so
//! every artefact in this workspace is reproducible bit-for-bit.
//!
//! [`rand::rngs::StdRng`]: https://docs.rs/rand/latest/rand/rngs/struct.StdRng.html

#![warn(missing_docs)]

pub mod binio;
pub mod bu;
pub mod dist;
pub mod export;
pub mod profiles;
pub mod scenarios;
pub mod sharing;
pub mod squid;
pub mod stats;
pub mod synth;
pub mod types;

pub use binio::{read_trace, write_trace};
pub use bu::{parse_bu, BuOptions};
pub use dist::{DocSize, Exponential, LogNormal, Pareto, WeightedIndex, Zipf};
pub use export::{write_squid_log, ExportNames};
pub use profiles::{PaperTargets, Profile};
pub use scenarios::{Scenario, ScenarioConfig, ScenarioOp, ScenarioSchedule};
pub use sharing::SharingStats;
pub use squid::{parse_squid, ParseError, SquidOptions};
pub use stats::TraceStats;
pub use synth::{SizeModelConfig, SynthConfig};
pub use types::{ClientId, DocId, Interner, Request, Trace};
