//! Parser for the Boston University client traces (BU-95 / condensed BU-98).
//!
//! The BU traces were collected by an instrumented Mosaic/Netscape on a
//! shared computing facility. The *condensed* per-session logs concatenate to
//! lines of the form
//!
//! ```text
//! machine_name timestamp user_id URL size_bytes retrieval_time_s
//! ```
//!
//! where `timestamp` is seconds since the epoch. We treat `machine_name` as
//! the client identity when `user_id` is `-` (BU-98 style) and the
//! `machine:user` pair otherwise (BU-95 style), matching how the paper counts
//! "clients" (one browser cache per user population seat).

use crate::squid::ParseError;
use crate::types::{ClientId, DocId, Interner, Request, Trace};
use std::io::BufRead;

/// Options controlling BU parsing.
#[derive(Debug, Clone)]
pub struct BuOptions {
    /// Skip records whose size is zero (aborted transfers).
    pub skip_empty: bool,
}

impl Default for BuOptions {
    fn default() -> Self {
        BuOptions { skip_empty: true }
    }
}

/// Parses a concatenated BU condensed log into a [`Trace`].
pub fn parse_bu<R: BufRead>(
    reader: R,
    name: &str,
    options: &BuOptions,
) -> Result<(Trace, Interner, Interner), ParseError> {
    let mut urls = Interner::new();
    let mut clients = Interner::new();
    let mut trace = Trace::new(name);
    let mut t0: Option<u64> = None;

    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| ParseError {
            line: lineno,
            message: format!("io error: {e}"),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_ascii_whitespace().collect();
        if fields.len() < 5 {
            return Err(ParseError {
                line: lineno,
                message: format!("expected >= 5 fields, got {}", fields.len()),
            });
        }
        let machine = fields[0];
        let ts: f64 = fields[1].parse().map_err(|e| ParseError {
            line: lineno,
            message: format!("bad timestamp: {e}"),
        })?;
        let user = fields[2];
        let url = fields[3];
        let size: u64 = fields[4].parse().map_err(|e| ParseError {
            line: lineno,
            message: format!("bad size: {e}"),
        })?;

        if options.skip_empty && size == 0 {
            continue;
        }

        let client_key = if user == "-" {
            machine.to_owned()
        } else {
            format!("{machine}:{user}")
        };
        let abs_ms = (ts * 1000.0) as u64;
        let base = *t0.get_or_insert(abs_ms);
        trace.push(Request {
            time_ms: abs_ms.saturating_sub(base),
            client: ClientId(clients.intern(&client_key)),
            doc: DocId(urls.intern(url)),
            size: size.min(u32::MAX as u64) as u32,
        });
    }
    trace.sort_by_time();
    Ok((trace, urls, clients))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "\
cs20 790000000.5 u17 http://cs.bu.edu/ 2048 0.41
cs20 790000001.0 u17 http://cs.bu.edu/pic.gif 512 0.10
cs21 790000002.0 - http://cs.bu.edu/ 2048 0.38
cs20 790000003.0 u18 http://cs.bu.edu/ 2048 0.22
cs22 790000004.0 u19 http://cs.bu.edu/none 0 0.0
";

    #[test]
    fn parses_clients_and_urls() {
        let (trace, urls, clients) =
            parse_bu(Cursor::new(SAMPLE), "bu", &BuOptions::default()).unwrap();
        assert_eq!(trace.len(), 4); // zero-size row dropped
                                    // cs20:u17, cs21, cs20:u18 are distinct clients.
        assert_eq!(clients.len(), 3);
        assert_eq!(urls.len(), 2);
        assert_eq!(trace.requests[0].time_ms, 0);
        assert_eq!(trace.requests[1].time_ms, 500);
    }

    #[test]
    fn machine_user_pairs_are_distinct_clients() {
        let (trace, ..) = parse_bu(Cursor::new(SAMPLE), "bu", &BuOptions::default()).unwrap();
        assert_ne!(trace.requests[0].client, trace.requests[3].client);
    }

    #[test]
    fn keep_empty_when_asked() {
        let opts = BuOptions { skip_empty: false };
        let (trace, ..) = parse_bu(Cursor::new(SAMPLE), "bu", &opts).unwrap();
        assert_eq!(trace.len(), 5);
    }

    #[test]
    fn short_line_is_error() {
        let e = parse_bu(Cursor::new("cs20 123.0 u1\n"), "bu", &BuOptions::default()).unwrap_err();
        assert!(e.message.contains("fields"));
    }
}
