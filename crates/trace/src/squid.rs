//! Parser for Squid "native" access logs (the NLANR and CA*netII format).
//!
//! NLANR sanitised cache logs are lines of the form
//!
//! ```text
//! timestamp elapsed client code/status bytes method URL rfc931 hierarchy/host type
//! 963526407.852  345 137.78.1.2 TCP_MISS/200 4120 GET http://host/p - DIRECT/... text/html
//! ```
//!
//! `timestamp` is seconds (with millisecond fraction) since the epoch,
//! `client` is the (randomised but per-day consistent) client address, and
//! `bytes` is the reply size. We keep successful `GET` replies with a
//! positive size, intern clients and URLs to dense ids, and rebase time to
//! the first request.

use crate::types::{ClientId, DocId, Interner, Request, Trace};
use std::fmt;
use std::io::BufRead;

/// A parse failure, with the 1-based line number where it occurred.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Options controlling which records are admitted.
#[derive(Debug, Clone)]
pub struct SquidOptions {
    /// Keep only `GET` requests (the paper simulates document fetches).
    pub only_get: bool,
    /// Keep only replies with HTTP status 200 or 304→200-style cache codes.
    pub only_success: bool,
    /// Skip records whose size is zero.
    pub skip_empty: bool,
}

impl Default for SquidOptions {
    fn default() -> Self {
        SquidOptions {
            only_get: true,
            only_success: true,
            skip_empty: true,
        }
    }
}

/// Parses a Squid native access log into a [`Trace`].
///
/// Malformed lines abort with a [`ParseError`]; lines filtered out by
/// `options` are silently skipped. Returns the trace together with the URL
/// and client interners so callers can map ids back to strings.
pub fn parse_squid<R: BufRead>(
    reader: R,
    name: &str,
    options: &SquidOptions,
) -> Result<(Trace, Interner, Interner), ParseError> {
    let mut urls = Interner::new();
    let mut clients = Interner::new();
    let mut trace = Trace::new(name);
    let mut t0: Option<u64> = None;

    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| ParseError {
            line: lineno,
            message: format!("io error: {e}"),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_ascii_whitespace();
        let err = |message: String| ParseError {
            line: lineno,
            message,
        };

        let ts: f64 = fields
            .next()
            .ok_or_else(|| err("missing timestamp".into()))?
            .parse()
            .map_err(|e| err(format!("bad timestamp: {e}")))?;
        let _elapsed = fields.next().ok_or_else(|| err("missing elapsed".into()))?;
        let client = fields.next().ok_or_else(|| err("missing client".into()))?;
        let code = fields
            .next()
            .ok_or_else(|| err("missing result code".into()))?;
        let bytes: u64 = fields
            .next()
            .ok_or_else(|| err("missing size".into()))?
            .parse()
            .map_err(|e| err(format!("bad size: {e}")))?;
        let method = fields.next().ok_or_else(|| err("missing method".into()))?;
        let url = fields.next().ok_or_else(|| err("missing URL".into()))?;

        if options.only_get && method != "GET" {
            continue;
        }
        if options.only_success && !code.ends_with("/200") && !code.ends_with("/304") {
            continue;
        }
        if options.skip_empty && bytes == 0 {
            continue;
        }

        let abs_ms = (ts * 1000.0) as u64;
        let base = *t0.get_or_insert(abs_ms);
        let time_ms = abs_ms.saturating_sub(base);
        let c = ClientId(clients.intern(client));
        let d = DocId(urls.intern(url));
        trace.push(Request {
            time_ms,
            client: c,
            doc: d,
            size: bytes.min(u32::MAX as u64) as u32,
        });
    }
    trace.sort_by_time();
    Ok((trace, urls, clients))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "\
963526407.852 345 10.0.0.1 TCP_MISS/200 4120 GET http://a.example/x - DIRECT/1.2.3.4 text/html
963526408.100 12 10.0.0.2 TCP_HIT/200 900 GET http://a.example/y - NONE/- image/gif
963526408.200 88 10.0.0.1 TCP_MISS/404 300 GET http://a.example/z - DIRECT/1.2.3.4 text/html
963526408.300 15 10.0.0.1 TCP_MISS/200 777 POST http://a.example/post - DIRECT/1.2.3.4 text/html
963526409.000 20 10.0.0.2 TCP_MISS/200 0 GET http://a.example/empty - DIRECT/1.2.3.4 text/html
963526410.000 20 10.0.0.2 TCP_REFRESH_HIT/304 512 GET http://a.example/x - NONE/- text/html
";

    #[test]
    fn parses_and_filters() {
        let (trace, urls, clients) =
            parse_squid(Cursor::new(SAMPLE), "t", &SquidOptions::default()).unwrap();
        // Rows kept: lines 1, 2, 6 (404, POST and zero-size dropped).
        assert_eq!(trace.len(), 3);
        assert_eq!(clients.len(), 2);
        assert_eq!(urls.len(), 2); // /x appears twice
        assert_eq!(trace.requests[0].time_ms, 0); // rebased
        assert_eq!(trace.requests[1].time_ms, 248);
        assert_eq!(trace.requests[0].size, 4120);
    }

    #[test]
    fn keep_everything_options() {
        let opts = SquidOptions {
            only_get: false,
            only_success: false,
            skip_empty: false,
        };
        let (trace, ..) = parse_squid(Cursor::new(SAMPLE), "t", &opts).unwrap();
        assert_eq!(trace.len(), 6);
    }

    #[test]
    fn blank_and_comment_lines_skipped() {
        let s = "# header\n\n963526407.852 1 c TCP_MISS/200 10 GET http://u - D/- t\n";
        let (trace, ..) = parse_squid(Cursor::new(s), "t", &SquidOptions::default()).unwrap();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn bad_timestamp_is_error() {
        let s = "notatime 1 c TCP_MISS/200 10 GET http://u - D/- t\n";
        let e = parse_squid(Cursor::new(s), "t", &SquidOptions::default()).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("timestamp"));
    }

    #[test]
    fn truncated_line_is_error() {
        let s = "963526407.852 345 10.0.0.1\n";
        let e = parse_squid(Cursor::new(s), "t", &SquidOptions::default()).unwrap_err();
        assert!(e.message.contains("missing"));
    }

    #[test]
    fn same_url_same_doc_id() {
        let (trace, ..) = parse_squid(Cursor::new(SAMPLE), "t", &SquidOptions::default()).unwrap();
        assert_eq!(trace.requests[0].doc, trace.requests[2].doc);
    }
}
