//! Calibrated workload profiles standing in for the paper's five traces.
//!
//! Table 1 of the paper characterises five access logs: two one-day NLANR
//! proxy logs (`uc`, `bo1`), the Boston University 1995 and 1998 client
//! traces, and a two-day CA*netII parent-cache log. The original logs are no
//! longer obtainable, so each profile here pairs
//!
//! * the **paper targets** we could read off Table 1 (several numerals are
//!   garbled in the surviving text; those are documented estimates chosen
//!   from the companion literature and marked `approx` below), with
//! * a **calibrated [`SynthConfig`]** whose generated trace reproduces the
//!   target *shape*: request volume, client population, infinite-cache
//!   footprint, and the maximum (infinite-cache) hit / byte-hit ratios that
//!   upper-bound every simulated policy.
//!
//! The experiment binaries print paper targets next to measured values so
//! calibration drift is always visible.

use crate::synth::{SizeModelConfig, SynthConfig};
use crate::types::Trace;
use serde::{Deserialize, Serialize};

/// The five paper traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Profile {
    /// NLANR `uc` proxy, one day (2000-07-14). Many clients, low locality.
    NlanrUc,
    /// NLANR `bo1` proxy, one day (2000-08-29).
    NlanrBo1,
    /// Boston University client trace, Jan–Feb 1995. Strong locality.
    Bu95,
    /// Boston University client trace, Apr–May 1998. Weaker locality
    /// (documented shift in access patterns, Barford et al. 1999).
    Bu98,
    /// CA*netII parent cache, two days, only 3 child clients (the paper's
    /// limit case where browsers-awareness barely helps).
    CaNetII,
}

impl Profile {
    /// All five profiles in the paper's Table 1 order.
    pub fn all() -> [Profile; 5] {
        [
            Profile::NlanrUc,
            Profile::NlanrBo1,
            Profile::Bu95,
            Profile::Bu98,
            Profile::CaNetII,
        ]
    }

    /// The trace name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Profile::NlanrUc => "NLANR-uc",
            Profile::NlanrBo1 => "NLANR-bo1",
            Profile::Bu95 => "BU-95",
            Profile::Bu98 => "BU-98",
            Profile::CaNetII => "CA*netII",
        }
    }

    /// The collection period as printed in the paper.
    pub fn period(self) -> &'static str {
        match self {
            Profile::NlanrUc => "7/14/2000",
            Profile::NlanrBo1 => "8/29/2000",
            Profile::Bu95 => "Jan.95-Feb.95",
            Profile::Bu98 => "Apr.98-May.98",
            Profile::CaNetII => "9/19-9/20/1999",
        }
    }

    /// Paper Table 1 targets (garbled cells reconstructed; see module docs).
    pub fn targets(self) -> PaperTargets {
        match self {
            Profile::NlanrUc => PaperTargets {
                requests: 520_000,
                total_gb: 4.6,
                infinite_gb: 3.9,
                clients: 220,
                max_hit_ratio: 33.0,      // approx: garbled in text
                max_byte_hit_ratio: 14.8, // legible
                approx: true,
            },
            Profile::NlanrBo1 => PaperTargets {
                requests: 360_000,
                total_gb: 3.2,
                infinite_gb: 2.3,
                clients: 180,
                max_hit_ratio: 45.0,       // approx
                max_byte_hit_ratio: 28.79, // legible
                approx: true,
            },
            Profile::Bu95 => PaperTargets {
                requests: 575_000,
                total_gb: 2.6,
                infinite_gb: 1.6,
                clients: 591,
                max_hit_ratio: 60.0,       // approx; BU-95 has strong locality
                max_byte_hit_ratio: 31.37, // legible
                approx: true,
            },
            Profile::Bu98 => PaperTargets {
                requests: 290_000,
                total_gb: 1.9,
                infinite_gb: 1.3,
                clients: 306,
                max_hit_ratio: 45.0,       // approx
                max_byte_hit_ratio: 30.94, // legible as "3?.94"
                approx: true,
            },
            Profile::CaNetII => PaperTargets {
                requests: 240_000,
                total_gb: 2.4,
                infinite_gb: 1.7,
                clients: 3,
                max_hit_ratio: 42.0,       // approx
                max_byte_hit_ratio: 29.84, // legible
                approx: true,
            },
        }
    }

    /// The `k` multiplier used for "average" browser-cache sizing
    /// (`k × proxy_size / n_clients`, paper §4: k ranges 2..10).
    pub fn avg_browser_k(self) -> f64 {
        match self {
            Profile::NlanrUc => 4.0,
            Profile::NlanrBo1 => 4.0,
            Profile::Bu95 => 6.0,
            Profile::Bu98 => 6.0,
            Profile::CaNetII => 2.0,
        }
    }

    /// The calibrated generator configuration for this profile.
    ///
    /// Parameters were fitted with `baps-bench --bin calibrate`, which
    /// binary-searches the document universe, temporal-locality probability
    /// and popularity-size bias until the generated trace matches the
    /// Table 1 anchors (max hit ratio, max byte hit ratio, total GB).
    pub fn config(self) -> SynthConfig {
        let t = self.targets();
        let size = |median: f64, tail: f64| SizeModelConfig {
            body_median: median,
            tail_scale: tail,
            ..SizeModelConfig::web_default()
        };
        let heavy = |median: f64, tail: f64| SizeModelConfig {
            body_median: median,
            tail_scale: tail,
            tail_prob: 0.22,
            tail_shape: 1.08,
            ..SizeModelConfig::web_default()
        };
        match self {
            Profile::NlanrUc => SynthConfig {
                name: self.name().to_owned(),
                n_clients: t.clients as u32,
                n_requests: t.requests,
                n_docs: 1_560_000,
                doc_alpha: 0.45,
                client_alpha: 0.9,
                p_private: 0.10,
                private_frac: 0.25,
                p_group: 0.22,
                group_count: 16,
                group_frac: 0.25,
                p_temporal: 0.134,
                stack_depth: 512,
                stack_alpha: 0.7,
                size_model: heavy(11_759.0, 23_518.0),
                p_size_change: 0.004,
                // One day / 520k requests: 166 ms mean gap.
                mean_interarrival_ms: 166.0,
                pop_size_bias: 0.972,
            },
            Profile::NlanrBo1 => SynthConfig {
                name: self.name().to_owned(),
                n_clients: t.clients as u32,
                n_requests: t.requests,
                n_docs: 1_080_000,
                doc_alpha: 0.78,
                client_alpha: 0.55,
                p_private: 0.28,
                private_frac: 0.35,
                p_group: 0.22,
                group_count: 14,
                group_frac: 0.25,
                p_temporal: 0.07,
                stack_depth: 128,
                stack_alpha: 0.9,
                size_model: size(7_879.0, 15_759.0),
                p_size_change: 0.004,
                mean_interarrival_ms: 240.0,
                pop_size_bias: 0.183,
            },
            Profile::Bu95 => SynthConfig {
                name: self.name().to_owned(),
                n_clients: t.clients as u32,
                n_requests: t.requests,
                n_docs: 1_130_000,
                doc_alpha: 0.95,
                client_alpha: 0.6,
                p_private: 0.12,
                private_frac: 0.25,
                p_group: 0.30,
                group_count: 40,
                group_frac: 0.30,
                p_temporal: 0.001,
                stack_depth: 160,
                stack_alpha: 0.85,
                size_model: size(7_458.0, 14_916.0),
                p_size_change: 0.003,
                // Two months / 575k requests: 9 s mean gap.
                mean_interarrival_ms: 9_000.0,
                pop_size_bias: 0.317,
            },
            Profile::Bu98 => SynthConfig {
                name: self.name().to_owned(),
                n_clients: t.clients as u32,
                n_requests: t.requests,
                n_docs: 870_000,
                doc_alpha: 0.75,
                client_alpha: 0.6,
                p_private: 0.30,
                private_frac: 0.35,
                p_group: 0.25,
                group_count: 24,
                group_frac: 0.28,
                p_temporal: 0.123,
                stack_depth: 128,
                stack_alpha: 0.85,
                size_model: size(5_555.0, 11_110.0),
                p_size_change: 0.003,
                mean_interarrival_ms: 18_000.0,
                pop_size_bias: 0.183,
            },
            Profile::CaNetII => SynthConfig {
                name: self.name().to_owned(),
                n_clients: t.clients as u32,
                n_requests: t.requests,
                n_docs: 720_000,
                doc_alpha: 0.75,
                client_alpha: 0.3,
                p_private: 0.20,
                private_frac: 0.15,
                p_group: 0.05,
                group_count: 3,
                group_frac: 0.10,
                p_temporal: 0.048,
                stack_depth: 256,
                stack_alpha: 0.85,
                size_model: size(7_272.0, 14_544.0),
                p_size_change: 0.004,
                mean_interarrival_ms: 720.0,
                pop_size_bias: 0.140,
            },
        }
    }

    /// Generates the full-size calibrated trace with the canonical seed used
    /// by every experiment binary.
    pub fn generate(self) -> Trace {
        self.config().generate(self.canonical_seed())
    }

    /// Generates a `frac`-scaled trace (same locality structure, fewer
    /// requests); useful for tests.
    pub fn generate_scaled(self, frac: f64) -> Trace {
        self.config().scaled(frac).generate(self.canonical_seed())
    }

    /// The fixed seed used for reproducible experiment runs.
    pub fn canonical_seed(self) -> u64 {
        match self {
            Profile::NlanrUc => 0x0714_2000,
            Profile::NlanrBo1 => 0x0829_2000,
            Profile::Bu95 => 0x1995,
            Profile::Bu98 => 0x1998,
            Profile::CaNetII => 0x0919_1999,
        }
    }
}

/// Targets read (or reconstructed) from the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperTargets {
    /// Number of requests.
    pub requests: u64,
    /// Total trace volume, GB.
    pub total_gb: f64,
    /// Infinite cache size, GB.
    pub infinite_gb: f64,
    /// Number of clients.
    pub clients: u64,
    /// Maximum (infinite-cache) hit ratio, percent.
    pub max_hit_ratio: f64,
    /// Maximum (infinite-cache) byte hit ratio, percent.
    pub max_byte_hit_ratio: f64,
    /// Whether any cell was reconstructed from garbled text.
    pub approx: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn all_profiles_validate() {
        for p in Profile::all() {
            p.config().validate().unwrap();
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Profile::NlanrUc.name(), "NLANR-uc");
        assert_eq!(Profile::CaNetII.name(), "CA*netII");
    }

    #[test]
    fn canetii_has_three_clients() {
        assert_eq!(Profile::CaNetII.config().n_clients, 3);
    }

    #[test]
    fn scaled_trace_statistics_are_sane() {
        // A 4% scale keeps this test fast while still exercising shape.
        let t = Profile::NlanrUc.generate_scaled(0.04);
        let s = TraceStats::compute(&t);
        assert_eq!(s.requests, t.len() as u64);
        assert!(s.max_hit_ratio > 5.0 && s.max_hit_ratio < 80.0);
        assert!(s.max_byte_hit_ratio < s.max_hit_ratio);
        assert!(s.clients > 50);
    }

    #[test]
    fn bu95_has_more_locality_than_nlanr_uc() {
        let uc = TraceStats::compute(&Profile::NlanrUc.generate_scaled(0.04));
        let bu = TraceStats::compute(&Profile::Bu95.generate_scaled(0.04));
        assert!(
            bu.max_hit_ratio > uc.max_hit_ratio,
            "bu {} vs uc {}",
            bu.max_hit_ratio,
            uc.max_hit_ratio
        );
    }

    #[test]
    fn seeds_are_distinct() {
        let seeds: Vec<u64> = Profile::all().iter().map(|p| p.canonical_seed()).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(seeds.len(), dedup.len());
    }
}
