//! Prometheus text exposition: rendering (for the `METRICS BAPS/1.0`
//! verb) and a small parser (for the CI metrics smoke test).
//!
//! The renderer emits the classic text format: `# HELP` / `# TYPE`
//! comments, then `name{label="value",…} value` samples. Histograms
//! follow the cumulative-bucket convention — `name_bucket{le="edge"}`
//! counts observations ≤ edge, ending with `le="+Inf"`, plus `name_sum`
//! and `name_count`. Empty buckets are skipped (the cumulative counts
//! stay correct; scrapers interpolate between the edges that do appear),
//! which keeps a 164-bucket histogram to a handful of lines in practice.
//!
//! The in-tree serde shim has no derive support, so this is hand-rolled —
//! which is also what keeps it dependency-free.

use crate::hist::LatencyHistogram;
use std::fmt::Write as _;

/// Builder for a Prometheus text exposition.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

/// Formats a float the exposition way (`+Inf` for infinity, shortest
/// round-trip digits otherwise).
fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Emits the `# HELP` / `# TYPE` preamble for a metric family. Call
    /// once per family, before its samples.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emits one sample line.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.sample_suffixed(name, labels, value, "");
    }

    /// One sample line with a raw trailer (the exemplar suffix) between
    /// the value and the newline.
    fn sample_suffixed(&mut self, name: &str, labels: &[(&str, &str)], value: f64, suffix: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
                let _ = write!(self.out, "{k}=\"{escaped}\"");
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {}{suffix}", fmt_value(value));
    }

    /// Header plus a single unlabelled counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, "counter", help);
        self.sample(name, &[], value as f64);
    }

    /// Header plus a single unlabelled gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, "gauge", help);
        self.sample(name, &[], value);
    }

    /// Emits one histogram series (cumulative `_bucket` lines, `_sum`,
    /// `_count`) under `name` with the given extra labels. Emit the
    /// family [`header`](PromText::header) (kind `histogram`) once before
    /// the first series of the family.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &LatencyHistogram) {
        self.histogram_with_exemplars(name, labels, h, &[]);
    }

    /// [`histogram`](PromText::histogram) plus OpenMetrics-style exemplar
    /// suffixes: `exemplars[i]` is the retained trace id for raw bucket
    /// `i` (0 = none — see `AtomicHistogram::exemplar_traces`), rendered
    /// on that bucket's line as
    /// `… count # {trace_id="<16-hex>"} <bucket edge>` so a tail spike in
    /// a scrape links to a `TRACE`-fetchable span tree.
    pub fn histogram_with_exemplars(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        h: &LatencyHistogram,
        exemplars: &[u64],
    ) {
        let bucket = format!("{name}_bucket");
        let mut cumulative = 0u64;
        let counts = h.bucket_counts();
        let mut overflow_exemplar = String::new();
        for (idx, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            cumulative += count;
            let trace = exemplars.get(idx).copied().unwrap_or(0);
            let upper = crate::hist::bucket_upper_ms(idx);
            if upper.is_infinite() {
                // The overflow bucket is covered by the trailing +Inf
                // line; carry its exemplar there (the exemplar value must
                // stay finite, so it reports the bucket's lower edge).
                if trace != 0 {
                    overflow_exemplar = exemplar_suffix(trace, crate::hist::MAX_FINITE_EDGE_MS);
                }
                continue;
            }
            let le = fmt_value(upper);
            let mut with_le = labels.to_vec();
            with_le.push(("le", le.as_str()));
            self.sample_suffixed(
                &bucket,
                &with_le,
                cumulative as f64,
                &if trace != 0 {
                    exemplar_suffix(trace, upper)
                } else {
                    String::new()
                },
            );
        }
        let mut with_le = labels.to_vec();
        with_le.push(("le", "+Inf"));
        self.sample_suffixed(&bucket, &with_le, h.count() as f64, &overflow_exemplar);
        self.sample(&format!("{name}_sum"), labels, h.sum_ms());
        self.sample(&format!("{name}_count"), labels, h.count() as f64);
    }

    /// The rendered exposition.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Renders the OpenMetrics exemplar trailer for a bucket line.
fn exemplar_suffix(trace: u64, value_ms: f64) -> String {
    format!(" # {{trace_id=\"{trace:016x}\"}} {}", fmt_value(value_ms))
}

/// An OpenMetrics exemplar attached to a `_bucket` sample: the labels
/// (for this exposition always a single `trace_id`) and the exemplar's
/// observed value.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// Exemplar label pairs in order of appearance.
    pub labels: Vec<(String, String)>,
    /// The exemplar value (an observation within the bucket).
    pub value: f64,
}

impl Exemplar {
    /// The `trace_id` label, if present.
    pub fn trace_id(&self) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == "trace_id")
            .map(|(_, v)| v.as_str())
    }
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (`baps_requests_total`, `…_bucket`, …).
    pub name: String,
    /// Label pairs in order of appearance.
    pub labels: Vec<(String, String)>,
    /// The sample value (`+Inf`-aware).
    pub value: f64,
    /// The OpenMetrics exemplar trailer, when the line carried one.
    pub exemplar: Option<Exemplar>,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses a text exposition into its samples, validating line syntax.
/// Comment lines must be well-formed `# HELP` / `# TYPE` lines; sample
/// lines must be `name[{labels}] value`.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |what: &str| Err(format!("line {}: {what}: {raw:?}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            match words.next() {
                Some("HELP") | Some("TYPE") if words.next().is_some() => continue,
                _ => return err("malformed comment"),
            }
        }
        // An OpenMetrics exemplar trailer (` # {labels} value`) hangs off
        // the sample value; split it on the first `#` outside quotes so a
        // `#` inside a label value cannot truncate the line.
        let (line, exemplar_text) = match hash_outside_quotes(line) {
            Some(pos) => (line[..pos].trim_end(), Some(line[pos + 1..].trim_start())),
            None => (line, None),
        };
        let exemplar = match exemplar_text {
            None => None,
            Some(text) => match parse_exemplar(text) {
                Ok(e) => Some(e),
                Err(what) => return err(&what),
            },
        };
        let (series, value) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => return err("no value"),
        };
        let value = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => match v.parse() {
                Ok(v) => v,
                Err(_) => return err("bad value"),
            },
        };
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), Vec::new()),
            Some((name, rest)) => {
                let Some(body) = rest.strip_suffix('}') else {
                    return err("unterminated label set");
                };
                let mut labels = Vec::new();
                for pair in split_label_pairs(body) {
                    let Some((k, v)) = pair.split_once('=') else {
                        return err("label without '='");
                    };
                    let v = v.trim();
                    if v.len() < 2 || !v.starts_with('"') || !v.ends_with('"') {
                        return err("unquoted label value");
                    }
                    let unescaped = v[1..v.len() - 1]
                        .replace("\\\"", "\"")
                        .replace("\\\\", "\\");
                    labels.push((k.trim().to_string(), unescaped));
                }
                (name.to_string(), labels)
            }
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return err("bad metric name");
        }
        samples.push(Sample {
            name,
            labels,
            value,
            exemplar,
        });
    }
    Ok(samples)
}

/// Position of the first `#` outside quoted label values, if any (the
/// exemplar separator — comment lines never reach this).
fn hash_outside_quotes(line: &str) -> Option<usize> {
    let (mut in_quotes, mut escaped) = (false, false);
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

/// Parses the exemplar trailer body: `{labels} value`.
fn parse_exemplar(text: &str) -> Result<Exemplar, String> {
    let Some(rest) = text.strip_prefix('{') else {
        return Err(format!("exemplar without label set: {text:?}"));
    };
    let Some((body, value)) = rest.split_once('}') else {
        return Err(format!("unterminated exemplar label set: {text:?}"));
    };
    let mut labels = Vec::new();
    for pair in split_label_pairs(body) {
        let Some((k, v)) = pair.split_once('=') else {
            return Err(format!("exemplar label without '=': {pair:?}"));
        };
        let v = v.trim();
        if v.len() < 2 || !v.starts_with('"') || !v.ends_with('"') {
            return Err(format!("unquoted exemplar label value: {pair:?}"));
        }
        labels.push((
            k.trim().to_string(),
            v[1..v.len() - 1]
                .replace("\\\"", "\"")
                .replace("\\\\", "\\"),
        ));
    }
    let value = value.trim();
    let value = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v
            .parse()
            .map_err(|_| format!("bad exemplar value: {value:?}"))?,
    };
    Ok(Exemplar { labels, value })
}

/// Splits `k1="v1",k2="v2"` on commas outside quotes.
fn split_label_pairs(body: &str) -> Vec<&str> {
    let mut pairs = Vec::new();
    let (mut start, mut in_quotes, mut escaped) = (0, false, false);
    for (i, c) in body.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                pairs.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < body.len() {
        pairs.push(&body[start..]);
    }
    pairs
}

/// Validates exposition-format conformance beyond what [`parse`] checks:
///
/// * every sample's metric family has both a `# HELP` and a `# TYPE`
///   comment, appearing **before** the family's first sample (histogram
///   `_bucket`/`_sum`/`_count` samples belong to their base family);
/// * metric and label names match `[a-zA-Z_:][a-zA-Z0-9_:]*` /
///   `[a-zA-Z_][a-zA-Z0-9_]*` (no leading digits);
/// * `# TYPE` kinds are valid and declared at most once per family;
/// * per histogram series (grouped by its non-`le` labels): `le` edges
///   strictly increase, cumulative counts never drop, the last bucket is
///   `le="+Inf"`, and its value equals the series' `_count` sample;
/// * counter samples are finite and non-negative.
pub fn check_conformance(text: &str) -> Result<(), String> {
    use std::collections::{HashMap, HashSet};

    fn name_ok(name: &str, allow_colon: bool) -> bool {
        let mut chars = name.chars();
        let first_ok = chars
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || (allow_colon && c == ':'));
        first_ok
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || (allow_colon && c == ':'))
    }

    let mut helped: HashSet<String> = HashSet::new();
    let mut typed: HashMap<String, String> = HashMap::new();
    // Buckets per histogram series, keyed by family + sorted non-le
    // labels, in order of appearance.
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let mut series_index: HashMap<String, usize> = HashMap::new();
    let mut counts: HashMap<String, f64> = HashMap::new();

    // The base family of a sample name, honouring declared histograms:
    // `x_bucket`/`x_sum`/`x_count` fold into `x` iff `x` is TYPE histogram.
    let family_of = |name: &str, typed: &HashMap<String, String>| -> String {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = name.strip_suffix(suffix) {
                if typed.get(base).map(String::as_str) == Some("histogram") {
                    return base.to_string();
                }
            }
        }
        name.to_string()
    };
    let series_key = |family: &str, labels: &[(String, String)]| -> String {
        let mut rest: Vec<String> = labels
            .iter()
            .filter(|(k, _)| k != "le")
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect();
        rest.sort();
        format!("{family}{{{}}}", rest.join(","))
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |what: String| Err(format!("line {}: {what}: {raw:?}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            match (words.next(), words.next()) {
                (Some("HELP"), Some(name)) => {
                    if !name_ok(name, true) {
                        return err(format!("bad family name in HELP: {name}"));
                    }
                    helped.insert(name.to_string());
                }
                (Some("TYPE"), Some(name)) => {
                    let kind = words.next().unwrap_or_default();
                    if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                        return err(format!("bad TYPE kind {kind:?} for {name}"));
                    }
                    if typed.insert(name.to_string(), kind.to_string()).is_some() {
                        return err(format!("duplicate TYPE for {name}"));
                    }
                }
                _ => return err("malformed comment".to_string()),
            }
            continue;
        }
        // One sample line: reuse the syntax parser.
        let sample = parse(line)?.pop().expect("one line parses to one sample");
        if !name_ok(&sample.name, true) {
            return err(format!("bad metric name {:?}", sample.name));
        }
        for (k, _) in &sample.labels {
            if !name_ok(k, false) {
                return err(format!("bad label name {k:?}"));
            }
        }
        let family = family_of(&sample.name, &typed);
        if !helped.contains(&family) {
            return err(format!("sample before (or without) # HELP {family}"));
        }
        let Some(kind) = typed.get(&family) else {
            return err(format!("sample before (or without) # TYPE {family}"));
        };
        if kind == "counter" && !(sample.value.is_finite() && sample.value >= 0.0) {
            return err(format!("counter {family} with value {}", sample.value));
        }
        if let Some(exemplar) = &sample.exemplar {
            // Exemplars are only defined for histogram buckets, the
            // labels must be well-formed, and this exposition's exemplars
            // carry a 16-hex `trace_id` resolvable via `TRACE`.
            if kind != "histogram" || !sample.name.ends_with("_bucket") {
                return err(format!("exemplar on non-bucket sample {}", sample.name));
            }
            for (k, _) in &exemplar.labels {
                if !name_ok(k, false) {
                    return err(format!("bad exemplar label name {k:?}"));
                }
            }
            let Some(trace) = exemplar.trace_id() else {
                return err("exemplar without a trace_id label".to_string());
            };
            if trace.len() != 16 || !trace.chars().all(|c| c.is_ascii_hexdigit()) {
                return err(format!("malformed exemplar trace_id {trace:?}"));
            }
            if !exemplar.value.is_finite() || exemplar.value < 0.0 {
                return err(format!("bad exemplar value {}", exemplar.value));
            }
        }
        if kind == "histogram" {
            let key = series_key(&family, &sample.labels);
            if sample.name.ends_with("_bucket") {
                let le = match sample.label("le") {
                    Some("+Inf") => f64::INFINITY,
                    Some(v) => v
                        .parse()
                        .map_err(|e| format!("line {}: bad le {v:?}: {e}", lineno + 1))?,
                    None => return err("histogram bucket without le".to_string()),
                };
                if let Some(exemplar) = &sample.exemplar {
                    if exemplar.value > le {
                        return err(format!(
                            "exemplar value {} above its bucket's le {le}",
                            exemplar.value
                        ));
                    }
                }
                let idx = *series_index.entry(key).or_insert_with(|| {
                    series.push((family.clone(), Vec::new()));
                    series.len() - 1
                });
                series[idx].1.push((le, sample.value));
            } else if sample.name.ends_with("_count") {
                counts.insert(key, sample.value);
            }
        }
    }

    for (key, idx) in &series_index {
        let (family, buckets) = &series[*idx];
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_count = f64::NEG_INFINITY;
        for &(le, count) in buckets {
            if le <= prev_le {
                return Err(format!("{key}: le edges not strictly increasing"));
            }
            if count < prev_count {
                return Err(format!("{key}: cumulative bucket counts drop"));
            }
            (prev_le, prev_count) = (le, count);
        }
        let Some(&(last_le, last_count)) = buckets.last() else {
            return Err(format!("{key}: histogram series with no buckets"));
        };
        if !last_le.is_infinite() {
            return Err(format!("{key}: last bucket is not le=\"+Inf\""));
        }
        let Some(&total) = counts.get(key) else {
            return Err(format!("{key}: histogram series without a _count"));
        };
        if last_count != total {
            return Err(format!(
                "{key}: +Inf bucket {last_count} != {family}_count {total}"
            ));
        }
    }
    Ok(())
}

/// The value of the first sample matching `name` and all of `labels`
/// (extra labels on the sample are allowed).
pub fn find(samples: &[Sample], name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.name == name && labels.iter().all(|&(k, v)| s.label(k) == Some(v)))
        .map(|s| s.value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_roundtrip() {
        let mut h = LatencyHistogram::new();
        for ms in [0.5, 0.5, 2.0, 40.0] {
            h.record(ms);
        }
        let mut text = PromText::new();
        text.counter("baps_requests_total", "GET requests handled.", 4);
        text.gauge("baps_cache_bytes", "Bytes cached.", 1234.0);
        text.header("baps_request_latency_ms", "histogram", "Serve latency.");
        text.histogram("baps_request_latency_ms", &[("tier", "proxy")], &h);
        let rendered = text.finish();

        let samples = parse(&rendered).expect("parses");
        assert_eq!(find(&samples, "baps_requests_total", &[]), Some(4.0));
        assert_eq!(find(&samples, "baps_cache_bytes", &[]), Some(1234.0));
        assert_eq!(
            find(
                &samples,
                "baps_request_latency_ms_count",
                &[("tier", "proxy")]
            ),
            Some(4.0)
        );
        assert_eq!(
            find(
                &samples,
                "baps_request_latency_ms_bucket",
                &[("tier", "proxy"), ("le", "+Inf")]
            ),
            Some(4.0)
        );
        let sum = find(
            &samples,
            "baps_request_latency_ms_sum",
            &[("tier", "proxy")],
        )
        .unwrap();
        assert!((sum - 43.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=200 {
            h.record(i as f64 * 0.7);
        }
        let mut text = PromText::new();
        text.header("m", "histogram", "h");
        text.histogram("m", &[], &h);
        let samples = parse(&text.finish()).unwrap();
        let buckets: Vec<&Sample> = samples.iter().filter(|s| s.name == "m_bucket").collect();
        assert!(buckets.len() >= 3);
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_count = 0.0;
        for b in &buckets {
            let le = match b.label("le").unwrap() {
                "+Inf" => f64::INFINITY,
                v => v.parse().unwrap(),
            };
            assert!(le > prev_le, "le edges must increase");
            assert!(b.value >= prev_count, "cumulative counts must not drop");
            prev_le = le;
            prev_count = b.value;
        }
        assert_eq!(buckets.last().unwrap().value, 200.0);
        assert_eq!(find(&samples, "m_count", &[]), Some(200.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("no_value_here").is_err());
        assert!(parse("name{unclosed=\"x\" 3").is_err());
        assert!(parse("name{k=unquoted} 3").is_err());
        assert!(parse("# BOGUS comment").is_err());
        assert!(parse("bad name 3").is_err());
        assert!(parse("name nan-ish").is_err());
    }

    #[test]
    fn conformance_accepts_builder_output() {
        let mut h = LatencyHistogram::new();
        for ms in [0.2, 3.0, 3.0, 700.0] {
            h.record(ms);
        }
        let mut text = PromText::new();
        text.counter("baps_requests_total", "GET requests handled.", 4);
        text.gauge("baps_workers_busy", "Busy workers.", 3.0);
        text.header("baps_queue_wait_ms", "histogram", "Time in queue.");
        text.histogram("baps_queue_wait_ms", &[("pool", "proxy")], &h);
        text.histogram("baps_queue_wait_ms", &[("pool", "origin")], &h);
        check_conformance(&text.finish()).expect("builder output conforms");
    }

    #[test]
    fn conformance_rejects_violations() {
        // Sample with no HELP/TYPE.
        assert!(check_conformance("m 1\n").is_err());
        // HELP but no TYPE.
        assert!(check_conformance("# HELP m h\nm 1\n").is_err());
        // Sample before its declaration.
        assert!(check_conformance("m 1\n# HELP m h\n# TYPE m counter\n").is_err());
        // Duplicate TYPE.
        assert!(
            check_conformance("# HELP m h\n# TYPE m counter\n# TYPE m counter\nm 1\n").is_err()
        );
        // Bad TYPE kind, bad label name, negative counter.
        assert!(check_conformance("# HELP m h\n# TYPE m banana\nm 1\n").is_err());
        assert!(check_conformance("# HELP m h\n# TYPE m gauge\nm{9bad=\"x\"} 1\n").is_err());
        assert!(check_conformance("# HELP m h\n# TYPE m counter\nm -1\n").is_err());

        let hist_header = "# HELP m h\n# TYPE m histogram\n";
        // Histogram whose last bucket is not +Inf.
        assert!(check_conformance(&format!(
            "{hist_header}m_bucket{{le=\"1\"}} 2\nm_sum 2\nm_count 2\n"
        ))
        .is_err());
        // le edges out of order.
        assert!(check_conformance(&format!(
            "{hist_header}m_bucket{{le=\"5\"}} 1\nm_bucket{{le=\"1\"}} 2\n\
             m_bucket{{le=\"+Inf\"}} 2\nm_sum 2\nm_count 2\n"
        ))
        .is_err());
        // Cumulative counts dropping.
        assert!(check_conformance(&format!(
            "{hist_header}m_bucket{{le=\"1\"}} 3\nm_bucket{{le=\"+Inf\"}} 2\n\
             m_sum 2\nm_count 2\n"
        ))
        .is_err());
        // +Inf bucket disagreeing with _count.
        assert!(check_conformance(&format!(
            "{hist_header}m_bucket{{le=\"+Inf\"}} 2\nm_sum 2\nm_count 3\n"
        ))
        .is_err());
        // A conforming histogram passes.
        assert!(check_conformance(&format!(
            "{hist_header}m_bucket{{le=\"1\"}} 1\nm_bucket{{le=\"+Inf\"}} 2\n\
             m_sum 2\nm_count 2\n"
        ))
        .is_ok());
    }

    #[test]
    fn parse_handles_escapes_and_infinities() {
        let samples = parse("m{u=\"a\\\"b\\\\c\",le=\"+Inf\"} +Inf\n").unwrap();
        assert_eq!(samples[0].label("u"), Some("a\"b\\c"));
        assert_eq!(samples[0].label("le"), Some("+Inf"));
        assert!(samples[0].value.is_infinite());
    }

    #[test]
    fn exemplars_render_parse_and_conform() {
        use crate::hist::{bucket_upper_ms, NBUCKETS, TAIL_BUCKET_FLOOR};
        let mut h = LatencyHistogram::new();
        h.record(0.5); // fast bucket: no exemplar possible
        h.record(80.0); // tail bucket: gets one
        h.record(2e6); // overflow bucket: exemplar folds onto +Inf line
        let mut exemplars = vec![0u64; NBUCKETS];
        let tail_idx = (0..NBUCKETS).find(|&i| 80.0 <= bucket_upper_ms(i)).unwrap();
        assert!(tail_idx >= TAIL_BUCKET_FLOOR);
        exemplars[tail_idx] = 0x0000_0100_0000_002a;
        exemplars[NBUCKETS - 1] = 0x0000_0200_0000_0007;
        let mut text = PromText::new();
        text.header("m", "histogram", "h");
        text.histogram_with_exemplars("m", &[("tier", "origin")], &h, &exemplars);
        let rendered = text.finish();
        check_conformance(&rendered).expect("exemplar exposition conforms");

        let samples = parse(&rendered).unwrap();
        let tail = samples
            .iter()
            .find(|s| s.name == "m_bucket" && s.exemplar.is_some() && s.label("le") != Some("+Inf"))
            .expect("tail bucket carries its exemplar");
        let e = tail.exemplar.as_ref().unwrap();
        assert_eq!(e.trace_id(), Some("000001000000002a"));
        let le: f64 = tail.label("le").unwrap().parse().unwrap();
        assert!(e.value <= le && e.value > 0.0);
        let inf = samples
            .iter()
            .find(|s| s.name == "m_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        let e = inf.exemplar.as_ref().expect("overflow exemplar rides +Inf");
        assert_eq!(e.trace_id(), Some("0000020000000007"));
        assert!(e.value.is_finite());
        // The fast bucket has no exemplar.
        let fast = samples
            .iter()
            .find(|s| s.name == "m_bucket" && s.label("le").unwrap().parse::<f64>().unwrap() < 1.0)
            .unwrap();
        assert!(fast.exemplar.is_none());
        // Exemplars do not perturb the histogram semantics.
        assert_eq!(find(&samples, "m_count", &[("tier", "origin")]), Some(3.0));
    }

    #[test]
    fn conformance_rejects_malformed_exemplars() {
        let hist = "# HELP m h\n# TYPE m histogram\n";
        // Exemplar on a counter.
        assert!(check_conformance(
            "# HELP c h\n# TYPE c counter\nc 1 # {trace_id=\"0000000000000001\"} 1\n"
        )
        .is_err());
        // Exemplar on a histogram _count line.
        assert!(check_conformance(&format!(
            "{hist}m_bucket{{le=\"+Inf\"}} 1\nm_sum 1\nm_count 1 # {{trace_id=\"0000000000000001\"}} 1\n"
        ))
        .is_err());
        // Short / non-hex trace ids.
        for bad in ["abc", "zzzzzzzzzzzzzzzz"] {
            assert!(check_conformance(&format!(
                "{hist}m_bucket{{le=\"+Inf\"}} 1 # {{trace_id=\"{bad}\"}} 1\nm_sum 1\nm_count 1\n"
            ))
            .is_err());
        }
        // Missing trace_id label.
        assert!(check_conformance(&format!(
            "{hist}m_bucket{{le=\"+Inf\"}} 1 # {{span=\"x\"}} 1\nm_sum 1\nm_count 1\n"
        ))
        .is_err());
        // Exemplar value above its bucket's le.
        assert!(check_conformance(&format!(
            "{hist}m_bucket{{le=\"5\"}} 1 # {{trace_id=\"0000000000000001\"}} 9\n\
             m_bucket{{le=\"+Inf\"}} 1\nm_sum 1\nm_count 1\n"
        ))
        .is_err());
        // A well-formed exemplar passes.
        assert!(check_conformance(&format!(
            "{hist}m_bucket{{le=\"5\"}} 1 # {{trace_id=\"0000000000000001\"}} 4\n\
             m_bucket{{le=\"+Inf\"}} 1\nm_sum 1\nm_count 1\n"
        ))
        .is_ok());
    }

    #[test]
    fn hash_inside_quoted_label_is_not_an_exemplar() {
        let samples = parse("m{u=\"a#b\"} 3\n").unwrap();
        assert_eq!(samples[0].label("u"), Some("a#b"));
        assert_eq!(samples[0].value, 3.0);
        assert!(samples[0].exemplar.is_none());
    }
}
