//! # baps-obs — observability for the live BAPS runtime
//!
//! One small crate shared by the proxy, the client agents, the origin
//! server, the offline simulator and the benchmark binaries, so every
//! component reports latency the same way:
//!
//! * [`LatencyHistogram`] — the fixed-bucket log-scale histogram (moved
//!   here from `baps-sim`, which now re-exports it), for single-threaded
//!   recording and for snapshots/merges;
//! * [`AtomicHistogram`] — the same bucket layout with lock-free
//!   `AtomicU64` buckets, for always-on recording inside servers;
//! * [`TraceId`] — per-request ids minted by the client and propagated in
//!   the `Trace-Id` header across every hop;
//! * [`FlightRecorder`] — a bounded ring of structured span events,
//!   dumped on demand and automatically when a chaos/live invariant trips;
//! * [`span`] — causal tracing: [`SpanId`]s propagated in the `Span-Id`
//!   header, the deterministic head-sampling rule ([`span::sampled`]),
//!   the JSONL export behind the `TRACE BAPS/1.0` verb, and span-tree
//!   assembly ([`span::assemble`]);
//! * [`prom`] — Prometheus text exposition rendering (and a parser for
//!   the CI smoke test), backing the `METRICS BAPS/1.0` verb;
//! * [`window`] — a lock-free ring of per-second cumulative captures
//!   yielding rolling 1 s/10 s/60 s rates and windowed quantiles, the
//!   substrate the proxy's `HEALTH BAPS/1.0` SLO verdicts are computed
//!   over.
//!
//! Recording is **always on**; [`set_recording`] exists solely so the
//! overhead benchmark can measure the cost of the instrumentation by
//! differencing a recording-off run against the default.

#![warn(missing_docs)]

pub mod hist;
pub mod prom;
pub mod recorder;
pub mod span;
pub mod trace;
pub mod window;

pub use hist::{AtomicHistogram, LabeledHistograms, LatencyHistogram, Tier, TIER_NAMES};
pub use recorder::{Event, EventKind, FlightRecorder};
pub use span::{SpanId, SpanRecord, SpanTree};
pub use trace::TraceId;
pub use window::{WindowRing, WindowSchema, WindowSnapshot};

use std::sync::atomic::{AtomicBool, Ordering};

/// Global recording switch, defaulting to on. Only the overhead benchmark
/// turns it off (to measure the cost of recording itself); production and
/// test paths never touch it.
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Enables or disables event/histogram recording process-wide.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Release);
}

/// Whether recording is currently enabled.
pub fn recording() -> bool {
    RECORDING.load(Ordering::Acquire)
}
