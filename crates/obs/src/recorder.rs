//! The flight recorder: a bounded ring of structured span events.
//!
//! Every component of a deployment (proxy, origin, each client agent)
//! records the spans of the requests it touches — dial, wait-for-shard,
//! peer round trip, origin fetch, watermark verify — into one shared ring.
//! The ring is bounded: when full, the oldest events are dropped (and
//! counted), so a soak run can record forever while the last
//! [`FlightRecorder::DEFAULT_CAPACITY`] events before an invariant
//! violation are always available. `chaos_soak` dumps the ring next to its
//! reproduction command; tests dump it on assertion failures.
//!
//! An event is small but not free (one mutex acquisition and one short
//! `String`), so the ring earns its always-on budget three ways: recording
//! sits behind the global [`recording`](crate::recording) switch like the
//! histograms do; callers record hot-path spans *selectively* (multi-hop
//! fetches, errors, and slow operations always; routine fast cache hits
//! never — the histograms account for those); and the ring is **striped**:
//! threads append to per-stripe sub-rings (one shared mutex here measured
//! ~10% off proxy throughput; striping takes the lock off the cross-thread
//! hot path). A push never *blocks* either: stripe locks are only ever
//! `try_lock`ed and an event whose every stripe is momentarily held is
//! shed (and counted) rather than parking the calling worker — a context
//! switch costs microseconds, the push itself well under one. `dump`
//! merges the stripes back into one sequence ordered by the global event
//! counter.

use crate::span::{SpanId, SpanRecord};
use crate::trace::TraceId;
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// What a flight-recorder event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Client: one whole `fetch` call, any tier.
    Fetch,
    /// A TCP dial (client→proxy reconnects; rare under keep-alive).
    Dial,
    /// Proxy: time spent waiting for + holding the cache shard lock on
    /// the first-tier lookup.
    WaitForShard,
    /// Proxy: one mediated PEERGET round trip to a candidate holder.
    PeerProbe,
    /// Proxy: one direct-forward PUSH order to a holder.
    PushOrder,
    /// A client served a PEERGET/PUSH from its browser cache.
    PeerServe,
    /// Proxy: one origin fetch (all retries included).
    OriginFetch,
    /// The origin served a GET.
    OriginServe,
    /// Client: watermark verification of a received document.
    Verify,
    /// Client: a direct peer delivery arrived on the peer port.
    Deliver,
    /// Proxy: an INVALIDATE was applied (cache purge + index drop).
    Invalidate,
    /// Proxy: a disk-tier read (verify included; outcome in the detail).
    DiskRead,
    /// Proxy: a disk-tier write (write-through after an origin fetch).
    DiskWrite,
    /// Proxy: a miss coalesced onto another request's in-flight fetch
    /// (the span is the time spent parked on the flight's condvar).
    Coalesced,
    /// Proxy: time a connection spent parked in the worker pool's accept
    /// backlog before a worker picked it up.
    QueueWait,
    /// An invariant violation (chaos soak, live test); always recorded.
    Violation,
}

impl EventKind {
    /// Stable lowercase name used in dumps and metrics.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Fetch => "fetch",
            EventKind::Dial => "dial",
            EventKind::WaitForShard => "wait-for-shard",
            EventKind::PeerProbe => "peer-probe",
            EventKind::PushOrder => "push-order",
            EventKind::PeerServe => "peer-serve",
            EventKind::OriginFetch => "origin-fetch",
            EventKind::OriginServe => "origin-serve",
            EventKind::Verify => "verify",
            EventKind::Deliver => "deliver",
            EventKind::Invalidate => "invalidate",
            EventKind::DiskRead => "disk-read",
            EventKind::DiskWrite => "disk-write",
            EventKind::Coalesced => "coalesced",
            EventKind::QueueWait => "queue-wait",
            EventKind::Violation => "VIOLATION",
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotone sequence number (gaps mean the ring dropped events).
    pub seq: u64,
    /// Microseconds since the recorder was created, at record time.
    pub at_micros: u64,
    /// The request this span belongs to ([`TraceId::NONE`] if unknown).
    pub trace: TraceId,
    /// Span kind.
    pub kind: EventKind,
    /// Span duration in microseconds (0 for instantaneous events).
    pub dur_micros: u64,
    /// This event's span id under causal tracing ([`SpanId::NONE`] for
    /// events of unsampled traces — the legacy slow/multi-hop samples).
    pub span: SpanId,
    /// The parent span ([`SpanId::NONE`] for roots and non-span events).
    pub parent: SpanId,
    /// Free-form context (`client=3 url=… outcome=hit`).
    pub detail: String,
}

impl Event {
    /// The event as a causal-trace span record, when it carries one.
    /// `start_us` is derived from the record-time timestamp minus the
    /// duration (events are recorded when the span *ends*).
    pub fn span_record(&self) -> Option<SpanRecord> {
        if self.span.is_none() {
            return None;
        }
        Some(SpanRecord {
            trace: self.trace,
            span: self.span,
            parent: self.parent,
            kind: self.kind.name().to_owned(),
            start_us: self.at_micros.saturating_sub(self.dur_micros),
            dur_us: self.dur_micros,
            detail: self.detail.clone(),
        })
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.3}ms] #{:<8} {} {:<14} {:>9.3}ms  {}",
            self.at_micros as f64 / 1e3,
            self.seq,
            self.trace,
            self.kind.name(),
            self.dur_micros as f64 / 1e3,
            self.detail,
        )?;
        if !self.span.is_none() {
            write!(f, "  span={}<-{}", self.span, self.parent)?;
        }
        Ok(())
    }
}

struct Ring {
    events: VecDeque<Event>,
    dropped: u64,
}

/// Hands out a stable per-thread stripe preference, round-robin across
/// threads so concurrent recorders land on different locks.
fn thread_stripe(n: usize) -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            s.set(v);
        }
        v % n
    })
}

/// A bounded, shared ring of [`Event`]s.
///
/// Internally striped (for capacities that warrant it) so that proxy
/// workers, client agents, and the origin never contend on one mutex:
/// each thread appends to its own sub-ring, each bounded at an equal
/// share of the capacity. A global atomic sequence number orders events
/// across stripes; [`dump`](FlightRecorder::dump) merges on it.
pub struct FlightRecorder {
    epoch: Instant,
    cap: usize,
    seq: AtomicU64,
    stripes: Vec<Mutex<Ring>>,
    /// Events shed because every stripe lock was momentarily held (see
    /// [`push`](Self::push) — the recorder never blocks the hot path).
    shed: AtomicU64,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.cap)
            .field("len", &self.len())
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Default ring capacity. The hot path records spans selectively
    /// (multi-hop fetches, errors, slow operations — see DESIGN.md §9),
    /// so 2048 events cover thousands of recent requests while bounding
    /// the ring's resident set (events + detail strings) to a few hundred
    /// KB. Sizing matters for more than memory: an 8192-event ring cycled
    /// ~1 MB of cold allocations through the cache and alone cost ~5%
    /// throughput on a small host.
    pub const DEFAULT_CAPACITY: usize = 2048;

    /// Per-stripe capacity below which striping stops paying: tiny rings
    /// (unit tests, tight dumps) get a single stripe and exact global
    /// FIFO eviction; production-sized rings get up to 8 stripes.
    const MIN_STRIPE_CAPACITY: usize = 1024;

    /// Creates a recorder holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        let n_stripes = (cap / Self::MIN_STRIPE_CAPACITY).clamp(1, 8);
        let stripe_cap = cap.div_ceil(n_stripes);
        FlightRecorder {
            epoch: Instant::now(),
            cap,
            seq: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            stripes: (0..n_stripes)
                .map(|_| {
                    Mutex::new(Ring {
                        events: VecDeque::with_capacity(stripe_cap.min(65_536)),
                        dropped: 0,
                    })
                })
                .collect(),
        }
    }

    /// Events one stripe may hold (total capacity split evenly).
    fn stripe_cap(&self) -> usize {
        self.cap.div_ceil(self.stripes.len())
    }

    /// Records one span. A no-op while [`recording`](crate::recording) is
    /// off (the overhead benchmark's baseline).
    pub fn record(
        &self,
        trace: TraceId,
        kind: EventKind,
        dur: Duration,
        detail: impl Into<String>,
    ) {
        if !crate::recording() {
            return;
        }
        self.push(trace, SpanId::NONE, SpanId::NONE, kind, dur, detail.into());
    }

    /// Records one span of a head-sampled trace, carrying its causal ids.
    /// Like [`record`](Self::record), a no-op while recording is off.
    pub fn record_span(
        &self,
        trace: TraceId,
        span: SpanId,
        parent: SpanId,
        kind: EventKind,
        dur: Duration,
        detail: impl Into<String>,
    ) {
        if !crate::recording() {
            return;
        }
        self.push(trace, span, parent, kind, dur, detail.into());
    }

    /// Records one hop either way: as a causal span under `parent` when
    /// `span` was minted (see [`crate::span::hop`]), or as a plain event
    /// when the trace is unsampled (`span` is [`SpanId::NONE`]).
    pub fn record_hop(
        &self,
        trace: TraceId,
        span: SpanId,
        parent: SpanId,
        kind: EventKind,
        dur: Duration,
        detail: impl Into<String>,
    ) {
        if span.is_none() {
            self.record(trace, kind, dur, detail);
        } else {
            self.record_span(trace, span, parent, kind, dur, detail);
        }
    }

    /// Records an instantaneous event **unconditionally** — used for
    /// invariant violations, which must land in the dump even if a
    /// benchmark turned recording off.
    pub fn note(&self, trace: TraceId, kind: EventKind, detail: impl Into<String>) {
        self.push(
            trace,
            SpanId::NONE,
            SpanId::NONE,
            kind,
            Duration::ZERO,
            detail.into(),
        );
    }

    fn push(
        &self,
        trace: TraceId,
        span: SpanId,
        parent: SpanId,
        kind: EventKind,
        dur: Duration,
        detail: String,
    ) {
        let at_micros = self.epoch.elapsed().as_micros() as u64;
        let dur_micros = dur.as_micros() as u64;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let stripe_cap = self.stripe_cap();
        let event = Event {
            seq,
            at_micros,
            trace,
            kind,
            dur_micros,
            span,
            parent,
            detail,
        };
        // Never block the hot path for bookkeeping: try the thread's
        // preferred stripe, fall through to the others, and shed the
        // event if every lock is momentarily held. Parking here costs a
        // context switch — microseconds, ~50x the push itself — and on an
        // oversubscribed host a scheduler hiccup turns one preempted
        // holder into a convoy of parked workers; losing an event under
        // that kind of pressure is the correct trade for a diagnostics
        // ring.
        let n = self.stripes.len();
        let first = thread_stripe(n);
        let Some(mut ring) = (0..n).find_map(|i| self.stripes[(first + i) % n].try_lock()) else {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return;
        };
        // Evict into a local so the displaced event's detail string is
        // freed after the lock is released, not inside the critical
        // section.
        let evicted = if ring.events.len() >= stripe_cap {
            ring.dropped += 1;
            ring.events.pop_front()
        } else {
            None
        };
        ring.events.push_back(event);
        drop(ring);
        drop(evicted);
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().events.len()).sum()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events dropped: displaced because the ring was full, plus events
    /// shed because every stripe lock was held at push time.
    pub fn dropped(&self) -> u64 {
        self.stripes.iter().map(|s| s.lock().dropped).sum::<u64>()
            + self.shed.load(Ordering::Relaxed)
    }

    /// A copy of the ring, oldest event first (merged across stripes by
    /// the global sequence number).
    pub fn dump(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self
            .stripes
            .iter()
            .flat_map(|s| s.lock().events.iter().cloned().collect::<Vec<_>>())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// The ring's causal-trace spans as JSONL, one [`SpanRecord`] per
    /// line, oldest first — the body of a `TRACE BAPS/1.0` reply. Events
    /// without a span id (legacy slow/multi-hop samples, violations) are
    /// skipped.
    pub fn dump_spans(&self) -> String {
        let mut out = String::new();
        for event in self.dump() {
            if let Some(record) = event.span_record() {
                out.push_str(&record.render_line());
                out.push('\n');
            }
        }
        out
    }

    /// The ring rendered as text, one event per line, for humans and for
    /// the chaos-soak violation report.
    pub fn render(&self) -> String {
        let events = self.dump();
        let mut out = format!(
            "flight recorder: {} events (capacity {}, {} dropped)\n",
            events.len(),
            self.cap,
            self.dropped()
        );
        for event in &events {
            out.push_str(&event.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record(
                TraceId::mint(0, i),
                EventKind::Fetch,
                Duration::from_micros(i),
                format!("n={i}"),
            );
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 6);
        let dump = rec.dump();
        let seqs: Vec<u64> = dump.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "keeps the newest events in order");
        assert_eq!(dump[3].detail, "n=9");
    }

    // The recording-switch behaviour is covered in tests/properties.rs:
    // it flips a process-global flag, which must not race the other unit
    // tests in this binary.

    #[test]
    fn span_events_export_as_jsonl() {
        let rec = FlightRecorder::new(8);
        let trace = TraceId::mint(1, 3);
        let root = SpanId::mint();
        let child = SpanId::mint();
        rec.record_span(
            trace,
            root,
            SpanId::NONE,
            EventKind::Fetch,
            Duration::from_micros(500),
            "client=1",
        );
        rec.record_span(
            trace,
            child,
            root,
            EventKind::OriginFetch,
            Duration::from_micros(200),
            "url=u",
        );
        // A non-span event must not leak into the JSONL dump.
        rec.record(trace, EventKind::Verify, Duration::from_micros(9), "x");

        let jsonl = rec.dump_spans();
        let records = crate::span::parse_jsonl(&jsonl).unwrap();
        assert_eq!(records.len(), 2);
        let trees = crate::span::assemble(&records);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].trace, trace);
        assert_eq!(trees[0].root.record.span, root);
        assert_eq!(trees[0].root.children.len(), 1);
        assert_eq!(trees[0].root.children[0].record.kind, "origin-fetch");
        // start_us is derived from the end-time stamp minus the duration.
        let r = &trees[0].root.record;
        assert_eq!(r.dur_us, 500);
        assert!(r.end_us() >= 500);
    }

    #[test]
    fn render_includes_trace_ids() {
        let rec = FlightRecorder::new(8);
        let trace = TraceId::mint(2, 5);
        rec.record(
            trace,
            EventKind::PeerProbe,
            Duration::from_millis(3),
            "url=u",
        );
        let text = rec.render();
        assert!(text.contains(&trace.to_string()), "{text}");
        assert!(text.contains("peer-probe"), "{text}");
    }
}
