//! Log-scaled latency histograms for per-request service times.
//!
//! The paper's §5 argues about *aggregate* service time; a distributional
//! view (p50/p90/p99/p999 per serve tier) shows where the browsers-aware
//! design helps and what the 0.1 s peer-connection setup costs. Buckets
//! are log-spaced (18 per decade) so microsecond memory hits and
//! multi-second WAN fetches fit in one compact structure with bounded
//! relative error: one bucket spans a factor of 10^(1/18) ≈ 1.137, so a
//! quantile estimate (the lower edge of the bucket holding the rank) is
//! never more than ~13.7% below the true sample and never above it.
//!
//! Two variants share the bucket layout: [`LatencyHistogram`] for
//! single-threaded recording, merging and quantile extraction, and
//! [`AtomicHistogram`] for lock-free always-on recording inside servers
//! (snapshot into a `LatencyHistogram` to read it).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Buckets per decade (relative resolution ≈ 10^(1/18) − 1 ≈ 13.6%).
pub const BUCKETS_PER_DECADE: f64 = 18.0;
/// Smallest representable latency, ms (everything below lands in bucket 0).
pub const MIN_MS: f64 = 1e-4;
/// Number of buckets: spans 1e-4 .. 1e5 ms (9 decades) plus an underflow
/// bucket and an overflow bucket.
pub const NBUCKETS: usize = (9.0 * BUCKETS_PER_DECADE) as usize + 2;

/// Bucket index for a latency in milliseconds.
fn bucket_of(ms: f64) -> usize {
    if ms <= MIN_MS {
        return 0;
    }
    // `* (1.0 / MIN_MS)` const-folds to a multiply; a division here is a
    // real `fdiv` on the per-request hot path.
    let idx = ((ms * (1.0 / MIN_MS)).log10() * BUCKETS_PER_DECADE).floor() as usize + 1;
    idx.min(NBUCKETS - 1)
}

/// Lower bucket boundaries in integer nanoseconds: `boundaries[k]` is the
/// smallest duration landing in bucket `k + 1`. Each entry is calibrated
/// against the f64 path (float estimate, then a +-1 ns local search), so
/// [`bucket_of_ns`] agrees with `bucket_of` on every nanosecond value —
/// including the boundary values where independent float math would
/// disagree by one ulp and shift a bucket.
fn ns_boundaries() -> &'static [u64; NBUCKETS - 1] {
    static BOUNDARIES: OnceLock<[u64; NBUCKETS - 1]> = OnceLock::new();
    BOUNDARIES.get_or_init(|| {
        let via_f64 = |ns: u64| bucket_of(Duration::from_nanos(ns).as_secs_f64() * 1e3);
        let mut t = [0u64; NBUCKETS - 1];
        for (k, slot) in t.iter_mut().enumerate() {
            let i = k + 1;
            // MIN_MS = 1e-4 ms = 100 ns, so bucket i opens near
            // 100 * 10^((i-1)/18) ns.
            let mut est =
                (100.0 * 10f64.powf((i as f64 - 1.0) / BUCKETS_PER_DECADE)).round() as u64;
            while est > 0 && via_f64(est - 1) >= i {
                est -= 1;
            }
            while via_f64(est) < i {
                est += 1;
            }
            *slot = est;
        }
        t
    })
}

/// Bucket index for an integer nanosecond latency — the server hot path.
/// A binary search over precomputed u64 boundaries (8 L1-resident
/// compares) replaces the `log10` libm call the f64 path pays; at a few
/// histogram records per proxied request the difference is measurable in
/// the recording-overhead A/B.
/// One row of the octave-indexed bucket lookup: the bucket a value at
/// the octave's floor (`2^o` ns) falls in, plus the boundaries interior
/// to the octave. 18 buckets per decade puts at most
/// `ceil(log10(2) * 18) = 6` boundaries inside any one octave; short
/// rows are padded with `u64::MAX`, which no (clamped) input reaches.
struct Octave {
    base: u16,
    bounds: [u64; 6],
}

/// The 64 octave rows, derived from [`ns_boundaries`] on first use.
fn octaves() -> &'static [Octave; 64] {
    static OCTAVES: OnceLock<[Octave; 64]> = OnceLock::new();
    OCTAVES.get_or_init(|| {
        let b = ns_boundaries();
        std::array::from_fn(|o| {
            let lo = 1u64 << o;
            let hi = if o == 63 { u64::MAX - 1 } else { (lo << 1) - 1 };
            let mut bounds = [u64::MAX; 6];
            let mut in_row = b.iter().filter(|&&t| t > lo && t <= hi);
            for slot in bounds.iter_mut() {
                match in_row.next() {
                    Some(&t) => *slot = t,
                    None => break,
                }
            }
            debug_assert!(in_row.next().is_none(), "octave overflows its 6 slots");
            Octave {
                base: b.partition_point(|&t| t <= lo) as u16,
                bounds,
            }
        })
    })
}

/// Bucket index for a duration in integer nanoseconds. A binary search
/// over the 163 boundaries costs ~8 dependent, mispredicting probes per
/// record; indexing by the value's octave (`leading_zeros`, one branch-
/// free instruction) leaves at most 6 in-row comparisons with no data-
/// dependent branches — this sits on every request's hot path four
/// times, and the difference is measurable in the §9 overhead A/B.
#[inline]
fn bucket_of_ns(ns: u64) -> usize {
    let ns = ns.min(u64::MAX - 1);
    let row = &octaves()[63 - (ns | 1).leading_zeros() as usize];
    row.base as usize
        + row
            .bounds
            .iter()
            .map(|&t| usize::from(t <= ns))
            .sum::<usize>()
}

/// Lower edge of a bucket, ms (quantiles report this value).
fn bucket_lower_ms(idx: usize) -> f64 {
    if idx == 0 {
        return MIN_MS;
    }
    MIN_MS * 10f64.powf((idx - 1) as f64 / BUCKETS_PER_DECADE)
}

/// The largest finite bucket edge (the overflow bucket's lower edge) —
/// what an exemplar on the `+Inf` bucket reports as its value, since
/// OpenMetrics exemplar values must stay finite.
pub(crate) const MAX_FINITE_EDGE_MS: f64 = 1e5;

/// Upper edge of a bucket, ms — the Prometheus `le` bound. The overflow
/// bucket's edge is `+Inf`.
pub fn bucket_upper_ms(idx: usize) -> f64 {
    if idx >= NBUCKETS - 1 {
        return f64::INFINITY;
    }
    MIN_MS * 10f64.powf(idx as f64 / BUCKETS_PER_DECADE)
}

/// A fixed-size log-scaled histogram of millisecond latencies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ms: f64,
    max_ms: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; NBUCKETS],
            total: 0,
            sum_ms: 0.0,
            max_ms: 0.0,
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, ms: f64) {
        debug_assert!(ms.is_finite() && ms >= 0.0);
        self.counts[bucket_of(ms)] += 1;
        self.total += 1;
        self.sum_ms += ms;
        self.max_ms = self.max_ms.max(ms);
    }

    /// Records one latency observation from a [`Duration`].
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_secs_f64() * 1e3);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations, ms.
    pub fn sum_ms(&self) -> f64 {
        self.sum_ms
    }

    /// Mean latency, ms (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ms / self.total as f64
        }
    }

    /// Maximum observed latency, ms.
    pub fn max_ms(&self) -> f64 {
        self.max_ms
    }

    /// Approximate quantile (`q` in [0, 1]), ms. Returns 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower_ms(idx);
            }
        }
        self.max_ms
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ms += other.sum_ms;
        self.max_ms = self.max_ms.max(other.max_ms);
    }

    /// Non-empty buckets as `(upper_edge_ms, count)` pairs, in increasing
    /// edge order — the series a Prometheus `_bucket{le=…}` rendering
    /// needs (counts here are per-bucket, not yet cumulative).
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| (bucket_upper_ms(idx), c))
    }

    /// The raw per-bucket counts, all [`NBUCKETS`] of them (zeros
    /// included) — the capture shape the window ring stores.
    pub(crate) fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuilds a histogram from raw bucket counts (the window ring's
    /// read path). The count is derived from the bucket sum; the maximum
    /// is approximated by the highest occupied bucket's edge, since the
    /// exact sample is not recoverable from bucket deltas.
    pub(crate) fn from_bucket_counts(counts: Vec<u64>, sum_ms: f64) -> LatencyHistogram {
        assert_eq!(counts.len(), NBUCKETS);
        let total = counts.iter().sum();
        let max_ms = counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|idx| {
                if idx < NBUCKETS - 1 {
                    bucket_upper_ms(idx)
                } else {
                    bucket_lower_ms(idx)
                }
            })
            .unwrap_or(0.0);
        LatencyHistogram {
            counts,
            total,
            sum_ms,
            max_ms,
        }
    }
}

/// The index of the first *tail* bucket: exemplars are retained for this
/// bucket and above. 10 ms and up — in this system's latency regime
/// (sub-millisecond cache hits, single-digit-millisecond disk reads) the
/// p99 region of every tier sits at or above this edge, while the buckets
/// below it turn over far too fast for a retained trace id to still be
/// in the flight-recorder ring by the time anyone scrapes it.
pub const TAIL_BUCKET_FLOOR: usize = first_bucket_at_or_above_10ms();

/// `bucket_of(10.0)` as a const: 10 ms = 1e5 × MIN_MS, so it opens decade
/// 5 of 9 — bucket 1 + 5 × 18.
const fn first_bucket_at_or_above_10ms() -> usize {
    1 + 5 * (BUCKETS_PER_DECADE as usize)
}

/// The same bucket layout with lock-free buckets, for always-on recording
/// on server hot paths: `record` is a handful of `Relaxed` atomic adds, no
/// lock, no allocation. Readers take a [`snapshot`](AtomicHistogram::snapshot).
///
/// The observation count is derived from the bucket sum at snapshot time
/// (not tracked separately), so a snapshot's `count()` always equals the
/// sum of its buckets even when taken mid-load — the same no-torn-reads
/// discipline as `ProxyCounters::snapshot`.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: Vec<AtomicU64>,
    /// Total observed time in nanoseconds (u64 wraps after ~584 years).
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    /// Most recent head-sampled `TraceId` observed per tail bucket
    /// (index `TAIL_BUCKET_FLOOR..`), 0 = none yet. A tail latency in the
    /// exposition thereby links to a `TRACE`-fetchable span tree. Only
    /// sampled traces are stored, so every retained exemplar has a span
    /// tree to resolve to; the store is a single `Relaxed` write on at
    /// most 1-in-[`crate::span::SAMPLE_ONE_IN`] requests.
    exemplars: Vec<AtomicU64>,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            counts: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            exemplars: (TAIL_BUCKET_FLOOR..NBUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Records one latency observation.
    pub fn record_ms(&self, ms: f64) {
        debug_assert!(ms.is_finite() && ms >= 0.0);
        self.counts[bucket_of(ms)].fetch_add(1, Ordering::Relaxed);
        let ns = (ms * 1e6) as u64;
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        // fetch_max is a CAS loop; a plain load skips it on the common
        // not-a-new-max path (a racing writer only ever raises the value,
        // so the stale-read worst case is a skipped redundant update).
        if ns > self.max_ns.load(Ordering::Relaxed) {
            self.max_ns.fetch_max(ns, Ordering::Relaxed);
        }
    }

    /// Records one latency observation from a [`Duration`]. Stays on
    /// integer nanoseconds end to end (calibrated bucket table, no float
    /// conversion, no `log10`) — this is the always-on per-request path.
    #[inline]
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.counts[bucket_of_ns(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        if ns > self.max_ns.load(Ordering::Relaxed) {
            self.max_ns.fetch_max(ns, Ordering::Relaxed);
        }
    }

    /// Records one observation and, when `trace` is head-sampled and the
    /// latency lands in a tail bucket, retains it as that bucket's
    /// exemplar. This is the always-on request path: the sampling check
    /// is one multiply-and-shift, and the exemplar store fires on at most
    /// 1-in-32 requests.
    #[inline]
    pub fn record_traced(&self, d: Duration, trace: crate::TraceId) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let bucket = bucket_of_ns(ns);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        if ns > self.max_ns.load(Ordering::Relaxed) {
            self.max_ns.fetch_max(ns, Ordering::Relaxed);
        }
        if bucket >= TAIL_BUCKET_FLOOR && crate::span::sampled(trace) {
            self.exemplars[bucket - TAIL_BUCKET_FLOOR].store(trace.0, Ordering::Relaxed);
        }
    }

    /// Exemplar traces per bucket: `traces[i]` is the most recent sampled
    /// trace id observed in bucket `i` (0 below [`TAIL_BUCKET_FLOOR`] and
    /// in tail buckets that have seen no sampled observation yet).
    pub fn exemplar_traces(&self) -> Vec<u64> {
        let mut traces = vec![0u64; NBUCKETS];
        for (slot, t) in self.exemplars.iter().zip(&mut traces[TAIL_BUCKET_FLOOR..]) {
            *t = slot.load(Ordering::Relaxed);
        }
        traces
    }

    /// A point-in-time copy, readable with the full [`LatencyHistogram`]
    /// API (quantiles, merge, bucket iteration).
    pub fn snapshot(&self) -> LatencyHistogram {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total = counts.iter().sum();
        LatencyHistogram {
            counts,
            total,
            sum_ms: self.sum_ns.load(Ordering::Relaxed) as f64 / 1e6,
            max_ms: self.max_ns.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }
}

/// The serve tiers of the paper's request path, in probe order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The requester's own browser cache.
    Local,
    /// The proxy's in-memory cache.
    Proxy,
    /// The proxy's persistent disk tier (probed after a memory miss).
    Disk,
    /// Another client's browser cache.
    Peer,
    /// The origin server.
    Origin,
}

/// Label values for [`Tier`], indexable by [`Tier::index`].
pub const TIER_NAMES: [&str; 5] = ["local", "proxy", "disk", "peer", "origin"];

impl Tier {
    /// Position in [`TIER_NAMES`] / a [`LabeledHistograms`] built over it.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The label value (`local` / `proxy` / `disk` / `peer` / `origin`).
    pub fn name(self) -> &'static str {
        TIER_NAMES[self.index()]
    }
}

/// A fixed family of [`AtomicHistogram`]s keyed by a small static label
/// set — one histogram per serve tier, or per protocol verb. Recording is
/// gated on the global [`recording`](crate::recording) switch so the
/// overhead benchmark can difference it away.
#[derive(Debug)]
pub struct LabeledHistograms {
    labels: &'static [&'static str],
    hists: Vec<AtomicHistogram>,
}

impl LabeledHistograms {
    /// One histogram per label.
    pub fn new(labels: &'static [&'static str]) -> Self {
        LabeledHistograms {
            labels,
            hists: labels.iter().map(|_| AtomicHistogram::new()).collect(),
        }
    }

    /// The label set.
    pub fn labels(&self) -> &'static [&'static str] {
        self.labels
    }

    /// Records into the histogram at `idx` (panics if out of range).
    #[inline]
    pub fn record(&self, idx: usize, d: Duration) {
        if crate::recording() {
            self.hists[idx].record(d);
        }
    }

    /// Records into the histogram at `idx`, retaining `trace` as the tail
    /// bucket's exemplar when it is head-sampled (see
    /// [`AtomicHistogram::record_traced`]).
    #[inline]
    pub fn record_traced(&self, idx: usize, d: Duration, trace: crate::TraceId) {
        if crate::recording() {
            self.hists[idx].record_traced(d, trace);
        }
    }

    /// Snapshot of the histogram at `idx`.
    pub fn snapshot(&self, idx: usize) -> LatencyHistogram {
        self.hists[idx].snapshot()
    }

    /// Snapshots every series as `(label, histogram)`.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, LatencyHistogram)> + '_ {
        self.labels
            .iter()
            .zip(&self.hists)
            .map(|(&l, h)| (l, h.snapshot()))
    }

    /// Snapshots every series along with its per-bucket exemplar traces
    /// (see [`AtomicHistogram::exemplar_traces`]) — the exposition path.
    pub fn iter_with_exemplars(
        &self,
    ) -> impl Iterator<Item = (&'static str, LatencyHistogram, Vec<u64>)> + '_ {
        self.labels
            .iter()
            .zip(&self.hists)
            .map(|(&l, h)| (l, h.snapshot(), h.exemplar_traces()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.quantile_ms(0.5), 0.0);
    }

    #[test]
    fn mean_and_max_exact() {
        let mut h = LatencyHistogram::new();
        for v in [1.0, 2.0, 3.0] {
            h.record(v);
        }
        assert!((h.mean_ms() - 2.0).abs() < 1e-12);
        assert_eq!(h.max_ms(), 3.0);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LatencyHistogram::new();
        // 1..=1000 ms uniform.
        for i in 1..=1000 {
            h.record(i as f64);
        }
        for (q, expect) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = h.quantile_ms(q);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.15, "q{q}: got {got}, expect {expect}");
        }
    }

    #[test]
    fn spans_nine_decades() {
        let mut h = LatencyHistogram::new();
        h.record(0.0002); // memory hit territory
        h.record(15_000.0); // slow WAN fetch
        assert!(h.quantile_ms(0.01) < 0.001);
        assert!(h.quantile_ms(1.0) >= 10_000.0);
    }

    #[test]
    fn below_min_clamps_to_first_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(0.0);
        h.record(1e-9);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ms(1.0) <= MIN_MS * 2.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10.0);
        b.record(1000.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.max_ms() == 1000.0);
        assert!(a.quantile_ms(0.25) < 20.0);
        assert!(a.quantile_ms(1.0) > 500.0);
    }

    #[test]
    fn monotone_quantiles() {
        let mut h = LatencyHistogram::new();
        for i in 0..5000 {
            h.record((i % 97) as f64 + 0.1);
        }
        let mut prev = 0.0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile_ms(q);
            assert!(v >= prev, "quantiles must be monotone");
            prev = v;
        }
    }

    #[test]
    fn bucket_edges_are_consistent() {
        // Every recordable value's bucket has edges that bracket it.
        for &ms in &[0.0, 1e-5, 1e-4, 0.003, 0.99, 1.0, 17.3, 4200.0, 9e4, 5e6] {
            let idx = bucket_of(ms);
            assert!(ms <= bucket_upper_ms(idx), "{ms} above its upper edge");
            if idx > 0 && idx < NBUCKETS - 1 {
                assert!(ms >= bucket_lower_ms(idx), "{ms} below its lower edge");
            }
        }
        // Edges increase strictly, ending at +Inf.
        for i in 1..NBUCKETS {
            assert!(bucket_upper_ms(i) > bucket_upper_ms(i - 1));
        }
        assert!(bucket_upper_ms(NBUCKETS - 1).is_infinite());
    }

    #[test]
    fn atomic_snapshot_matches_plain_recording() {
        let atomic = AtomicHistogram::new();
        let mut plain = LatencyHistogram::new();
        for i in 0..1000 {
            let ms = (i % 113) as f64 * 0.37 + 0.005;
            atomic.record_ms(ms);
            plain.record(ms);
        }
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), plain.count());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(snap.quantile_ms(q), plain.quantile_ms(q));
        }
        // Sums differ only by nanosecond truncation.
        assert!((snap.sum_ms() - plain.sum_ms()).abs() < 1e-3 * plain.count() as f64);
    }

    #[test]
    fn integer_bucket_path_matches_f64_path_everywhere() {
        let via_f64 = |ns: u64| bucket_of(Duration::from_nanos(ns).as_secs_f64() * 1e3);
        // Every boundary, one below, one above — where a one-ulp float
        // disagreement would shift a bucket.
        for &b in ns_boundaries().iter() {
            for ns in [b.saturating_sub(1), b, b + 1] {
                assert_eq!(bucket_of_ns(ns), via_f64(ns), "ns = {ns}");
            }
        }
        // A log-spaced sample across the whole span, plus the extremes.
        let mut ns = 1u64;
        while ns < 200_000_000_000 {
            assert_eq!(bucket_of_ns(ns), via_f64(ns), "ns = {ns}");
            ns = ns * 11 / 7 + 1;
        }
        assert_eq!(bucket_of_ns(0), via_f64(0));
        assert_eq!(bucket_of_ns(u64::MAX), NBUCKETS - 1);
    }

    #[test]
    fn atomic_records_concurrently() {
        let h = std::sync::Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        h.record_ms((t * 500 + i) as f64 * 0.01 + 0.001);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 2000);
    }

    #[test]
    fn tail_bucket_floor_is_10ms() {
        assert_eq!(TAIL_BUCKET_FLOOR, bucket_of(10.0));
        assert!(bucket_upper_ms(TAIL_BUCKET_FLOOR) >= 10.0);
        assert!(bucket_lower_ms(TAIL_BUCKET_FLOOR) <= 10.0 + 1e-9);
    }

    #[test]
    fn exemplars_retained_only_for_sampled_tail_observations() {
        use crate::TraceId;
        // A trace id the head-sampling rule accepts, found by search so
        // the test does not depend on which ids happen to hash to zero.
        let sampled_trace = (1..10_000u64)
            .map(|s| TraceId::mint(0, s))
            .find(|&t| crate::span::sampled(t))
            .expect("some trace in 10k is sampled at 1-in-32");
        let unsampled_trace = (1..10_000u64)
            .map(|s| TraceId::mint(0, s))
            .find(|&t| !crate::span::sampled(t))
            .unwrap();
        let h = AtomicHistogram::new();
        // Fast observation: never an exemplar, sampled or not.
        h.record_traced(Duration::from_micros(50), sampled_trace);
        assert!(h.exemplar_traces().iter().all(|&t| t == 0));
        // Tail observation with an unsampled trace: counted, no exemplar.
        h.record_traced(Duration::from_millis(80), unsampled_trace);
        assert!(h.exemplar_traces().iter().all(|&t| t == 0));
        // Tail observation with a sampled trace: retained in its bucket.
        h.record_traced(Duration::from_millis(80), sampled_trace);
        let traces = h.exemplar_traces();
        let bucket = bucket_of(80.0);
        assert_eq!(traces[bucket], sampled_trace.0);
        assert_eq!(traces.iter().filter(|&&t| t != 0).count(), 1);
        assert!(bucket >= TAIL_BUCKET_FLOOR);
        // The most recent sampled trace wins.
        let newer = (1..10_000u64)
            .map(|s| TraceId::mint(7, s))
            .find(|&t| crate::span::sampled(t))
            .unwrap();
        h.record_traced(Duration::from_millis(80), newer);
        assert_eq!(h.exemplar_traces()[bucket], newer.0);
        // Counts are unaffected by exemplar bookkeeping.
        assert_eq!(h.snapshot().count(), 4);
    }

    #[test]
    fn windowed_reconstruction_roundtrips() {
        let mut h = LatencyHistogram::new();
        for v in [0.5, 3.0, 42.0, 42.0, 9000.0] {
            h.record(v);
        }
        let rebuilt = LatencyHistogram::from_bucket_counts(h.bucket_counts().to_vec(), h.sum_ms());
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.sum_ms(), h.sum_ms());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(rebuilt.quantile_ms(q), h.quantile_ms(q));
        }
        // Max is approximated by the occupied bucket's edge: at or above
        // the true max, within one bucket's relative error.
        assert!(rebuilt.max_ms() >= h.max_ms());
        assert!(rebuilt.max_ms() <= h.max_ms() * 1.14);
    }

    #[test]
    fn labeled_histograms_route_by_index() {
        let lh = LabeledHistograms::new(&TIER_NAMES);
        lh.record(Tier::Proxy.index(), Duration::from_millis(3));
        lh.record(Tier::Disk.index(), Duration::from_millis(9));
        lh.record(Tier::Origin.index(), Duration::from_millis(40));
        lh.record(Tier::Origin.index(), Duration::from_millis(50));
        assert_eq!(lh.snapshot(Tier::Proxy.index()).count(), 1);
        assert_eq!(lh.snapshot(Tier::Disk.index()).count(), 1);
        assert_eq!(lh.snapshot(Tier::Origin.index()).count(), 2);
        assert_eq!(lh.snapshot(Tier::Local.index()).count(), 0);
        let by_label: Vec<_> = lh.iter().map(|(l, h)| (l, h.count())).collect();
        assert_eq!(
            by_label,
            vec![
                ("local", 0),
                ("proxy", 1),
                ("disk", 1),
                ("peer", 0),
                ("origin", 2)
            ]
        );
    }
}
