//! Causal spans: ids, head sampling, the JSONL export format, and
//! span-tree assembly.
//!
//! A span is one timed step of a request — the client's whole fetch, the
//! proxy's shard wait, one peer probe, the origin's serve — tied into a
//! tree by `(trace_id, span_id, parent_span_id)`. The requesting client
//! mints the root span next to the [`TraceId`]; every wire hop forwards
//! the current span id in a `Span-Id` header, and the receiving component
//! records its own work as children of it. Reassembling the recorded
//! spans (here, [`assemble`]) reconstructs the request's causal path
//! client→proxy→(disk|peer|origin) across processes.
//!
//! # Head sampling
//!
//! Recording every span of every request would blow the always-on ≤3%
//! overhead budget, so tracing is **head-sampled**: the decision to trace
//! is a pure function of the trace id ([`sampled`]), made identically by
//! every component with no coordination and no extra wire state. One in
//! [`SAMPLE_ONE_IN`] traces is recorded; the rest fall back to the old
//! selective slow/multi-hop flight-recorder events. Because
//! [`TraceId::mint`] is deterministic in `(client, seq)`, sampling is
//! reproducible run-to-run — the same requests of a seeded workload are
//! traced every time.
//!
//! # Export format
//!
//! The `TRACE BAPS/1.0` verb dumps the ring's sampled spans as JSON
//! Lines, one object per span:
//!
//! ```text
//! {"trace":"0000010000000002","span":"000000000000000b","parent":"0000000000000000",
//!  "kind":"fetch","start_us":1234,"dur_us":567,"detail":"client=0 url=..."}
//! ```
//!
//! `parent` is all-zero for root spans. [`parse_jsonl`] reads the format
//! back; [`assemble`] groups records by trace and attaches each span to
//! its parent, promoting spans whose parent was dropped from the bounded
//! ring to roots — a dangling orphan is impossible by construction.

use crate::trace::TraceId;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

/// A span id: unique per recorded span, minted from a process-global
/// counter. `SpanId(0)` is the reserved "no span" value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The "no span" placeholder (events recorded outside any sampled
    /// trace, and the parent of a root span).
    pub const NONE: SpanId = SpanId(0);

    /// Mints a fresh, process-unique span id.
    pub fn mint() -> SpanId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        SpanId(NEXT.fetch_add(1, Ordering::Relaxed))
    }

    /// Whether this is the [`SpanId::NONE`] placeholder.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl FromStr for SpanId {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<SpanId, Self::Err> {
        u64::from_str_radix(s, 16).map(SpanId)
    }
}

/// One in this many traces is head-sampled for span recording. The rate
/// errs cheap on purpose: a sampled fast-path request pays ~3 ring
/// appends with detail allocations (fetch root, shard wait, verify), and
/// the overhead estimator's noise floor on a 1-CPU host (§9) is too high
/// to resolve that cost — at 1-in-8 vs 1-in-32 the A/B readings were
/// indistinguishable from the untouched baseline's. So the budget is
/// protected by construction, not by a reading: 1-in-32 keeps sampled
/// work an epsilon of the request stream while a few seconds of load
/// still dumps hundreds of complete trees.
pub const SAMPLE_ONE_IN: u64 = 32;

/// Deterministic head-sampling decision for a trace: a pure hash of the
/// trace id, so the client, proxy, peers and origin all agree with no
/// coordination. [`TraceId::NONE`] is never sampled.
pub fn sampled(trace: TraceId) -> bool {
    if trace.is_none() {
        return false;
    }
    // Fibonacci multiplicative hash; the top bits are well mixed even
    // though minted ids differ only in low seq bits and a small client
    // field. Sampled iff the top log2(SAMPLE_ONE_IN) bits are zero.
    let h = trace.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h >> (64 - SAMPLE_ONE_IN.trailing_zeros()) == 0
}

/// Mints a span id for one hop of a head-sampled trace ([`SpanId::NONE`]
/// otherwise). Minted *before* the hop runs so an outbound wire message
/// can carry the id in its `Span-Id` header — the downstream process's
/// spans then attach under it.
pub fn hop(trace: TraceId) -> SpanId {
    if sampled(trace) {
        SpanId::mint()
    } else {
        SpanId::NONE
    }
}

/// One span as exported/parsed on the `TRACE` wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The request this span belongs to.
    pub trace: TraceId,
    /// This span's id (never [`SpanId::NONE`] in a valid record).
    pub span: SpanId,
    /// The parent span, [`SpanId::NONE`] for roots.
    pub parent: SpanId,
    /// The span kind name (an [`EventKind::name`](crate::EventKind::name)).
    pub kind: String,
    /// Start time, microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Free-form context carried over from the event.
    pub detail: String,
}

impl SpanRecord {
    /// End time, microseconds since the recorder's epoch.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }

    /// Renders the record as one JSONL line (no trailing newline).
    pub fn render_line(&self) -> String {
        format!(
            "{{\"trace\":\"{}\",\"span\":\"{}\",\"parent\":\"{}\",\"kind\":\"{}\",\
             \"start_us\":{},\"dur_us\":{},\"detail\":\"{}\"}}",
            self.trace,
            self.span,
            self.parent,
            escape(&self.kind),
            self.start_us,
            self.dur_us,
            escape(&self.detail),
        )
    }

    /// Parses one JSONL line produced by [`render_line`](Self::render_line)
    /// (or any flat JSON object with the same fields).
    pub fn parse_line(line: &str) -> Result<SpanRecord, String> {
        let fields = parse_flat_object(line)?;
        let text = |name: &str| -> Result<&str, String> {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("span record missing {name:?}: {line}"))
        };
        let num = |name: &str| -> Result<u64, String> {
            text(name)?
                .parse()
                .map_err(|e| format!("bad {name} in span record: {e}"))
        };
        let hex = |name: &str| -> Result<u64, String> {
            u64::from_str_radix(text(name)?, 16)
                .map_err(|e| format!("bad {name} in span record: {e}"))
        };
        let record = SpanRecord {
            trace: TraceId(hex("trace")?),
            span: SpanId(hex("span")?),
            parent: SpanId(hex("parent")?),
            kind: text("kind")?.to_owned(),
            start_us: num("start_us")?,
            dur_us: num("dur_us")?,
            detail: text("detail")?.to_owned(),
        };
        if record.span.is_none() {
            return Err(format!("span record with a zero span id: {line}"));
        }
        Ok(record)
    }
}

/// Parses a whole JSONL dump (blank lines skipped).
pub fn parse_jsonl(text: &str) -> Result<Vec<SpanRecord>, String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(SpanRecord::parse_line)
        .collect()
}

/// JSON string escaping for the hand-rendered export (the workspace's
/// serde is a no-op shim, so every JSON writer in-tree renders by hand).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one flat JSON object (`{"k":"v","n":12,...}`) into key/value
/// pairs; numbers come back as their decimal text. Only what the span
/// format needs: string and unsigned-integer values, no nesting.
fn parse_flat_object(line: &str) -> Result<Vec<(String, String)>, String> {
    let bytes: Vec<char> = line.trim().chars().collect();
    let mut i = 0usize;
    let err = |msg: &str, at: usize| format!("{msg} at char {at}: {line}");
    let expect = |chars: &mut usize, want: char| -> Result<(), String> {
        if bytes.get(*chars) == Some(&want) {
            *chars += 1;
            Ok(())
        } else {
            Err(err(&format!("expected {want:?}"), *chars))
        }
    };
    let parse_string = |i: &mut usize| -> Result<String, String> {
        if bytes.get(*i) != Some(&'"') {
            return Err(err("expected string", *i));
        }
        *i += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*i) {
                None => return Err(err("unterminated string", *i)),
                Some('"') => {
                    *i += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    *i += 1;
                    match bytes.get(*i) {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('/') => out.push('/'),
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('u') => {
                            let hex: String = bytes
                                .get(*i + 1..*i + 5)
                                .unwrap_or_default()
                                .iter()
                                .collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|e| err(&format!("bad \\u escape: {e}"), *i))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *i += 4;
                        }
                        _ => return Err(err("bad escape", *i)),
                    }
                    *i += 1;
                }
                Some(&c) => {
                    out.push(c);
                    *i += 1;
                }
            }
        }
    };
    let mut fields = Vec::new();
    expect(&mut i, '{')?;
    if bytes.get(i) == Some(&'}') {
        return Ok(fields);
    }
    loop {
        let key = parse_string(&mut i)?;
        expect(&mut i, ':')?;
        let value = match bytes.get(i) {
            Some('"') => parse_string(&mut i)?,
            Some(c) if c.is_ascii_digit() => {
                let start = i;
                while bytes.get(i).is_some_and(|c| c.is_ascii_digit()) {
                    i += 1;
                }
                bytes[start..i].iter().collect()
            }
            _ => return Err(err("expected string or number value", i)),
        };
        fields.push((key, value));
        match bytes.get(i) {
            Some(',') => i += 1,
            Some('}') => {
                i += 1;
                break;
            }
            _ => return Err(err("expected ',' or '}'", i)),
        }
    }
    if i != bytes.len() {
        return Err(err("trailing garbage", i));
    }
    Ok(fields)
}

/// One span with its assembled children.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span itself.
    pub record: SpanRecord,
    /// Child spans, ordered by `(start_us, span id)`.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Visits this node and every descendant depth-first, with depth 0 at
    /// this node.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a SpanNode, usize)) {
        fn inner<'a>(node: &'a SpanNode, depth: usize, f: &mut impl FnMut(&'a SpanNode, usize)) {
            f(node, depth);
            for child in &node.children {
                inner(child, depth + 1, f);
            }
        }
        inner(self, 0, f);
    }

    /// All records in the subtree, depth-first.
    pub fn records(&self) -> Vec<&SpanRecord> {
        let mut out = Vec::new();
        self.walk(&mut |n, _| out.push(&n.record));
        out
    }

    /// Whether any span in the subtree has this kind name.
    pub fn contains_kind(&self, kind: &str) -> bool {
        let mut found = false;
        self.walk(&mut |n, _| found |= n.record.kind == kind);
        found
    }

    /// Deepest level in the subtree (0 for a leaf root).
    pub fn max_depth(&self) -> usize {
        let mut max = 0;
        self.walk(&mut |_, d| max = max.max(d));
        max
    }

    /// This span's duration minus its children's — the time attributable
    /// to this step itself on the critical path.
    pub fn self_us(&self) -> u64 {
        let child_sum: u64 = self.children.iter().map(|c| c.record.dur_us).sum();
        self.record.dur_us.saturating_sub(child_sum)
    }
}

/// One assembled span tree.
#[derive(Debug, Clone)]
pub struct SpanTree {
    /// The trace every span in the tree shares.
    pub trace: TraceId,
    /// The root span (a true root, or a span whose parent was dropped
    /// from the bounded ring and was promoted).
    pub root: SpanNode,
}

/// Assembles span records into trees.
///
/// Records are grouped by trace and each span is attached to its parent
/// when that parent is present in the input; a span whose parent is
/// missing (head of the request, or the parent fell off the bounded ring)
/// becomes a tree root. Every input record lands in exactly one tree —
/// orphans are impossible. Assembly is deterministic and independent of
/// input order: trees are sorted by `(trace, root start, root span id)`
/// and children by `(start_us, span id)`; duplicate span ids keep the
/// first record seen in that order.
pub fn assemble(records: &[SpanRecord]) -> Vec<SpanTree> {
    use std::collections::{HashMap, HashSet};

    let mut sorted: Vec<&SpanRecord> = records.iter().filter(|r| !r.span.is_none()).collect();
    sorted.sort_by_key(|r| (r.trace, r.start_us, r.span));
    sorted.dedup_by_key(|r| (r.trace, r.span));

    let present: HashSet<(TraceId, SpanId)> = sorted.iter().map(|r| (r.trace, r.span)).collect();
    // Child lists keyed by the parent; a record is a root when its parent
    // is absent, NONE, or itself (defensive against malformed input).
    let mut children: HashMap<(TraceId, SpanId), Vec<&SpanRecord>> = HashMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for r in &sorted {
        if r.parent.is_none() || r.parent == r.span || !present.contains(&(r.trace, r.parent)) {
            roots.push(r);
        } else {
            children.entry((r.trace, r.parent)).or_default().push(r);
        }
    }

    // Build each tree iteratively, tracking what was reached so that a
    // parent cycle in malformed input (a→b→a) still surfaces every record
    // rather than silently vanishing.
    let mut reached: HashSet<(TraceId, SpanId)> = HashSet::new();
    fn build(
        record: &SpanRecord,
        children: &std::collections::HashMap<(TraceId, SpanId), Vec<&SpanRecord>>,
        reached: &mut std::collections::HashSet<(TraceId, SpanId)>,
    ) -> SpanNode {
        reached.insert((record.trace, record.span));
        let mut kids = Vec::new();
        if let Some(list) = children.get(&(record.trace, record.span)) {
            for c in list {
                if !reached.contains(&(c.trace, c.span)) {
                    kids.push(build(c, children, reached));
                }
            }
        }
        SpanNode {
            record: record.clone(),
            children: kids,
        }
    }
    let mut trees: Vec<SpanTree> = roots
        .iter()
        .map(|r| SpanTree {
            trace: r.trace,
            root: build(r, &children, &mut reached),
        })
        .collect();
    // Cycle members reachable from no root: promote in sorted order.
    for r in &sorted {
        if !reached.contains(&(r.trace, r.span)) {
            trees.push(SpanTree {
                trace: r.trace,
                root: build(r, &children, &mut reached),
            });
        }
    }
    trees.sort_by_key(|t| (t.trace, t.root.record.start_us, t.root.record.span));
    trees
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: u64, span: u64, parent: u64, kind: &str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            trace: TraceId(trace),
            span: SpanId(span),
            parent: SpanId(parent),
            kind: kind.to_owned(),
            start_us: start,
            dur_us: dur,
            detail: format!("kind={kind}"),
        }
    }

    #[test]
    fn mint_is_unique_across_threads() {
        let ids: Vec<SpanId> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| (0..100).map(|_| SpanId::mint()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
        assert!(!set.contains(&SpanId::NONE));
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_one_in_n() {
        assert!(!sampled(TraceId::NONE));
        let mut hits = 0u64;
        let total = 8_000u64;
        for client in 0..4u32 {
            for seq in 0..total / 4 {
                let t = TraceId::mint(client, seq);
                assert_eq!(sampled(t), sampled(t), "pure function");
                if sampled(t) {
                    hits += 1;
                }
            }
        }
        let expect = total / SAMPLE_ONE_IN;
        assert!(
            hits > expect / 2 && hits < expect * 2,
            "sampled {hits} of {total}, expected ~{expect}"
        );
    }

    #[test]
    fn jsonl_roundtrip_with_escapes() {
        let original = SpanRecord {
            trace: TraceId::mint(2, 7),
            span: SpanId(0x2a),
            parent: SpanId::NONE,
            kind: "fetch".to_owned(),
            start_us: 1234,
            dur_us: 567,
            detail: "url=\"http://a/b\" note=tab\there\nnewline \\slash".to_owned(),
        };
        let line = original.render_line();
        let back = SpanRecord::parse_line(&line).unwrap();
        assert_eq!(back, original);
        let many = format!("{line}\n\n{line}\n");
        assert_eq!(parse_jsonl(&many).unwrap().len(), 2);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "not json",
            "{\"trace\":\"xyz\",\"span\":\"1\",\"parent\":\"0\",\"kind\":\"f\",\
             \"start_us\":1,\"dur_us\":1,\"detail\":\"\"}",
            "{\"span\":\"1\"}",
            "{\"trace\":\"1\",\"span\":\"0\",\"parent\":\"0\",\"kind\":\"f\",\
             \"start_us\":1,\"dur_us\":1,\"detail\":\"\"}",
            "{\"trace\":\"1\",\"span\":\"1\",\"parent\":\"0\",\"kind\":\"f\",\
             \"start_us\":1,\"dur_us\":1,\"detail\":\"\"} extra",
        ] {
            assert!(SpanRecord::parse_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn assembles_nested_tree() {
        let records = vec![
            rec(9, 1, 0, "fetch", 0, 100),
            rec(9, 2, 1, "dial", 5, 10),
            rec(9, 3, 1, "origin-fetch", 20, 50),
            rec(9, 4, 3, "origin-serve", 25, 30),
        ];
        let trees = assemble(&records);
        assert_eq!(trees.len(), 1);
        let root = &trees[0].root;
        assert_eq!(root.record.kind, "fetch");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].record.kind, "dial");
        assert_eq!(root.children[1].record.kind, "origin-fetch");
        assert_eq!(root.children[1].children[0].record.kind, "origin-serve");
        assert_eq!(root.max_depth(), 2);
        assert!(root.contains_kind("origin-serve"));
        assert_eq!(root.self_us(), 100 - 10 - 50);
    }

    #[test]
    fn dropped_parent_promotes_children_to_roots() {
        // The root (span 1) fell off the ring: both children must still
        // appear, each as its own tree — never silently dropped.
        let records = vec![rec(9, 2, 1, "dial", 5, 10), rec(9, 3, 1, "verify", 20, 5)];
        let trees = assemble(&records);
        assert_eq!(trees.len(), 2);
        let total: usize = trees.iter().map(|t| t.root.records().len()).sum();
        assert_eq!(total, records.len());
    }

    #[test]
    fn assembly_is_order_independent() {
        let mut records = vec![
            rec(9, 1, 0, "fetch", 0, 100),
            rec(9, 2, 1, "dial", 5, 10),
            rec(9, 3, 1, "peer-probe", 20, 50),
            rec(7, 4, 0, "fetch", 3, 9),
        ];
        let a = assemble(&records);
        records.reverse();
        let b = assemble(&records);
        let flat = |trees: &[SpanTree]| -> Vec<(u64, u64, String)> {
            trees
                .iter()
                .flat_map(|t| {
                    let mut out = Vec::new();
                    t.root.walk(&mut |n, d| {
                        out.push((n.record.span.0, d as u64, n.record.kind.clone()))
                    });
                    out
                })
                .collect()
        };
        assert_eq!(flat(&a), flat(&b));
    }

    #[test]
    fn malformed_cycles_still_surface_every_record() {
        let records = vec![
            rec(9, 1, 2, "a", 0, 10),
            rec(9, 2, 1, "b", 1, 5),
            rec(9, 5, 5, "self-parent", 7, 1),
        ];
        let trees = assemble(&records);
        let total: usize = trees.iter().map(|t| t.root.records().len()).sum();
        assert_eq!(total, 3, "no record may vanish: {trees:#?}");
    }
}
