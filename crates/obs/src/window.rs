//! Windowed telemetry: rolling rates and windowed quantiles over the
//! always-on cumulative atomics.
//!
//! Every counter the runtime exposes is cumulative-since-start, which is
//! the right wire contract (Prometheus rate math needs monotonic series)
//! but the wrong shape for a health verdict: "how many origin fetches
//! ever" says nothing about the fallback rate *right now*. The
//! [`WindowRing`] closes that gap without touching the hot path: a
//! sampler thread captures the cumulative values once per second into a
//! lock-free ring of per-second slots, and a reader differences two
//! captures to get exact deltas over any window the ring still covers.
//!
//! Two deliberate design choices:
//!
//! * **Slots hold cumulative captures, not deltas.** A window is the
//!   difference of its endpoint captures, so the per-second deltas
//!   telescope away: a reader racing the writer can never double-count a
//!   second or observe a negative delta — the failure modes a
//!   delta-per-slot ring has to defend against are unrepresentable here.
//!   (The per-second delta is still available: it is the difference of
//!   adjacent captures.)
//! * **Seqlock slots, single writer.** Each slot carries a sequence
//!   counter (odd = write in progress); the one sampler thread bumps it
//!   around its stores and readers retry on a torn read. No locks, no
//!   allocation on the write path, and a stalled reader can never block
//!   the sampler.
//!
//! The capture layout is schema'd: `counters` plain `u64`s first, then
//! `hists` histograms of [`HIST_SLOTS`] values each (the [`NBUCKETS`]
//! bucket counts plus the cumulative sum in nanoseconds), so windowed
//! quantiles come from the same log-scale buckets as the lifetime ones.

use crate::hist::{LatencyHistogram, NBUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};

/// Values per histogram in a capture: the bucket counts plus the
/// cumulative observation sum in nanoseconds (for windowed means).
pub const HIST_SLOTS: usize = NBUCKETS + 1;

/// Capture layout: how many plain counters, then how many histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSchema {
    /// Plain cumulative counters at the front of each capture.
    pub counters: usize,
    /// Histograms following them, [`HIST_SLOTS`] values each.
    pub hists: usize,
}

impl WindowSchema {
    /// Total `u64` values per capture.
    pub fn width(&self) -> usize {
        self.counters + self.hists * HIST_SLOTS
    }
}

/// Appends a histogram snapshot to a capture buffer in ring layout
/// ([`NBUCKETS`] cumulative bucket counts, then the cumulative sum in
/// integer nanoseconds).
pub fn push_hist(buf: &mut Vec<u64>, h: &LatencyHistogram) {
    buf.extend_from_slice(h.bucket_counts());
    buf.push((h.sum_ms() * 1e6) as u64);
}

/// One seqlock-protected per-second slot.
struct Slot {
    /// Odd while the writer is mid-store; readers retry until even and
    /// unchanged across their copy.
    seq: AtomicU64,
    /// Absolute second this slot currently holds (u64::MAX = never
    /// written).
    sec: AtomicU64,
    values: Box<[AtomicU64]>,
}

impl Slot {
    fn new(width: usize) -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            sec: AtomicU64::new(u64::MAX),
            values: (0..width).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Seqlock write: only the sampler thread calls this.
    fn store(&self, sec: u64, values: &[u64]) {
        self.seq.fetch_add(1, Ordering::Release); // now odd
        self.sec.store(sec, Ordering::Relaxed);
        for (slot, &v) in self.values.iter().zip(values) {
            slot.store(v, Ordering::Relaxed);
        }
        self.seq.fetch_add(1, Ordering::Release); // even again
    }

    /// Seqlock read: `None` if the slot is unwritten or the writer kept
    /// racing us past the retry budget (the caller just skips the slot).
    fn load(&self) -> Option<(u64, Vec<u64>)> {
        for _ in 0..64 {
            let before = self.seq.load(Ordering::Acquire);
            if before & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let sec = self.sec.load(Ordering::Relaxed);
            let values: Vec<u64> = self
                .values
                .iter()
                .map(|v| v.load(Ordering::Relaxed))
                .collect();
            if self.seq.load(Ordering::Acquire) == before {
                return (sec != u64::MAX).then_some((sec, values));
            }
        }
        None
    }
}

/// How many per-second captures the ring retains. Two minutes of slack
/// over the longest (60 s) window, so a 60 s query's start capture is
/// still present while the writer rotates at the other end.
pub const DEFAULT_CAPACITY: usize = 128;

/// A lock-free ring of per-second cumulative captures (see the module
/// docs for why captures, not deltas).
pub struct WindowRing {
    schema: WindowSchema,
    slots: Vec<Slot>,
    /// Largest second ever ingested, stored as `sec + 1` so the empty
    /// sentinel (0) composes with `fetch_max`.
    latest: AtomicU64,
}

impl WindowRing {
    /// An empty ring retaining `capacity` per-second captures.
    pub fn new(schema: WindowSchema, capacity: usize) -> WindowRing {
        assert!(
            capacity >= 2,
            "a ring needs at least two captures to difference"
        );
        WindowRing {
            schema,
            slots: (0..capacity).map(|_| Slot::new(schema.width())).collect(),
            latest: AtomicU64::new(0),
        }
    }

    /// The capture layout this ring was built with.
    pub fn schema(&self) -> WindowSchema {
        self.schema
    }

    /// Stores the cumulative capture for absolute second `sec`. Values
    /// must follow the ring's schema; the sampler calls this once per
    /// second (a re-capture within the same second overwrites, keeping
    /// the newer cumulative). Single-writer: one sampler thread.
    pub fn ingest(&self, sec: u64, values: &[u64]) {
        assert_eq!(values.len(), self.schema.width(), "capture width mismatch");
        self.slots[(sec as usize) % self.slots.len()].store(sec, values);
        self.latest.fetch_max(sec + 1, Ordering::AcqRel);
    }

    /// The newest ingested second, if any.
    pub fn latest_sec(&self) -> Option<u64> {
        self.latest.load(Ordering::Acquire).checked_sub(1)
    }

    /// Deltas over (up to) the trailing `want_secs` seconds: the newest
    /// capture minus the newest capture at least `want_secs` older (or
    /// the oldest still in the ring, when the process is younger than the
    /// window). `None` until two captures exist. Every returned delta is
    /// exact — the difference of two cumulative captures — so it can
    /// never double-count a rotation or go negative.
    pub fn window(&self, want_secs: u64) -> Option<WindowSnapshot> {
        let latest = self.latest_sec()?;
        // Collect every valid capture not newer than `latest`. The ring
        // is small (128 slots) and this runs at scrape frequency, so a
        // scan beats clever slot arithmetic that would have to reason
        // about writer races.
        let mut captures: Vec<(u64, Vec<u64>)> = self
            .slots
            .iter()
            .filter_map(Slot::load)
            .filter(|(sec, _)| *sec <= latest)
            .collect();
        captures.sort_by_key(|(sec, _)| *sec);
        let (end_sec, end) = captures.pop()?;
        let cutoff = end_sec.saturating_sub(want_secs);
        // Newest capture at or before the cutoff; else the oldest we have.
        let start_idx = match captures.iter().rposition(|(sec, _)| *sec <= cutoff) {
            Some(i) => i,
            None if !captures.is_empty() => 0,
            None => return None,
        };
        let (start_sec, start) = &captures[start_idx];
        Some(WindowSnapshot {
            start_sec: *start_sec,
            end_sec,
            schema: self.schema,
            deltas: end
                .iter()
                .zip(start)
                .map(|(e, s)| e.saturating_sub(*s))
                .collect(),
        })
    }
}

/// Exact deltas between two cumulative captures: everything that happened
/// in `(start_sec, end_sec]`.
#[derive(Debug, Clone)]
pub struct WindowSnapshot {
    /// Second of the start capture (exclusive edge of the window).
    pub start_sec: u64,
    /// Second of the end capture (inclusive edge of the window).
    pub end_sec: u64,
    schema: WindowSchema,
    deltas: Vec<u64>,
}

impl WindowSnapshot {
    /// Seconds the window actually covers (may be shorter than asked for
    /// on a young process, or longer when captures were missed).
    pub fn span_secs(&self) -> u64 {
        self.end_sec - self.start_sec
    }

    /// Delta of plain counter `i` over the window.
    pub fn counter(&self, i: usize) -> u64 {
        assert!(i < self.schema.counters);
        self.deltas[i]
    }

    /// Per-second rate of counter `i` (0 when the span is empty).
    pub fn rate(&self, i: usize) -> f64 {
        let span = self.span_secs();
        if span == 0 {
            0.0
        } else {
            self.counter(i) as f64 / span as f64
        }
    }

    /// The windowed histogram at index `i`, reconstructed from the bucket
    /// deltas — quantiles over it describe only this window. The maximum
    /// is approximated by the upper edge of the highest occupied bucket
    /// (the exact max is not recoverable from bucket deltas).
    pub fn hist(&self, i: usize) -> LatencyHistogram {
        assert!(i < self.schema.hists);
        let base = self.schema.counters + i * HIST_SLOTS;
        let counts = self.deltas[base..base + NBUCKETS].to_vec();
        let sum_ms = self.deltas[base + NBUCKETS] as f64 / 1e6;
        LatencyHistogram::from_bucket_counts(counts, sum_ms)
    }

    /// Merges another window's deltas into this one (counters add,
    /// histogram buckets add), widening the covered range to the union —
    /// the shape a federated scrape needs to fold per-proxy windows into
    /// one verdict. Both snapshots must share a schema.
    pub fn merge(&mut self, other: &WindowSnapshot) {
        assert_eq!(self.schema, other.schema, "schema mismatch in window merge");
        for (a, b) in self.deltas.iter_mut().zip(&other.deltas) {
            *a += b;
        }
        self.start_sec = self.start_sec.min(other.start_sec);
        self.end_sec = self.end_sec.max(other.end_sec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const SCHEMA: WindowSchema = WindowSchema {
        counters: 2,
        hists: 1,
    };

    fn capture(a: u64, b: u64, h: &LatencyHistogram) -> Vec<u64> {
        let mut v = vec![a, b];
        push_hist(&mut v, h);
        v
    }

    #[test]
    fn empty_ring_has_no_window() {
        let ring = WindowRing::new(SCHEMA, 8);
        assert!(ring.window(10).is_none());
        assert!(ring.latest_sec().is_none());
    }

    #[test]
    fn single_capture_has_no_window() {
        let ring = WindowRing::new(SCHEMA, 8);
        ring.ingest(0, &capture(0, 0, &LatencyHistogram::new()));
        assert!(ring.window(10).is_none());
    }

    #[test]
    fn window_differences_endpoint_captures() {
        let ring = WindowRing::new(SCHEMA, 128);
        let mut h = LatencyHistogram::new();
        ring.ingest(0, &capture(0, 0, &h));
        h.record(5.0);
        ring.ingest(1, &capture(10, 1, &h));
        h.record(50.0);
        h.record(50.0);
        ring.ingest(2, &capture(25, 1, &h));
        // Trailing 1 s: second 2 only.
        let w = ring.window(1).unwrap();
        assert_eq!((w.start_sec, w.end_sec), (1, 2));
        assert_eq!(w.counter(0), 15);
        assert_eq!(w.counter(1), 0);
        assert_eq!(w.rate(0), 15.0);
        let wh = w.hist(0);
        assert_eq!(wh.count(), 2);
        assert!(
            wh.quantile_ms(0.5) > 5.0,
            "5 ms sample belongs to the older second"
        );
        // Trailing 10 s on a 2 s old ring: everything.
        let w = ring.window(10).unwrap();
        assert_eq!((w.start_sec, w.end_sec), (0, 2));
        assert_eq!(w.counter(0), 25);
        assert_eq!(w.hist(0).count(), 3);
        assert!((w.hist(0).sum_ms() - 105.0).abs() < 1e-3);
    }

    #[test]
    fn rotation_drops_old_captures() {
        let ring = WindowRing::new(SCHEMA, 8);
        let h = LatencyHistogram::new();
        for sec in 0..100u64 {
            ring.ingest(sec, &capture(sec * 10, 0, &h));
        }
        // Only the last 8 captures survive; a 60 s ask degrades to them.
        let w = ring.window(60).unwrap();
        assert_eq!(w.end_sec, 99);
        assert!(w.start_sec >= 92);
        assert_eq!(w.counter(0), (99 - w.start_sec) * 10);
    }

    #[test]
    fn recapture_within_a_second_keeps_newer_values() {
        let ring = WindowRing::new(SCHEMA, 8);
        let h = LatencyHistogram::new();
        ring.ingest(0, &capture(0, 0, &h));
        ring.ingest(5, &capture(40, 0, &h));
        ring.ingest(5, &capture(70, 0, &h));
        let w = ring.window(60).unwrap();
        assert_eq!(w.counter(0), 70);
        assert_eq!(w.span_secs(), 5);
    }

    #[test]
    fn merge_adds_deltas_and_widens_range() {
        let ring = WindowRing::new(SCHEMA, 16);
        let mut h = LatencyHistogram::new();
        ring.ingest(0, &capture(0, 0, &h));
        h.record(1.0);
        ring.ingest(4, &capture(7, 2, &h));
        let mut a = ring.window(60).unwrap();
        let b = ring.window(60).unwrap();
        a.merge(&b);
        assert_eq!(a.counter(0), 14);
        assert_eq!(a.counter(1), 4);
        assert_eq!(a.hist(0).count(), 2);
        assert_eq!((a.start_sec, a.end_sec), (0, 4));
    }

    #[test]
    fn snapshot_during_rotation_never_goes_negative_or_double_counts() {
        // A writer ingesting monotone cumulative captures as fast as it
        // can, racing readers taking windows: every observed delta must
        // stay within the cumulative total (no double-count) and the
        // snapshot must be internally consistent (derived count == bucket
        // sum). The seqlock retry makes torn captures unobservable.
        let ring = Arc::new(WindowRing::new(
            WindowSchema {
                counters: 1,
                hists: 0,
            },
            8,
        ));
        let writer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut total = 0u64;
                for sec in 0..20_000u64 {
                    total += sec % 7;
                    ring.ingest(sec, &[total]);
                }
                total
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    let mut last_end = 0u64;
                    for _ in 0..10_000 {
                        if let Some(w) = ring.window(3) {
                            assert!(w.end_sec >= w.start_sec);
                            // The end capture can wobble a little between
                            // scans (a mid-write slot is skipped, and the
                            // writer touches different slots during
                            // different scans) but never by more than the
                            // ring's span.
                            assert!(
                                w.end_sec + 8 >= last_end,
                                "window end rewound past the ring span"
                            );
                            last_end = last_end.max(w.end_sec);
                            // 6 is the max per-second increment; the ring
                            // holds 8 captures, so no honest window can
                            // exceed the whole ring's worth of increments.
                            assert!(w.counter(0) <= 6 * 8, "delta {} too large", w.counter(0));
                        }
                    }
                })
            })
            .collect();
        let final_total = writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        let w = ring.window(1).unwrap();
        assert!(w.counter(0) <= final_total);
    }
}
