//! Per-request trace ids.
//!
//! A [`TraceId`] is minted by the requesting `ClientAgent` (one per
//! `fetch`, shared by its retries) and travels in the `Trace-Id` header of
//! every hop the request takes — GET to the proxy, PEERGET/PUSH to a
//! holder, GET to the origin — so one request can be followed through the
//! flight-recorder events of every component it touched.

use std::fmt;
use std::str::FromStr;

/// Bits of a [`TraceId`] carrying the per-client sequence number.
const SEQ_BITS: u32 = 40;

/// A request trace id: the minting client in the high 24 bits, a
/// per-client sequence below, rendered as 16 hex digits on the wire.
/// `TraceId(0)` is the reserved "no trace" value for events recorded
/// outside any request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The "no trace" placeholder.
    pub const NONE: TraceId = TraceId(0);

    /// Mints the id for `client`'s `seq`-th request. The `client + 1`
    /// offset keeps even client 0's first request distinct from
    /// [`TraceId::NONE`].
    pub fn mint(client: u32, seq: u64) -> TraceId {
        TraceId(((client as u64 + 1) << SEQ_BITS) | (seq & ((1 << SEQ_BITS) - 1)))
    }

    /// Whether this is the [`TraceId::NONE`] placeholder.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The client that minted this id (`None` for [`TraceId::NONE`]).
    pub fn client(self) -> Option<u32> {
        ((self.0 >> SEQ_BITS) as u32).checked_sub(1)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl FromStr for TraceId {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<TraceId, Self::Err> {
        u64::from_str_radix(s, 16).map(TraceId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_is_injective_across_clients_and_seqs() {
        let mut seen = std::collections::HashSet::new();
        for client in [0, 1, 5, 1000] {
            for seq in [0, 1, 2, 999, (1u64 << SEQ_BITS) - 1] {
                assert!(seen.insert(TraceId::mint(client, seq)));
            }
        }
        assert!(!seen.contains(&TraceId::NONE));
    }

    #[test]
    fn display_parse_roundtrip() {
        for t in [TraceId::NONE, TraceId::mint(0, 0), TraceId::mint(7, 42)] {
            let s = t.to_string();
            assert_eq!(s.len(), 16);
            assert_eq!(s.parse::<TraceId>().unwrap(), t);
        }
        assert!("not-hex".parse::<TraceId>().is_err());
    }

    #[test]
    fn client_recovered_from_id() {
        assert_eq!(TraceId::mint(3, 77).client(), Some(3));
        assert_eq!(TraceId::NONE.client(), None);
    }
}
