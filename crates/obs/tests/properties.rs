//! Property-based tests of the histogram invariants the METRICS pipeline
//! leans on: merging distributed recordings is lossless, and quantile
//! estimates stay monotone and inside the documented bucket error bound.
//! Plus the span-tree assembly invariants the `TRACE` pipeline leans on:
//! no record is ever orphaned (even when the bounded ring dropped
//! arbitrary spans), parent links are honoured, and assembly is
//! deterministic and independent of input order.
//!
//! The recording-switch test lives here too (not in `hist.rs` unit tests)
//! because it flips process-global state: this file's proptests only use
//! the ungated `LatencyHistogram`, so the switch can't race them.

use baps_obs::hist::{LatencyHistogram, BUCKETS_PER_DECADE};
use baps_obs::span::{assemble, SpanRecord};
use baps_obs::{
    EventKind, FlightRecorder, LabeledHistograms, SpanId, TraceId, WindowRing, WindowSchema,
};
use proptest::prelude::*;
use std::time::Duration;

/// Latency samples in ms, kept inside the histogram's exact range (above
/// the underflow clamp, below the overflow bucket) so the error bound is
/// the per-bucket one, not a clamp artifact.
fn samples_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-3f64..1e4, 1..400)
}

/// One bucket spans this factor; a quantile estimate (the lower edge of
/// the rank's bucket) is below the true sample by at most this ratio.
fn bucket_width() -> f64 {
    10f64.powf(1.0 / BUCKETS_PER_DECADE)
}

proptest! {
    /// Recording shards separately and merging is indistinguishable from
    /// recording everything into one histogram — the property that lets
    /// live_load merge per-worker histograms and the proxy merge
    /// per-shard cache stats without skewing the tails.
    #[test]
    fn merge_equals_single_recording(samples in samples_strategy(), split in 0usize..400) {
        let split = split.min(samples.len());
        let mut whole = LatencyHistogram::new();
        let (mut left, mut right) = (LatencyHistogram::new(), LatencyHistogram::new());
        for (i, &ms) in samples.iter().enumerate() {
            whole.record(ms);
            if i < split { &mut left } else { &mut right }.record(ms);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert_eq!(left.max_ms(), whole.max_ms());
        prop_assert!((left.sum_ms() - whole.sum_ms()).abs() < 1e-6 * whole.sum_ms().max(1.0));
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(left.quantile_ms(q), whole.quantile_ms(q));
        }
        let a: Vec<(f64, u64)> = left.buckets().collect();
        let b: Vec<(f64, u64)> = whole.buckets().collect();
        prop_assert_eq!(a, b);
    }

    /// Quantiles never decrease as `q` grows, and each estimate brackets
    /// the true order statistic: at most the sample itself, at least the
    /// sample divided by one bucket width (~13.7% relative error).
    #[test]
    fn quantiles_monotone_and_within_bucket_error(samples in samples_strategy()) {
        let mut h = LatencyHistogram::new();
        for &ms in &samples {
            h.record(ms);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let width = bucket_width();
        let mut prev = 0.0;
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let est = h.quantile_ms(q);
            prop_assert!(est >= prev, "quantile_ms({q}) regressed: {est} < {prev}");
            prev = est;
            let rank = ((sorted.len() as f64) * q).ceil().max(1.0) as usize;
            let truth = sorted[rank - 1];
            prop_assert!(est <= truth * (1.0 + 1e-9),
                "q{q}: estimate {est} above true sample {truth}");
            prop_assert!(est * width >= truth * (1.0 - 1e-9),
                "q{q}: estimate {est} more than one bucket below {truth}");
        }
    }
}

/// Random span forests: each span's parent is one of the earlier spans
/// (or none), spread over up to three traces, so the result is a mix of
/// roots, chains, and bushy trees. `(parent_seed, trace, start, dur)`
/// per span; span ids are 1-based positions.
fn forest_strategy() -> impl Strategy<Value = Vec<SpanRecord>> {
    proptest::collection::vec((any::<u64>(), 0u64..3, 0u64..100_000, 0u64..10_000), 1..48).prop_map(
        |raw| {
            let kinds = [
                "fetch",
                "dial",
                "verify",
                "queue-wait",
                "origin-fetch",
                "peer-probe",
            ];
            // Trace of span i: fixed per root, inherited from the parent
            // otherwise (a real trace never crosses parents).
            let mut traces: Vec<TraceId> = Vec::with_capacity(raw.len());
            raw.iter()
                .enumerate()
                .map(|(i, &(parent_seed, trace, start, dur))| {
                    // parent_seed % (i+1): 0 = root, j>0 = span j.
                    let pick = (parent_seed % (i as u64 + 1)) as usize;
                    let (parent, trace) = if pick == 0 {
                        (SpanId::NONE, TraceId(trace + 1))
                    } else {
                        (SpanId(pick as u64), traces[pick - 1])
                    };
                    traces.push(trace);
                    SpanRecord {
                        trace,
                        span: SpanId(i as u64 + 1),
                        parent,
                        kind: kinds[i % kinds.len()].to_owned(),
                        start_us: start,
                        dur_us: dur,
                        detail: format!("i={i}"),
                    }
                })
                .collect()
        },
    )
}

/// Flattens assembled trees into `(trace, span, parent-or-root, depth)`
/// rows — a canonical form two assemblies can be compared by.
fn shape(trees: &[baps_obs::SpanTree]) -> Vec<(TraceId, SpanId, SpanId, usize)> {
    let mut rows = Vec::new();
    for tree in trees {
        tree.root.walk(&mut |node, depth| {
            rows.push((
                node.record.trace,
                node.record.span,
                node.record.parent,
                depth,
            ));
        });
    }
    rows
}

proptest! {
    /// Every record survives assembly exactly once — even after dropping
    /// an arbitrary subset first (the bounded ring evicting spans), which
    /// turns interior spans' children into promoted roots rather than
    /// orphans. Wire round-trip (render → parse) is included so the
    /// property covers the whole TRACE export path.
    #[test]
    fn assembly_orphans_nothing_under_drops(
        records in forest_strategy(),
        drop_bits in any::<u64>(),
    ) {
        let kept: Vec<SpanRecord> = records
            .iter()
            .enumerate()
            .filter(|(i, _)| drop_bits >> (i % 64) & 1 == 0)
            .map(|(_, r)| r.clone())
            .collect();
        let jsonl: String = kept.iter().map(|r| r.render_line() + "\n").collect();
        let parsed = baps_obs::span::parse_jsonl(&jsonl).expect("round-trip parses");
        prop_assert_eq!(&parsed, &kept);

        let trees = assemble(&parsed);
        let mut seen: Vec<(TraceId, SpanId)> =
            shape(&trees).iter().map(|&(t, s, _, _)| (t, s)).collect();
        seen.sort();
        let mut expect: Vec<(TraceId, SpanId)> =
            kept.iter().map(|r| (r.trace, r.span)).collect();
        expect.sort();
        prop_assert_eq!(seen, expect, "assembly must keep every record exactly once");
    }

    /// Structural nesting: a node sits under its recorded parent whenever
    /// that parent survived, and becomes a root otherwise; children never
    /// cross traces.
    #[test]
    fn assembly_honours_parent_links(records in forest_strategy()) {
        let trees = assemble(&records);
        for tree in &trees {
            prop_assert_eq!(
                tree.root.record.parent, SpanId::NONE,
                "no span was dropped, so every root must be a true root"
            );
            let mut ok = true;
            tree.root.walk(&mut |node, _| {
                for child in &node.children {
                    ok &= child.record.parent == node.record.span
                        && child.record.trace == node.record.trace;
                }
            });
            prop_assert!(ok, "child under a node it does not name as parent");
        }
    }

    /// Determinism and order independence: reversing or rotating the
    /// input yields an identical assembly, and assembling twice yields
    /// identical trees.
    #[test]
    fn assembly_is_deterministic_and_order_independent(
        records in forest_strategy(),
        rot in 0usize..48,
    ) {
        let baseline = shape(&assemble(&records));
        prop_assert_eq!(&baseline, &shape(&assemble(&records)));

        let mut reversed = records.clone();
        reversed.reverse();
        prop_assert_eq!(&baseline, &shape(&assemble(&reversed)));

        let mut rotated = records.clone();
        rotated.rotate_left(rot % records.len().max(1));
        prop_assert_eq!(&baseline, &shape(&assemble(&rotated)));
    }
}

/// An arbitrary sampler history for the window ring: per capture, a clock
/// advance in seconds (0 = a re-capture within the same second) and the
/// counter/latency activity since the previous capture (the bool gates
/// whether a latency sample landed — the shim has no `Option` strategy).
fn window_history() -> impl Strategy<Value = Vec<(u64, u64, bool, f64)>> {
    proptest::collection::vec((0u64..40, 0u64..1000, any::<bool>(), 1e-3f64..1e4), 2..120)
}

proptest! {
    /// Bucket rotation under arbitrary clock advances: whatever the
    /// advance pattern (steady ticks, stalls, jumps past the whole ring),
    /// every window the ring answers is the exact difference of two
    /// cumulative captures — equal to the sum of the per-capture deltas
    /// attributed to seconds inside `(start_sec, end_sec]`. This is the
    /// telescoping identity "windowed count ≡ sum of cumulative deltas".
    #[test]
    fn window_equals_sum_of_deltas_under_arbitrary_advances(
        history in window_history(),
        want in 1u64..70,
    ) {
        let schema = WindowSchema { counters: 1, hists: 1 };
        let ring = WindowRing::new(schema, 16);
        let mut sec = 0u64;
        let mut hist = LatencyHistogram::new();
        let mut total = 0u64;
        // Ground truth, kept independently of the ring: the per-second
        // activity deltas (same-second re-captures merge into one entry).
        let mut deltas: Vec<(u64, u64, u64)> = Vec::new(); // (sec, counter, hist count)
        for &(advance, inc, has_ms, ms) in &history {
            sec += advance;
            total += inc;
            let hist_inc = u64::from(has_ms);
            if has_ms {
                hist.record(ms);
            }
            match deltas.last_mut() {
                Some(last) if last.0 == sec => { last.1 += inc; last.2 += hist_inc; }
                _ => deltas.push((sec, inc, hist_inc)),
            }
            let mut capture = vec![total];
            baps_obs::window::push_hist(&mut capture, &hist);
            ring.ingest(sec, &capture);
        }
        let Some(w) = ring.window(want) else {
            // Only a degenerate history (every capture in second 0's
            // slot) leaves nothing to difference.
            let distinct: std::collections::HashSet<u64> =
                deltas.iter().map(|d| d.0 % 16).collect();
            prop_assert_eq!(distinct.len(), 1);
            return Ok(());
        };
        prop_assert_eq!(w.end_sec, sec, "end capture is the newest ingested");
        prop_assert!(w.start_sec < w.end_sec);
        let expect_counter: u64 = deltas
            .iter()
            .filter(|d| d.0 > w.start_sec && d.0 <= w.end_sec)
            .map(|d| d.1)
            .sum();
        let expect_hist: u64 = deltas
            .iter()
            .filter(|d| d.0 > w.start_sec && d.0 <= w.end_sec)
            .map(|d| d.2)
            .sum();
        prop_assert_eq!(w.counter(0), expect_counter);
        prop_assert_eq!(w.hist(0).count(), expect_hist);
        // The start capture is legitimate: either the newest capture at
        // or before the cutoff (a capture gap can make it older than
        // asked — the span is reported honestly), or — when rotation or
        // youth left nothing that old — the oldest capture the ring still
        // retains (modelled independently: a capture survives iff no
        // later capture landed in its slot).
        let cutoff = w.end_sec.saturating_sub(want);
        if w.start_sec > cutoff {
            let oldest_retained = deltas
                .iter()
                .map(|d| d.0)
                .filter(|&s| !deltas.iter().any(|d| d.0 > s && d.0 % 16 == s % 16))
                .min()
                .unwrap();
            prop_assert_eq!(w.start_sec, oldest_retained,
                "start past the cutoff must be the oldest retained capture");
        }
    }

    /// Windows are monotone in their length and never exceed the
    /// lifetime totals: a longer ask can only widen the covered range,
    /// and no delta can double-count past what actually happened —
    /// the "snapshot never double-counts or goes negative" invariant
    /// (going negative is a u64 panic/wrap, caught by the equality
    /// checks above; this adds the upper bound).
    #[test]
    fn windows_are_monotone_and_bounded(history in window_history()) {
        let schema = WindowSchema { counters: 1, hists: 0 };
        let ring = WindowRing::new(schema, 16);
        let mut sec = 0u64;
        let mut total = 0u64;
        for &(advance, inc, _, _) in &history {
            sec += advance;
            total += inc;
            ring.ingest(sec, &[total]);
        }
        let mut prev = 0u64;
        for want in [1u64, 5, 10, 30, 60, 600] {
            let Some(w) = ring.window(want) else { continue };
            prop_assert!(w.counter(0) >= prev, "longer window lost events");
            prop_assert!(w.counter(0) <= total, "window exceeds lifetime total");
            prop_assert_eq!(w.rate(0), w.counter(0) as f64 / w.span_secs() as f64);
            prev = w.counter(0);
        }
    }

    /// Merge semantics: merging two windows adds their deltas and takes
    /// the union of their ranges, and merge with an all-zero window of
    /// the same schema is the identity.
    #[test]
    fn window_merge_adds_and_widens(history in window_history()) {
        let schema = WindowSchema { counters: 1, hists: 1 };
        let ring = WindowRing::new(schema, 32);
        let mut sec = 0u64;
        let mut hist = LatencyHistogram::new();
        let mut total = 0u64;
        for &(advance, inc, has_ms, ms) in &history {
            sec += advance;
            total += inc;
            if has_ms {
                hist.record(ms);
            }
            let mut capture = vec![total];
            baps_obs::window::push_hist(&mut capture, &hist);
            ring.ingest(sec, &capture);
        }
        let Some(short) = ring.window(1) else { return Ok(()) };
        let long = ring.window(600).unwrap();
        let mut merged = short.clone();
        merged.merge(&long);
        prop_assert_eq!(merged.counter(0), short.counter(0) + long.counter(0));
        prop_assert_eq!(merged.hist(0).count(), short.hist(0).count() + long.hist(0).count());
        prop_assert_eq!(merged.start_sec, short.start_sec.min(long.start_sec));
        prop_assert_eq!(merged.end_sec, short.end_sec.max(long.end_sec));
    }
}

/// Flipping the global switch silences the gated recorders (histograms
/// and flight-recorder events) and re-enabling restores them — the
/// mechanism the overhead A/B in `live_load --sweep` differences.
#[test]
fn recording_switch_gates_histograms_and_recorder() {
    static LABELS: [&str; 1] = ["only"];
    let hists = LabeledHistograms::new(&LABELS);
    let ring = FlightRecorder::new(16);

    baps_obs::set_recording(false);
    hists.record(0, Duration::from_millis(5));
    ring.record(TraceId::mint(1, 1), EventKind::Fetch, Duration::ZERO, "off");
    assert!(!baps_obs::recording());
    assert_eq!(hists.snapshot(0).count(), 0);
    assert_eq!(ring.len(), 0);

    baps_obs::set_recording(true);
    hists.record(0, Duration::from_millis(5));
    ring.record(TraceId::mint(1, 2), EventKind::Fetch, Duration::ZERO, "on");
    assert!(baps_obs::recording());
    assert_eq!(hists.snapshot(0).count(), 1);
    assert_eq!(ring.len(), 1);
}
