//! Property-based tests of the histogram invariants the METRICS pipeline
//! leans on: merging distributed recordings is lossless, and quantile
//! estimates stay monotone and inside the documented bucket error bound.
//! Plus the span-tree assembly invariants the `TRACE` pipeline leans on:
//! no record is ever orphaned (even when the bounded ring dropped
//! arbitrary spans), parent links are honoured, and assembly is
//! deterministic and independent of input order.
//!
//! The recording-switch test lives here too (not in `hist.rs` unit tests)
//! because it flips process-global state: this file's proptests only use
//! the ungated `LatencyHistogram`, so the switch can't race them.

use baps_obs::hist::{LatencyHistogram, BUCKETS_PER_DECADE};
use baps_obs::span::{assemble, SpanRecord};
use baps_obs::{EventKind, FlightRecorder, LabeledHistograms, SpanId, TraceId};
use proptest::prelude::*;
use std::time::Duration;

/// Latency samples in ms, kept inside the histogram's exact range (above
/// the underflow clamp, below the overflow bucket) so the error bound is
/// the per-bucket one, not a clamp artifact.
fn samples_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-3f64..1e4, 1..400)
}

/// One bucket spans this factor; a quantile estimate (the lower edge of
/// the rank's bucket) is below the true sample by at most this ratio.
fn bucket_width() -> f64 {
    10f64.powf(1.0 / BUCKETS_PER_DECADE)
}

proptest! {
    /// Recording shards separately and merging is indistinguishable from
    /// recording everything into one histogram — the property that lets
    /// live_load merge per-worker histograms and the proxy merge
    /// per-shard cache stats without skewing the tails.
    #[test]
    fn merge_equals_single_recording(samples in samples_strategy(), split in 0usize..400) {
        let split = split.min(samples.len());
        let mut whole = LatencyHistogram::new();
        let (mut left, mut right) = (LatencyHistogram::new(), LatencyHistogram::new());
        for (i, &ms) in samples.iter().enumerate() {
            whole.record(ms);
            if i < split { &mut left } else { &mut right }.record(ms);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert_eq!(left.max_ms(), whole.max_ms());
        prop_assert!((left.sum_ms() - whole.sum_ms()).abs() < 1e-6 * whole.sum_ms().max(1.0));
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(left.quantile_ms(q), whole.quantile_ms(q));
        }
        let a: Vec<(f64, u64)> = left.buckets().collect();
        let b: Vec<(f64, u64)> = whole.buckets().collect();
        prop_assert_eq!(a, b);
    }

    /// Quantiles never decrease as `q` grows, and each estimate brackets
    /// the true order statistic: at most the sample itself, at least the
    /// sample divided by one bucket width (~13.7% relative error).
    #[test]
    fn quantiles_monotone_and_within_bucket_error(samples in samples_strategy()) {
        let mut h = LatencyHistogram::new();
        for &ms in &samples {
            h.record(ms);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let width = bucket_width();
        let mut prev = 0.0;
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let est = h.quantile_ms(q);
            prop_assert!(est >= prev, "quantile_ms({q}) regressed: {est} < {prev}");
            prev = est;
            let rank = ((sorted.len() as f64) * q).ceil().max(1.0) as usize;
            let truth = sorted[rank - 1];
            prop_assert!(est <= truth * (1.0 + 1e-9),
                "q{q}: estimate {est} above true sample {truth}");
            prop_assert!(est * width >= truth * (1.0 - 1e-9),
                "q{q}: estimate {est} more than one bucket below {truth}");
        }
    }
}

/// Random span forests: each span's parent is one of the earlier spans
/// (or none), spread over up to three traces, so the result is a mix of
/// roots, chains, and bushy trees. `(parent_seed, trace, start, dur)`
/// per span; span ids are 1-based positions.
fn forest_strategy() -> impl Strategy<Value = Vec<SpanRecord>> {
    proptest::collection::vec((any::<u64>(), 0u64..3, 0u64..100_000, 0u64..10_000), 1..48).prop_map(
        |raw| {
            let kinds = [
                "fetch",
                "dial",
                "verify",
                "queue-wait",
                "origin-fetch",
                "peer-probe",
            ];
            // Trace of span i: fixed per root, inherited from the parent
            // otherwise (a real trace never crosses parents).
            let mut traces: Vec<TraceId> = Vec::with_capacity(raw.len());
            raw.iter()
                .enumerate()
                .map(|(i, &(parent_seed, trace, start, dur))| {
                    // parent_seed % (i+1): 0 = root, j>0 = span j.
                    let pick = (parent_seed % (i as u64 + 1)) as usize;
                    let (parent, trace) = if pick == 0 {
                        (SpanId::NONE, TraceId(trace + 1))
                    } else {
                        (SpanId(pick as u64), traces[pick - 1])
                    };
                    traces.push(trace);
                    SpanRecord {
                        trace,
                        span: SpanId(i as u64 + 1),
                        parent,
                        kind: kinds[i % kinds.len()].to_owned(),
                        start_us: start,
                        dur_us: dur,
                        detail: format!("i={i}"),
                    }
                })
                .collect()
        },
    )
}

/// Flattens assembled trees into `(trace, span, parent-or-root, depth)`
/// rows — a canonical form two assemblies can be compared by.
fn shape(trees: &[baps_obs::SpanTree]) -> Vec<(TraceId, SpanId, SpanId, usize)> {
    let mut rows = Vec::new();
    for tree in trees {
        tree.root.walk(&mut |node, depth| {
            rows.push((
                node.record.trace,
                node.record.span,
                node.record.parent,
                depth,
            ));
        });
    }
    rows
}

proptest! {
    /// Every record survives assembly exactly once — even after dropping
    /// an arbitrary subset first (the bounded ring evicting spans), which
    /// turns interior spans' children into promoted roots rather than
    /// orphans. Wire round-trip (render → parse) is included so the
    /// property covers the whole TRACE export path.
    #[test]
    fn assembly_orphans_nothing_under_drops(
        records in forest_strategy(),
        drop_bits in any::<u64>(),
    ) {
        let kept: Vec<SpanRecord> = records
            .iter()
            .enumerate()
            .filter(|(i, _)| drop_bits >> (i % 64) & 1 == 0)
            .map(|(_, r)| r.clone())
            .collect();
        let jsonl: String = kept.iter().map(|r| r.render_line() + "\n").collect();
        let parsed = baps_obs::span::parse_jsonl(&jsonl).expect("round-trip parses");
        prop_assert_eq!(&parsed, &kept);

        let trees = assemble(&parsed);
        let mut seen: Vec<(TraceId, SpanId)> =
            shape(&trees).iter().map(|&(t, s, _, _)| (t, s)).collect();
        seen.sort();
        let mut expect: Vec<(TraceId, SpanId)> =
            kept.iter().map(|r| (r.trace, r.span)).collect();
        expect.sort();
        prop_assert_eq!(seen, expect, "assembly must keep every record exactly once");
    }

    /// Structural nesting: a node sits under its recorded parent whenever
    /// that parent survived, and becomes a root otherwise; children never
    /// cross traces.
    #[test]
    fn assembly_honours_parent_links(records in forest_strategy()) {
        let trees = assemble(&records);
        for tree in &trees {
            prop_assert_eq!(
                tree.root.record.parent, SpanId::NONE,
                "no span was dropped, so every root must be a true root"
            );
            let mut ok = true;
            tree.root.walk(&mut |node, _| {
                for child in &node.children {
                    ok &= child.record.parent == node.record.span
                        && child.record.trace == node.record.trace;
                }
            });
            prop_assert!(ok, "child under a node it does not name as parent");
        }
    }

    /// Determinism and order independence: reversing or rotating the
    /// input yields an identical assembly, and assembling twice yields
    /// identical trees.
    #[test]
    fn assembly_is_deterministic_and_order_independent(
        records in forest_strategy(),
        rot in 0usize..48,
    ) {
        let baseline = shape(&assemble(&records));
        prop_assert_eq!(&baseline, &shape(&assemble(&records)));

        let mut reversed = records.clone();
        reversed.reverse();
        prop_assert_eq!(&baseline, &shape(&assemble(&reversed)));

        let mut rotated = records.clone();
        rotated.rotate_left(rot % records.len().max(1));
        prop_assert_eq!(&baseline, &shape(&assemble(&rotated)));
    }
}

/// Flipping the global switch silences the gated recorders (histograms
/// and flight-recorder events) and re-enabling restores them — the
/// mechanism the overhead A/B in `live_load --sweep` differences.
#[test]
fn recording_switch_gates_histograms_and_recorder() {
    static LABELS: [&str; 1] = ["only"];
    let hists = LabeledHistograms::new(&LABELS);
    let ring = FlightRecorder::new(16);

    baps_obs::set_recording(false);
    hists.record(0, Duration::from_millis(5));
    ring.record(TraceId::mint(1, 1), EventKind::Fetch, Duration::ZERO, "off");
    assert!(!baps_obs::recording());
    assert_eq!(hists.snapshot(0).count(), 0);
    assert_eq!(ring.len(), 0);

    baps_obs::set_recording(true);
    hists.record(0, Duration::from_millis(5));
    ring.record(TraceId::mint(1, 2), EventKind::Fetch, Duration::ZERO, "on");
    assert!(baps_obs::recording());
    assert_eq!(hists.snapshot(0).count(), 1);
    assert_eq!(ring.len(), 1);
}
