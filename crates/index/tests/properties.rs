//! Property-based tests of the index structures.

use baps_index::{
    BloomSummaryIndex, DelayedIndex, ExactIndex, ShardedIndex, SummaryConfig, UpdatePolicy,
};
use baps_trace::{ClientId, DocId};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone, Copy)]
enum Op {
    Store(u8, u16),
    Evict(u8, u16),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            ((0u8..8), (0u16..128)).prop_map(|(c, d)| Op::Store(c, d)),
            ((0u8..8), (0u16..128)).prop_map(|(c, d)| Op::Evict(c, d)),
        ],
        0..400,
    )
}

proptest! {
    /// The exact index always equals a shadow set of (client, doc) pairs.
    #[test]
    fn exact_index_mirror(ops in ops()) {
        let mut idx = ExactIndex::new();
        let mut shadow: HashSet<(u8, u16)> = HashSet::new();
        for op in ops {
            match op {
                Op::Store(c, d) => {
                    idx.on_store(ClientId(c as u32), DocId(d as u32));
                    shadow.insert((c, d));
                }
                Op::Evict(c, d) => {
                    idx.on_evict(ClientId(c as u32), DocId(d as u32));
                    shadow.remove(&(c, d));
                }
            }
            prop_assert_eq!(idx.entries() as usize, shadow.len());
        }
        // Every shadow pair must be visible to lookup_all from any other client.
        for &(c, d) in &shadow {
            let holders = idx.lookup_all(DocId(d as u32), ClientId(255));
            prop_assert!(holders.contains(&ClientId(c as u32)));
        }
        // And nothing else.
        for d in 0u16..128 {
            let holders = idx.lookup_all(DocId(d as u32), ClientId(255));
            for h in holders {
                prop_assert!(shadow.contains(&((h.0 as u8), d)));
            }
        }
    }

    /// After flushing everything, a delayed index converges to ground truth.
    #[test]
    fn delayed_index_converges_on_flush(ops in ops()) {
        let policy = UpdatePolicy { threshold_frac: 0.5, min_pending: 4, interval_ms: None };
        let mut idx = DelayedIndex::new(8, policy);
        let mut shadow: HashSet<(u8, u16)> = HashSet::new();
        for op in ops {
            match op {
                Op::Store(c, d) => {
                    idx.on_store(ClientId(c as u32), DocId(d as u32));
                    shadow.insert((c, d));
                }
                Op::Evict(c, d) => {
                    idx.on_evict(ClientId(c as u32), DocId(d as u32));
                    shadow.remove(&(c, d));
                }
            }
            // Ground truth is always exact, even between flushes.
            for &(c, d) in &shadow {
                prop_assert!(idx.actually_holds(ClientId(c as u32), DocId(d as u32)));
            }
        }
        idx.flush_all();
        for &(c, d) in &shadow {
            prop_assert!(idx.published_contains(ClientId(c as u32), DocId(d as u32)));
        }
        for d in 0u16..128 {
            let holders = idx.lookup_all(DocId(d as u32), ClientId(255));
            for h in holders {
                prop_assert!(shadow.contains(&((h.0 as u8), d)));
            }
        }
    }

    /// A sharded index is observationally equivalent to one exact index
    /// under any interleaving of stores, evicts, and lookups.
    #[test]
    fn sharded_index_equals_exact(ops in ops(), n_shards in 1usize..9) {
        let mut sharded = ShardedIndex::new(n_shards);
        let mut exact = ExactIndex::new();
        for op in ops {
            match op {
                Op::Store(c, d) => {
                    sharded.on_store(ClientId(c as u32), DocId(d as u32));
                    exact.on_store(ClientId(c as u32), DocId(d as u32));
                }
                Op::Evict(c, d) => {
                    sharded.on_evict(ClientId(c as u32), DocId(d as u32));
                    exact.on_evict(ClientId(c as u32), DocId(d as u32));
                }
            }
            prop_assert_eq!(sharded.entries(), exact.entries());
        }
        prop_assert_eq!(sharded.distinct_docs(), exact.distinct_docs());
        prop_assert_eq!(sharded.memory_bytes(), exact.memory_bytes());
        for d in 0u16..128 {
            for excl in [0u32, 3, 255] {
                prop_assert_eq!(
                    sharded.lookup_all(DocId(d as u32), ClientId(excl)),
                    exact.lookup_all(DocId(d as u32), ClientId(excl)),
                    "doc {} exclude {}", d, excl
                );
                prop_assert_eq!(
                    sharded.lookup(DocId(d as u32), ClientId(excl)),
                    exact.lookup(DocId(d as u32), ClientId(excl))
                );
            }
        }
        // Lookups above were mirrored, so merged stats must agree too.
        prop_assert_eq!(sharded.stats(), exact.stats());
    }

    /// Bloom summaries never produce false negatives after a rebuild.
    #[test]
    fn bloom_summary_no_false_negatives(ops in ops()) {
        let mut idx = BloomSummaryIndex::new(8, SummaryConfig::default());
        let mut shadow: HashSet<(u8, u16)> = HashSet::new();
        for op in ops {
            match op {
                Op::Store(c, d) => {
                    idx.on_store(ClientId(c as u32), DocId(d as u32));
                    shadow.insert((c, d));
                }
                Op::Evict(c, d) => {
                    idx.on_evict(ClientId(c as u32), DocId(d as u32));
                    shadow.remove(&(c, d));
                }
            }
        }
        idx.rebuild_all();
        for &(c, d) in &shadow {
            let holders = idx.lookup_all(DocId(d as u32), ClientId(255));
            prop_assert!(holders.contains(&ClientId(c as u32)),
                "false negative for client {c} doc {d}");
        }
    }
}
