//! Bloom filters for compact per-client cache summaries.
//!
//! The paper's §5 cites Summary Cache (Fan et al., SIGCOMM '98) and URL
//! compression as ways to shrink the browser index. A plain [`BloomFilter`]
//! supports insert/query; a [`CountingBloom`] additionally supports removal
//! (4-bit counters in Summary Cache; we use 8-bit for simplicity) so a
//! browser can keep its summary incrementally up to date.

use baps_trace::DocId;

/// SplitMix64 finaliser: cheap, well-distributed 64-bit mixing.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derives the `k` bit positions for a document via double hashing.
#[inline]
fn positions(doc: DocId, k: u32, bits: u64) -> impl Iterator<Item = u64> {
    let h1 = splitmix64(doc.0 as u64 ^ 0xdead_beef_0bad_cafe);
    let h2 = splitmix64(doc.0 as u64 ^ 0x1234_5678_9abc_def0) | 1;
    (0..k as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % bits)
}

/// A classic Bloom filter over document ids.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    words: Vec<u64>,
    bits: u64,
    k: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Creates a filter with `bits` bits (rounded up to a word) and `k`
    /// hash functions.
    ///
    /// # Panics
    /// Panics if `bits == 0` or `k == 0`.
    pub fn new(bits: u64, k: u32) -> Self {
        assert!(bits > 0 && k > 0);
        let words = bits.div_ceil(64);
        BloomFilter {
            words: vec![0; words as usize],
            bits: words * 64,
            k,
            inserted: 0,
        }
    }

    /// Sizes a filter for `expected` items at `bits_per_item` (Summary Cache
    /// recommends 8–16 bits/item with k = 4).
    pub fn for_items(expected: u64, bits_per_item: u64, k: u32) -> Self {
        BloomFilter::new((expected.max(1)) * bits_per_item, k)
    }

    /// Inserts a document.
    pub fn insert(&mut self, doc: DocId) {
        for pos in positions(doc, self.k, self.bits) {
            self.words[(pos / 64) as usize] |= 1 << (pos % 64);
        }
        self.inserted += 1;
    }

    /// Whether the filter may contain `doc` (false positives possible,
    /// false negatives impossible).
    pub fn contains(&self, doc: DocId) -> bool {
        positions(doc, self.k, self.bits)
            .all(|pos| self.words[(pos / 64) as usize] & (1 << (pos % 64)) != 0)
    }

    /// Clears the filter.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.inserted = 0;
    }

    /// Size of the filter in bytes.
    pub fn byte_size(&self) -> u64 {
        self.bits / 8
    }

    /// Number of insert calls since the last clear.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Expected false-positive probability given the current load:
    /// `(1 - e^(-k n / m))^k`.
    pub fn expected_fp_rate(&self) -> f64 {
        let n = self.inserted as f64;
        let m = self.bits as f64;
        let k = self.k as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }
}

/// A counting Bloom filter supporting removal (saturating 8-bit counters).
#[derive(Debug, Clone)]
pub struct CountingBloom {
    counters: Vec<u8>,
    bits: u64,
    k: u32,
    items: u64,
}

impl CountingBloom {
    /// Creates a counting filter with `slots` counters and `k` hashes.
    ///
    /// # Panics
    /// Panics if `slots == 0` or `k == 0`.
    pub fn new(slots: u64, k: u32) -> Self {
        assert!(slots > 0 && k > 0);
        CountingBloom {
            counters: vec![0; slots as usize],
            bits: slots,
            k,
            items: 0,
        }
    }

    /// Inserts a document (counters saturate at 255 and then never
    /// decrement back past the saturation point — standard CBF caveat).
    pub fn insert(&mut self, doc: DocId) {
        for pos in positions(doc, self.k, self.bits) {
            let c = &mut self.counters[pos as usize];
            *c = c.saturating_add(1);
        }
        self.items += 1;
    }

    /// Removes a previously inserted document.
    pub fn remove(&mut self, doc: DocId) {
        for pos in positions(doc, self.k, self.bits) {
            let c = &mut self.counters[pos as usize];
            if *c > 0 && *c < u8::MAX {
                *c -= 1;
            }
        }
        self.items = self.items.saturating_sub(1);
    }

    /// Whether the filter may contain `doc`.
    pub fn contains(&self, doc: DocId) -> bool {
        positions(doc, self.k, self.bits).all(|pos| self.counters[pos as usize] > 0)
    }

    /// Number of logically present items.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> DocId {
        DocId(i)
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::for_items(1000, 10, 4);
        for i in 0..1000 {
            f.insert(d(i));
        }
        for i in 0..1000 {
            assert!(f.contains(d(i)), "false negative at {i}");
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut f = BloomFilter::for_items(1000, 10, 4);
        for i in 0..1000 {
            f.insert(d(i));
        }
        let fps = (10_000..60_000).filter(|&i| f.contains(d(i))).count();
        let rate = fps as f64 / 50_000.0;
        // 10 bits/item, k=4 -> theoretical ~1.2%; allow generous headroom.
        assert!(rate < 0.05, "fp rate {rate}");
        assert!(f.expected_fp_rate() < 0.05);
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(256, 3);
        f.insert(d(1));
        assert!(f.contains(d(1)));
        f.clear();
        assert!(!f.contains(d(1)));
        assert_eq!(f.inserted(), 0);
    }

    #[test]
    fn byte_size_accounts_rounding() {
        let f = BloomFilter::new(100, 3);
        assert_eq!(f.byte_size(), 16); // rounded up to 128 bits
    }

    #[test]
    fn counting_bloom_supports_removal() {
        let mut f = CountingBloom::new(4096, 4);
        for i in 0..100 {
            f.insert(d(i));
        }
        assert!(f.contains(d(42)));
        f.remove(d(42));
        // (contains(d(42)) may still be true as a false positive; that is
        // allowed Bloom behaviour.)
        // Removal must never produce false negatives for remaining items.
        for i in 0..100 {
            if i != 42 {
                assert!(f.contains(d(i)), "false negative after removal at {i}");
            }
        }
        assert_eq!(f.items(), 99);
    }

    #[test]
    fn counting_bloom_insert_remove_roundtrip() {
        let mut f = CountingBloom::new(1024, 4);
        f.insert(d(7));
        f.remove(d(7));
        assert!(!f.contains(d(7)));
        assert_eq!(f.items(), 0);
    }

    #[test]
    fn counting_bloom_double_insert_single_remove_still_present() {
        let mut f = CountingBloom::new(1024, 4);
        f.insert(d(7));
        f.insert(d(7));
        f.remove(d(7));
        assert!(f.contains(d(7)));
    }

    #[test]
    fn distinct_docs_rarely_collide_positions() {
        // Two distinct docs should (at this size) map to different bit sets.
        let mut f = BloomFilter::new(1 << 16, 4);
        f.insert(d(1));
        assert!(!f.contains(d(2)));
    }
}
