//! # baps-index — browser-cache index structures for BAPS
//!
//! The browsers-aware proxy's distinguishing data structure is the *browser
//! index*: a directory, kept at the proxy, of which documents currently live
//! in which client's browser cache (paper §2). This crate provides four
//! fidelity/space points:
//!
//! * [`ExactIndex`] — invalidation-driven exact directory (the base design);
//! * [`DelayedIndex`] — batched updates with a staleness threshold (§5's
//!   overhead mitigation);
//! * [`BloomSummaryIndex`] — per-client Bloom-filter summaries rebuilt at a
//!   churn threshold (Summary-Cache style compression, §5's space argument);
//! * [`CountingBloomIndex`] — per-client counting-Bloom filters patched by
//!   incremental delta messages (traffic scales with churn, not size).
//!
//! [`AnyIndex`] provides enum dispatch so the simulator and the live proxy
//! can switch models from configuration. [`ShardedIndex`] partitions an
//! exact directory across doc-hashed shards so the live proxy can stripe
//! locks without changing observable behaviour.

#![warn(missing_docs)]

pub mod bloom;
pub mod counting;
pub mod delayed;
pub mod exact;
pub mod sharded;
pub mod stats;
pub mod summary;

pub use bloom::{BloomFilter, CountingBloom};
pub use counting::{CountingBloomIndex, CountingConfig};
pub use delayed::{DelayedIndex, UpdatePolicy};
pub use exact::{ExactIndex, BYTES_PER_ENTRY};
pub use sharded::{shard_of, ShardedIndex, DEFAULT_SHARDS};
pub use stats::IndexStats;
pub use summary::{BloomSummaryIndex, SummaryConfig};

use baps_trace::{ClientId, DocId};
use serde::{Deserialize, Serialize};

/// Declarative choice of index model (used in experiment configs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IndexModel {
    /// Exact invalidation-driven directory.
    Exact,
    /// Batched updates flushed past a pending-fraction threshold.
    Delayed {
        /// Flush threshold as a fraction of cached documents (e.g. 0.1).
        threshold: f64,
        /// Optional periodic flush interval in simulated milliseconds.
        interval_ms: Option<u64>,
    },
    /// Per-client Bloom summaries.
    Bloom {
        /// Bits per cached document.
        bits_per_item: u64,
        /// Rebuild threshold as a fraction of cached documents.
        threshold: f64,
    },
    /// Per-client counting-Bloom filters patched by delta messages.
    CountingBloom {
        /// Counters per client filter.
        slots: u64,
        /// Flush threshold as a fraction of cached documents.
        threshold: f64,
    },
}

impl IndexModel {
    /// Human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            IndexModel::Exact => "exact".to_owned(),
            IndexModel::Delayed { threshold, .. } => format!("delayed({:.0}%)", threshold * 100.0),
            IndexModel::Bloom {
                bits_per_item,
                threshold,
            } => {
                format!("bloom({bits_per_item}b,{:.0}%)", threshold * 100.0)
            }
            IndexModel::CountingBloom { slots, threshold } => {
                format!("cbloom({slots},{:.0}%)", threshold * 100.0)
            }
        }
    }

    /// Instantiates the model for `n_clients` clients.
    pub fn build(&self, n_clients: u32) -> AnyIndex {
        match *self {
            IndexModel::Exact => AnyIndex::Exact(ExactIndex::new()),
            IndexModel::Delayed {
                threshold,
                interval_ms,
            } => AnyIndex::Delayed(DelayedIndex::new(
                n_clients,
                UpdatePolicy {
                    threshold_frac: threshold,
                    min_pending: 2,
                    interval_ms,
                },
            )),
            IndexModel::Bloom {
                bits_per_item,
                threshold,
            } => AnyIndex::Bloom(BloomSummaryIndex::new(
                n_clients,
                SummaryConfig {
                    bits_per_item,
                    rebuild_threshold: threshold,
                    ..SummaryConfig::default()
                },
            )),
            IndexModel::CountingBloom { slots, threshold } => {
                AnyIndex::Counting(CountingBloomIndex::new(
                    n_clients,
                    CountingConfig {
                        slots,
                        flush_threshold: threshold,
                        ..CountingConfig::default()
                    },
                ))
            }
        }
    }
}

/// Enum dispatch over the three index implementations.
#[derive(Debug, Clone)]
pub enum AnyIndex {
    /// Exact directory.
    Exact(ExactIndex),
    /// Threshold-batched directory.
    Delayed(DelayedIndex),
    /// Bloom summaries.
    Bloom(BloomSummaryIndex),
    /// Counting-Bloom filters with delta updates.
    Counting(CountingBloomIndex),
}

impl AnyIndex {
    /// Records that `client` now caches `doc`.
    pub fn on_store(&mut self, client: ClientId, doc: DocId) {
        match self {
            AnyIndex::Exact(i) => i.on_store(client, doc),
            AnyIndex::Delayed(i) => i.on_store(client, doc),
            AnyIndex::Bloom(i) => i.on_store(client, doc),
            AnyIndex::Counting(i) => i.on_store(client, doc),
        }
    }

    /// Records that `client` evicted `doc`.
    pub fn on_evict(&mut self, client: ClientId, doc: DocId) {
        match self {
            AnyIndex::Exact(i) => {
                i.on_evict(client, doc);
            }
            AnyIndex::Delayed(i) => i.on_evict(client, doc),
            AnyIndex::Bloom(i) => i.on_evict(client, doc),
            AnyIndex::Counting(i) => i.on_evict(client, doc),
        }
    }

    /// Advances simulated time (drives interval-based flushing).
    pub fn advance_time(&mut self, now_ms: u64) {
        if let AnyIndex::Delayed(i) = self {
            i.advance_time(now_ms);
        }
    }

    /// Candidate holders of `doc`, preference-ordered, excluding `exclude`.
    pub fn candidates(&mut self, doc: DocId, exclude: ClientId) -> Vec<ClientId> {
        match self {
            AnyIndex::Exact(i) => i.lookup_all(doc, exclude),
            AnyIndex::Delayed(i) => i.lookup_all(doc, exclude),
            AnyIndex::Bloom(i) => i.lookup_all(doc, exclude),
            AnyIndex::Counting(i) => i.lookup_all(doc, exclude),
        }
    }

    /// Estimated index memory (paper §5 accounting).
    pub fn memory_bytes(&self) -> u64 {
        match self {
            AnyIndex::Exact(i) => i.memory_bytes(),
            AnyIndex::Delayed(i) => i.memory_bytes(),
            AnyIndex::Bloom(i) => i.memory_bytes(),
            AnyIndex::Counting(i) => i.memory_bytes(),
        }
    }

    /// Access/traffic statistics.
    pub fn stats(&self) -> IndexStats {
        match self {
            AnyIndex::Exact(i) => i.stats(),
            AnyIndex::Delayed(i) => i.stats(),
            AnyIndex::Bloom(i) => i.stats(),
            AnyIndex::Counting(i) => i.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ClientId {
        ClientId(i)
    }
    fn d(i: u32) -> DocId {
        DocId(i)
    }

    #[test]
    fn model_labels() {
        assert_eq!(IndexModel::Exact.label(), "exact");
        assert_eq!(
            IndexModel::Delayed {
                threshold: 0.1,
                interval_ms: None
            }
            .label(),
            "delayed(10%)"
        );
        assert!(IndexModel::Bloom {
            bits_per_item: 10,
            threshold: 0.05
        }
        .label()
        .starts_with("bloom"));
    }

    #[test]
    fn exact_any_index_roundtrip() {
        let mut idx = IndexModel::Exact.build(4);
        idx.on_store(c(2), d(9));
        assert_eq!(idx.candidates(d(9), c(0)), vec![c(2)]);
        idx.on_evict(c(2), d(9));
        assert!(idx.candidates(d(9), c(0)).is_empty());
        assert!(idx.stats().lookups >= 2);
    }

    #[test]
    fn delayed_any_index_has_staleness() {
        let mut idx = IndexModel::Delayed {
            threshold: 10.0,
            interval_ms: None,
        }
        .build(4);
        idx.on_store(c(2), d(9));
        // High threshold: not yet published.
        assert!(idx.candidates(d(9), c(0)).is_empty());
    }

    #[test]
    fn bloom_any_index_finds_holders() {
        let mut idx = IndexModel::Bloom {
            bits_per_item: 10,
            threshold: 1e-9,
        }
        .build(4);
        idx.on_store(c(1), d(5));
        assert!(idx.candidates(d(5), c(0)).contains(&c(1)));
        assert!(idx.memory_bytes() > 0);
    }
}
