//! Counting-Bloom summaries with incremental delta updates.
//!
//! Summary Cache's counting Bloom filter supports *removal*, so instead of
//! periodically rebuilding each client's summary (as
//! [`crate::summary::BloomSummaryIndex`] does), the proxy-side filter can be
//! patched incrementally: each batched update message carries the insert /
//! delete keys since the last flush (16-byte signatures), and the proxy
//! applies them to its counting filter. Update traffic scales with churn
//! rather than cache size, trading away the rebuild's self-cleaning.

use crate::bloom::CountingBloom;
use crate::stats::IndexStats;
use baps_trace::{ClientId, DocId};
use std::collections::HashSet;

/// Bytes per delta entry in an update message (MD5 signature + op flag).
const DELTA_ENTRY_BYTES: u64 = 17;

/// Configuration of the counting-Bloom index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountingConfig {
    /// Counters per client filter.
    pub slots: u64,
    /// Hash functions.
    pub hashes: u32,
    /// Flush a client's delta batch when it exceeds this fraction of its
    /// cached documents.
    pub flush_threshold: f64,
}

impl Default for CountingConfig {
    fn default() -> Self {
        CountingConfig {
            slots: 16_384,
            hashes: 4,
            flush_threshold: 0.05,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Delta {
    Insert(DocId),
    Remove(DocId),
}

#[derive(Debug, Clone)]
struct ClientFilter {
    /// Ground truth contents.
    actual: HashSet<DocId>,
    /// Proxy-side (published) counting filter.
    published: CountingBloom,
    /// Deltas not yet flushed to the proxy.
    pending: Vec<Delta>,
}

/// A per-client counting-Bloom browser index with delta updates.
#[derive(Debug, Clone)]
pub struct CountingBloomIndex {
    clients: Vec<ClientFilter>,
    config: CountingConfig,
    stats: IndexStats,
}

impl CountingBloomIndex {
    /// Creates filters for `n_clients` clients.
    pub fn new(n_clients: u32, config: CountingConfig) -> Self {
        assert!(config.flush_threshold > 0.0);
        CountingBloomIndex {
            clients: (0..n_clients)
                .map(|_| ClientFilter {
                    actual: HashSet::new(),
                    published: CountingBloom::new(config.slots, config.hashes),
                    pending: Vec::new(),
                })
                .collect(),
            config,
            stats: IndexStats::default(),
        }
    }

    /// Records that `client` cached `doc`.
    pub fn on_store(&mut self, client: ClientId, doc: DocId) {
        self.stats.updates += 1;
        let state = &mut self.clients[client.index()];
        if state.actual.insert(doc) {
            state.pending.push(Delta::Insert(doc));
        }
        self.maybe_flush(client);
    }

    /// Records that `client` evicted `doc`.
    pub fn on_evict(&mut self, client: ClientId, doc: DocId) {
        self.stats.updates += 1;
        let state = &mut self.clients[client.index()];
        if state.actual.remove(&doc) {
            state.pending.push(Delta::Remove(doc));
        }
        self.maybe_flush(client);
    }

    fn maybe_flush(&mut self, client: ClientId) {
        let state = &self.clients[client.index()];
        let threshold =
            ((state.actual.len().max(16) as f64) * self.config.flush_threshold).ceil() as usize;
        if state.pending.len() >= threshold.max(1) {
            self.flush(client);
        }
    }

    /// Transmits and applies a client's pending deltas.
    pub fn flush(&mut self, client: ClientId) {
        let state = &mut self.clients[client.index()];
        if state.pending.is_empty() {
            return;
        }
        let deltas = std::mem::take(&mut state.pending);
        self.stats.flushes += 1;
        self.stats.messages += 1;
        self.stats.update_bytes += deltas.len() as u64 * DELTA_ENTRY_BYTES;
        for delta in deltas {
            match delta {
                Delta::Insert(doc) => state.published.insert(doc),
                Delta::Remove(doc) => state.published.remove(doc),
            }
        }
    }

    /// Flushes every client.
    pub fn flush_all(&mut self) {
        for i in 0..self.clients.len() {
            self.flush(ClientId(i as u32));
        }
    }

    /// All clients whose published filter claims `doc` (false positives and
    /// staleness possible), excluding the requester.
    pub fn lookup_all(&mut self, doc: DocId, exclude: ClientId) -> Vec<ClientId> {
        self.stats.lookups += 1;
        let found: Vec<ClientId> = self
            .clients
            .iter()
            .enumerate()
            .filter(|&(i, s)| ClientId(i as u32) != exclude && s.published.contains(doc))
            .map(|(i, _)| ClientId(i as u32))
            .collect();
        if !found.is_empty() {
            self.stats.index_hits += 1;
        }
        found
    }

    /// Ground truth.
    pub fn actually_holds(&self, client: ClientId, doc: DocId) -> bool {
        self.clients[client.index()].actual.contains(&doc)
    }

    /// Proxy-side filter memory (1 byte per counter).
    pub fn memory_bytes(&self) -> u64 {
        self.clients.iter().map(|s| s.published.byte_size()).sum()
    }

    /// Access statistics.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ClientId {
        ClientId(i)
    }
    fn d(i: u32) -> DocId {
        DocId(i)
    }

    fn eager() -> CountingConfig {
        CountingConfig {
            flush_threshold: 1e-9,
            ..Default::default()
        }
    }

    #[test]
    fn store_then_found_after_flush() {
        let mut idx = CountingBloomIndex::new(3, eager());
        idx.on_store(c(1), d(5));
        assert!(idx.lookup_all(d(5), c(0)).contains(&c(1)));
        assert!(!idx.lookup_all(d(5), c(1)).contains(&c(1)));
    }

    #[test]
    fn evict_removes_after_flush() {
        let mut idx = CountingBloomIndex::new(2, eager());
        idx.on_store(c(0), d(1));
        idx.on_evict(c(0), d(1));
        assert!(idx.lookup_all(d(1), c(1)).is_empty());
        assert!(!idx.actually_holds(c(0), d(1)));
    }

    #[test]
    fn lazy_deltas_stay_pending() {
        let cfg = CountingConfig {
            flush_threshold: 10.0,
            ..Default::default()
        };
        let mut idx = CountingBloomIndex::new(2, cfg);
        idx.on_store(c(0), d(1));
        assert!(idx.lookup_all(d(1), c(1)).is_empty(), "not yet flushed");
        idx.flush_all();
        assert_eq!(idx.lookup_all(d(1), c(1)), vec![c(0)]);
    }

    #[test]
    fn delta_traffic_scales_with_churn_not_size() {
        let mut idx = CountingBloomIndex::new(1, eager());
        for i in 0..1000 {
            idx.on_store(c(0), d(i));
        }
        let after_build = idx.stats().update_bytes;
        // One more churn event costs one delta, not a rebuild.
        idx.on_evict(c(0), d(0));
        let churn_cost = idx.stats().update_bytes - after_build;
        assert_eq!(churn_cost, DELTA_ENTRY_BYTES);
        // Compare: a rebuild-style summary would resend the whole filter.
        assert!(churn_cost < idx.memory_bytes() / 10);
    }

    #[test]
    fn no_false_negatives_under_churn() {
        let mut idx = CountingBloomIndex::new(2, eager());
        for i in 0..500 {
            idx.on_store(c(0), d(i));
        }
        for i in 0..250 {
            idx.on_evict(c(0), d(i));
        }
        for i in 250..500 {
            assert!(
                idx.lookup_all(d(i), c(1)).contains(&c(0)),
                "false negative at {i}"
            );
        }
    }

    #[test]
    fn duplicate_store_is_one_delta() {
        let mut idx = CountingBloomIndex::new(1, eager());
        idx.on_store(c(0), d(1));
        let bytes = idx.stats().update_bytes;
        idx.on_store(c(0), d(1)); // already present: no delta
        assert_eq!(idx.stats().update_bytes, bytes);
    }
}
