//! Delayed (batched) index updates.
//!
//! §5 of the paper argues index-update overhead is tolerable because updates
//! can be delayed: citing Fan et al., updates are batched until a fixed
//! percentage of a browser's cached documents have changed (1%–10%
//! thresholds degrade hit ratio by only ~0.2%–1.7%). [`DelayedIndex`] models
//! exactly that: each client accumulates pending store/evict notifications
//! and only flushes them to the proxy's published directory when the pending
//! fraction crosses a threshold (or a wall-clock interval elapses).
//!
//! Between flushes the published directory is stale in both directions:
//! lookups can return clients that already evicted the document (*stale
//! hits* — the simulator falls back to the server and counts the penalty)
//! and can miss clients that recently cached it (*missed opportunities*).

use crate::exact::ExactIndex;
use crate::stats::IndexStats;
use baps_trace::{ClientId, DocId};
use std::collections::HashSet;

/// Per-entry bytes in an update message: the 16-byte MD5 URL signature.
const UPDATE_ENTRY_BYTES: u64 = 16;

/// When a client's batch is flushed to the proxy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdatePolicy {
    /// Flush when pending ops exceed this fraction of the client's cached
    /// documents (the paper's 1%–10% "delay threshold").
    pub threshold_frac: f64,
    /// Never flush before this many ops are pending (avoids chatty updates
    /// from near-empty caches).
    pub min_pending: u64,
    /// Also flush every client at least this often (simulated ms), if set.
    pub interval_ms: Option<u64>,
}

impl UpdatePolicy {
    /// The paper's lenient end: 10% threshold.
    pub fn ten_percent() -> Self {
        UpdatePolicy {
            threshold_frac: 0.10,
            min_pending: 8,
            interval_ms: None,
        }
    }

    /// The paper's eager end: 1% threshold.
    pub fn one_percent() -> Self {
        UpdatePolicy {
            threshold_frac: 0.01,
            min_pending: 2,
            interval_ms: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingOp {
    Store(DocId),
    Evict(DocId),
}

#[derive(Debug, Clone, Default)]
struct ClientState {
    /// The browser's true contents (what an immediate flush would publish).
    actual: HashSet<DocId>,
    /// Ops not yet applied to the published directory, in order.
    pending: Vec<PendingOp>,
    last_flush_ms: u64,
}

/// A browser index whose published view lags the browsers by a batching
/// policy.
#[derive(Debug, Clone)]
pub struct DelayedIndex {
    published: ExactIndex,
    clients: Vec<ClientState>,
    policy: UpdatePolicy,
    now_ms: u64,
    stats: IndexStats,
}

impl DelayedIndex {
    /// Creates an index for `n_clients` clients under `policy`.
    pub fn new(n_clients: u32, policy: UpdatePolicy) -> Self {
        assert!(policy.threshold_frac >= 0.0);
        DelayedIndex {
            published: ExactIndex::new(),
            clients: vec![ClientState::default(); n_clients as usize],
            policy,
            now_ms: 0,
            stats: IndexStats::default(),
        }
    }

    /// Records that `client` cached `doc`; may trigger a flush.
    pub fn on_store(&mut self, client: ClientId, doc: DocId) {
        self.stats.updates += 1;
        let state = &mut self.clients[client.index()];
        state.actual.insert(doc);
        state.pending.push(PendingOp::Store(doc));
        self.maybe_flush(client);
    }

    /// Records that `client` evicted `doc`; may trigger a flush.
    pub fn on_evict(&mut self, client: ClientId, doc: DocId) {
        self.stats.updates += 1;
        let state = &mut self.clients[client.index()];
        state.actual.remove(&doc);
        state.pending.push(PendingOp::Evict(doc));
        self.maybe_flush(client);
    }

    /// Advances simulated time; flushes clients whose interval expired.
    pub fn advance_time(&mut self, now_ms: u64) {
        self.now_ms = self.now_ms.max(now_ms);
        if let Some(interval) = self.policy.interval_ms {
            for i in 0..self.clients.len() {
                let state = &self.clients[i];
                if !state.pending.is_empty()
                    && self.now_ms.saturating_sub(state.last_flush_ms) >= interval
                {
                    self.flush(ClientId(i as u32));
                }
            }
        }
    }

    fn maybe_flush(&mut self, client: ClientId) {
        let state = &self.clients[client.index()];
        let threshold = ((state.actual.len() as f64) * self.policy.threshold_frac)
            .ceil()
            .max(self.policy.min_pending as f64) as usize;
        if state.pending.len() >= threshold.max(1) {
            self.flush(client);
        }
    }

    /// Applies a client's pending batch to the published directory.
    pub fn flush(&mut self, client: ClientId) {
        let state = &mut self.clients[client.index()];
        if state.pending.is_empty() {
            return;
        }
        let ops = std::mem::take(&mut state.pending);
        state.last_flush_ms = self.now_ms;
        self.stats.flushes += 1;
        self.stats.messages += 1;
        self.stats.update_bytes += ops.len() as u64 * UPDATE_ENTRY_BYTES;
        for op in ops {
            match op {
                PendingOp::Store(doc) => self.published.on_store(client, doc),
                PendingOp::Evict(doc) => {
                    self.published.on_evict(client, doc);
                }
            }
        }
    }

    /// Flushes every client (e.g. at simulation end, for inspection).
    pub fn flush_all(&mut self) {
        for i in 0..self.clients.len() {
            self.flush(ClientId(i as u32));
        }
    }

    /// Looks up the published (possibly stale) directory.
    pub fn lookup(&mut self, doc: DocId, exclude: ClientId) -> Option<ClientId> {
        let r = self.published.lookup(doc, exclude);
        self.stats.lookups += 1;
        if r.is_some() {
            self.stats.index_hits += 1;
        }
        r
    }

    /// All published candidates, most recent first.
    pub fn lookup_all(&mut self, doc: DocId, exclude: ClientId) -> Vec<ClientId> {
        let r = self.published.lookup_all(doc, exclude);
        self.stats.lookups += 1;
        if !r.is_empty() {
            self.stats.index_hits += 1;
        }
        r
    }

    /// Whether the *published* view says `client` holds `doc`.
    pub fn published_contains(&self, client: ClientId, doc: DocId) -> bool {
        self.published.contains(client, doc)
    }

    /// Whether the client's *true* cache holds `doc` (ground truth).
    pub fn actually_holds(&self, client: ClientId, doc: DocId) -> bool {
        self.clients[client.index()].actual.contains(&doc)
    }

    /// Estimated memory of the published directory.
    pub fn memory_bytes(&self) -> u64 {
        self.published.memory_bytes()
    }

    /// Traffic/access statistics (excluding the inner directory's own
    /// lookup counters, which would double-count).
    pub fn stats(&self) -> IndexStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ClientId {
        ClientId(i)
    }
    fn d(i: u32) -> DocId {
        DocId(i)
    }

    fn lazy_policy() -> UpdatePolicy {
        UpdatePolicy {
            threshold_frac: 1.0,
            min_pending: 100,
            interval_ms: None,
        }
    }

    #[test]
    fn updates_are_invisible_until_flush() {
        let mut idx = DelayedIndex::new(4, lazy_policy());
        idx.on_store(c(0), d(1));
        assert_eq!(idx.lookup(d(1), c(3)), None, "not yet published");
        assert!(idx.actually_holds(c(0), d(1)));
        idx.flush(c(0));
        assert_eq!(idx.lookup(d(1), c(3)), Some(c(0)));
    }

    #[test]
    fn eviction_staleness_window() {
        let mut idx = DelayedIndex::new(4, lazy_policy());
        idx.on_store(c(0), d(1));
        idx.flush(c(0));
        idx.on_evict(c(0), d(1));
        // Published view is stale: still claims c0 holds d1.
        assert_eq!(idx.lookup(d(1), c(3)), Some(c(0)));
        assert!(idx.published_contains(c(0), d(1)));
        assert!(!idx.actually_holds(c(0), d(1)));
        idx.flush(c(0));
        assert_eq!(idx.lookup(d(1), c(3)), None);
    }

    #[test]
    fn threshold_triggers_flush() {
        let policy = UpdatePolicy {
            threshold_frac: 0.5,
            min_pending: 2,
            interval_ms: None,
        };
        let mut idx = DelayedIndex::new(2, policy);
        idx.on_store(c(0), d(1)); // pending 1, actual 1, threshold max(2, 1) = 2
        assert_eq!(idx.stats().flushes, 0);
        idx.on_store(c(0), d(2)); // pending 2 -> flush
        assert_eq!(idx.stats().flushes, 1);
        assert_eq!(idx.lookup(d(1), c(1)), Some(c(0)));
        assert_eq!(idx.lookup(d(2), c(1)), Some(c(0)));
    }

    #[test]
    fn interval_flushes_on_advance_time() {
        let policy = UpdatePolicy {
            threshold_frac: 1.0,
            min_pending: 1000,
            interval_ms: Some(60_000),
        };
        let mut idx = DelayedIndex::new(2, policy);
        idx.on_store(c(0), d(1));
        idx.advance_time(30_000);
        assert_eq!(idx.lookup(d(1), c(1)), None);
        idx.advance_time(60_001);
        assert_eq!(idx.lookup(d(1), c(1)), Some(c(0)));
    }

    #[test]
    fn flush_all_publishes_everything() {
        let mut idx = DelayedIndex::new(3, lazy_policy());
        idx.on_store(c(0), d(1));
        idx.on_store(c(1), d(2));
        idx.flush_all();
        assert_eq!(idx.lookup(d(1), c(2)), Some(c(0)));
        assert_eq!(idx.lookup(d(2), c(2)), Some(c(1)));
        // Flushing with nothing pending is free.
        let flushes = idx.stats().flushes;
        idx.flush_all();
        assert_eq!(idx.stats().flushes, flushes);
    }

    #[test]
    fn update_traffic_accounted() {
        let mut idx = DelayedIndex::new(2, lazy_policy());
        idx.on_store(c(0), d(1));
        idx.on_store(c(0), d(2));
        idx.on_evict(c(0), d(1));
        idx.flush(c(0));
        let s = idx.stats();
        assert_eq!(s.messages, 1);
        assert_eq!(s.update_bytes, 3 * 16);
        assert_eq!(s.updates, 3);
    }

    #[test]
    fn pending_ops_apply_in_order() {
        let mut idx = DelayedIndex::new(2, lazy_policy());
        idx.on_store(c(0), d(1));
        idx.on_evict(c(0), d(1));
        idx.on_store(c(0), d(1));
        idx.flush(c(0));
        assert_eq!(idx.lookup(d(1), c(1)), Some(c(0)));
    }
}
