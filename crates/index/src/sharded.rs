//! Doc-sharded exact index: N independent [`ExactIndex`] shards routed by
//! a [`DocId`] hash.
//!
//! Every [`ExactIndex`] operation is keyed by document, so partitioning the
//! document space across shards preserves the exact semantics while letting
//! a concurrent caller (the live proxy wraps each shard in its own lock)
//! touch only one shard per operation. The routing function is a fixed
//! multiplicative hash so the shard assignment is deterministic across
//! runs and processes — the property tests and the proxy's `STATS`
//! shard-occupancy report rely on that.

use crate::exact::ExactIndex;
use crate::stats::IndexStats;
use baps_trace::{ClientId, DocId};

/// Default shard count used by the live proxy (see DESIGN.md for the
/// sizing argument).
pub const DEFAULT_SHARDS: usize = 16;

/// Deterministic shard routing: Fibonacci multiplicative hashing spreads
/// dense interner-assigned ids evenly instead of clustering neighbours.
pub fn shard_of(doc: DocId, n_shards: usize) -> usize {
    debug_assert!(n_shards > 0);
    (((doc.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % n_shards
}

/// An [`ExactIndex`] partitioned into doc-keyed shards, observationally
/// equivalent to a single exact index.
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    shards: Vec<ExactIndex>,
}

impl ShardedIndex {
    /// Creates an empty index with `n_shards` shards (at least one).
    pub fn new(n_shards: usize) -> Self {
        ShardedIndex {
            shards: (0..n_shards.max(1)).map(|_| ExactIndex::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_mut(&mut self, doc: DocId) -> &mut ExactIndex {
        let i = shard_of(doc, self.shards.len());
        &mut self.shards[i]
    }

    /// Records that `client` now caches `doc`.
    pub fn on_store(&mut self, client: ClientId, doc: DocId) {
        self.shard_mut(doc).on_store(client, doc);
    }

    /// Records that `client` evicted `doc`.
    pub fn on_evict(&mut self, client: ClientId, doc: DocId) {
        self.shard_mut(doc).on_evict(client, doc);
    }

    /// Preferred holder of `doc` other than `exclude` (most recent first).
    pub fn lookup(&mut self, doc: DocId, exclude: ClientId) -> Option<ClientId> {
        self.shard_mut(doc).lookup(doc, exclude)
    }

    /// All holders of `doc` other than `exclude`, most recent first.
    pub fn lookup_all(&mut self, doc: DocId, exclude: ClientId) -> Vec<ClientId> {
        self.shard_mut(doc).lookup_all(doc, exclude)
    }

    /// Whether the index believes `client` caches `doc`.
    pub fn contains(&self, client: ClientId, doc: DocId) -> bool {
        self.shards[shard_of(doc, self.shards.len())].contains(client, doc)
    }

    /// Total (client, doc) entries across all shards.
    pub fn entries(&self) -> u64 {
        self.shards.iter().map(ExactIndex::entries).sum()
    }

    /// Per-shard entry counts (occupancy report).
    pub fn shard_entries(&self) -> Vec<u64> {
        self.shards.iter().map(ExactIndex::entries).collect()
    }

    /// Total distinct indexed documents across all shards (shards partition
    /// the doc space, so the sum is exact).
    pub fn distinct_docs(&self) -> usize {
        self.shards.iter().map(ExactIndex::distinct_docs).sum()
    }

    /// Estimated memory footprint (paper §5 accounting).
    pub fn memory_bytes(&self) -> u64 {
        self.shards.iter().map(ExactIndex::memory_bytes).sum()
    }

    /// Access statistics merged across shards.
    pub fn stats(&self) -> IndexStats {
        let mut out = IndexStats::default();
        for shard in &self.shards {
            out.merge(&shard.stats());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ClientId {
        ClientId(i)
    }
    fn d(i: u32) -> DocId {
        DocId(i)
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for n in [1usize, 2, 3, 16] {
            for id in 0..1000 {
                let s = shard_of(d(id), n);
                assert!(s < n);
                assert_eq!(s, shard_of(d(id), n), "stable per (doc, n)");
            }
        }
    }

    #[test]
    fn dense_ids_spread_across_shards() {
        let n = 16;
        let mut hist = vec![0u32; n];
        for id in 0..160 {
            hist[shard_of(d(id), n)] += 1;
        }
        let occupied = hist.iter().filter(|&&h| h > 0).count();
        assert!(occupied >= n / 2, "dense ids clustered: {hist:?}");
    }

    #[test]
    fn behaves_like_exact_index() {
        let mut sharded = ShardedIndex::new(4);
        let mut exact = ExactIndex::new();
        for i in 0..64 {
            sharded.on_store(c(i % 5), d(i % 13));
            exact.on_store(c(i % 5), d(i % 13));
        }
        for i in 0..16 {
            sharded.on_evict(c(i % 5), d(i % 13));
            exact.on_evict(c(i % 5), d(i % 13));
        }
        assert_eq!(sharded.entries(), exact.entries());
        assert_eq!(sharded.distinct_docs(), exact.distinct_docs());
        assert_eq!(sharded.memory_bytes(), exact.memory_bytes());
        for doc in 0..13 {
            assert_eq!(
                sharded.lookup_all(d(doc), c(99)),
                exact.lookup_all(d(doc), c(99))
            );
        }
    }

    #[test]
    fn shard_entries_sum_to_total() {
        let mut idx = ShardedIndex::new(8);
        for i in 0..100 {
            idx.on_store(c(i % 7), d(i));
        }
        assert_eq!(idx.shard_entries().iter().sum::<u64>(), idx.entries());
        assert_eq!(idx.shard_entries().len(), 8);
    }

    #[test]
    fn single_shard_is_plain_exact() {
        let mut idx = ShardedIndex::new(1);
        idx.on_store(c(0), d(7));
        idx.on_store(c(1), d(7));
        assert_eq!(idx.lookup(d(7), c(9)), Some(c(1)));
        assert_eq!(idx.n_shards(), 1);
    }
}
