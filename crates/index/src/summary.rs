//! Bloom-filter cache summaries (Summary-Cache style).
//!
//! Instead of an exact per-URL directory, the proxy can hold one Bloom
//! filter per client, rebuilt whenever a threshold fraction of that client's
//! cache has changed. This shrinks the index by an order of magnitude
//! (paper §5: "a storage of 2 MB is sufficient for the browsers with a
//! tolerant inaccuracy") at the cost of false positives — remote probes to
//! clients that do not actually hold the document — and staleness between
//! rebuilds.

use crate::bloom::BloomFilter;
use crate::stats::IndexStats;
use baps_trace::{ClientId, DocId};
use std::collections::HashSet;

/// Configuration of the summary index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryConfig {
    /// Bits per cached document in each client's filter (8–16 typical).
    pub bits_per_item: u64,
    /// Number of hash functions.
    pub hashes: u32,
    /// Rebuild a client's filter when this fraction of its cache changed.
    pub rebuild_threshold: f64,
    /// Expected documents per client (initial filter sizing).
    pub expected_items: u64,
}

impl Default for SummaryConfig {
    fn default() -> Self {
        SummaryConfig {
            bits_per_item: 10,
            hashes: 4,
            rebuild_threshold: 0.05,
            expected_items: 1024,
        }
    }
}

#[derive(Debug, Clone)]
struct ClientSummary {
    /// Ground-truth cache contents.
    actual: HashSet<DocId>,
    /// The published (possibly stale) filter.
    filter: BloomFilter,
    /// Changes since the last rebuild.
    dirty: u64,
}

/// A per-client Bloom-summary browser index.
#[derive(Debug, Clone)]
pub struct BloomSummaryIndex {
    clients: Vec<ClientSummary>,
    config: SummaryConfig,
    stats: IndexStats,
}

impl BloomSummaryIndex {
    /// Creates summaries for `n_clients` clients.
    pub fn new(n_clients: u32, config: SummaryConfig) -> Self {
        assert!(config.rebuild_threshold > 0.0);
        let mk = || ClientSummary {
            actual: HashSet::new(),
            filter: BloomFilter::for_items(
                config.expected_items,
                config.bits_per_item,
                config.hashes,
            ),
            dirty: 0,
        };
        BloomSummaryIndex {
            clients: (0..n_clients).map(|_| mk()).collect(),
            config,
            stats: IndexStats::default(),
        }
    }

    /// Records that `client` cached `doc`.
    pub fn on_store(&mut self, client: ClientId, doc: DocId) {
        self.stats.updates += 1;
        let state = &mut self.clients[client.index()];
        if state.actual.insert(doc) {
            state.dirty += 1;
        }
        self.maybe_rebuild(client);
    }

    /// Records that `client` evicted `doc`.
    pub fn on_evict(&mut self, client: ClientId, doc: DocId) {
        self.stats.updates += 1;
        let state = &mut self.clients[client.index()];
        if state.actual.remove(&doc) {
            state.dirty += 1;
        }
        self.maybe_rebuild(client);
    }

    fn maybe_rebuild(&mut self, client: ClientId) {
        let state = &self.clients[client.index()];
        let threshold =
            ((state.actual.len().max(16) as f64) * self.config.rebuild_threshold).ceil() as u64;
        if state.dirty >= threshold.max(1) {
            self.rebuild(client);
        }
    }

    /// Rebuilds (and "transmits") a client's filter from its true contents.
    pub fn rebuild(&mut self, client: ClientId) {
        let config = self.config;
        let state = &mut self.clients[client.index()];
        // Re-size for the current population to keep the FP rate stable.
        state.filter = BloomFilter::for_items(
            (state.actual.len() as u64).max(config.expected_items / 4),
            config.bits_per_item,
            config.hashes,
        );
        for &doc in &state.actual {
            state.filter.insert(doc);
        }
        state.dirty = 0;
        self.stats.flushes += 1;
        self.stats.messages += 1;
        self.stats.update_bytes += state.filter.byte_size();
    }

    /// Rebuilds every client's filter.
    pub fn rebuild_all(&mut self) {
        for i in 0..self.clients.len() {
            self.rebuild(ClientId(i as u32));
        }
    }

    /// All clients whose published filter claims `doc` (false positives and
    /// stale entries possible), excluding the requester.
    pub fn lookup_all(&mut self, doc: DocId, exclude: ClientId) -> Vec<ClientId> {
        self.stats.lookups += 1;
        let found: Vec<ClientId> = self
            .clients
            .iter()
            .enumerate()
            .filter(|&(i, s)| ClientId(i as u32) != exclude && s.filter.contains(doc))
            .map(|(i, _)| ClientId(i as u32))
            .collect();
        if !found.is_empty() {
            self.stats.index_hits += 1;
        }
        found
    }

    /// First candidate holder (lowest client id), if any.
    pub fn lookup(&mut self, doc: DocId, exclude: ClientId) -> Option<ClientId> {
        self.lookup_all(doc, exclude).into_iter().next()
    }

    /// Ground truth: does the client's cache really hold the doc?
    pub fn actually_holds(&self, client: ClientId, doc: DocId) -> bool {
        self.clients[client.index()].actual.contains(&doc)
    }

    /// Total bytes of all published filters (the §5 space argument).
    pub fn memory_bytes(&self) -> u64 {
        self.clients.iter().map(|s| s.filter.byte_size()).sum()
    }

    /// Access statistics.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ClientId {
        ClientId(i)
    }
    fn d(i: u32) -> DocId {
        DocId(i)
    }

    fn eager() -> SummaryConfig {
        SummaryConfig {
            rebuild_threshold: 1e-9, // rebuild on every change
            ..Default::default()
        }
    }

    #[test]
    fn stored_docs_are_found() {
        let mut idx = BloomSummaryIndex::new(4, eager());
        idx.on_store(c(1), d(42));
        let holders = idx.lookup_all(d(42), c(0));
        assert!(holders.contains(&c(1)));
        assert!(!holders.contains(&c(0)));
    }

    #[test]
    fn requester_excluded() {
        let mut idx = BloomSummaryIndex::new(4, eager());
        idx.on_store(c(1), d(42));
        assert!(!idx.lookup_all(d(42), c(1)).contains(&c(1)));
    }

    #[test]
    fn eviction_visible_after_rebuild() {
        let mut idx = BloomSummaryIndex::new(2, eager());
        idx.on_store(c(0), d(1));
        idx.on_evict(c(0), d(1));
        assert!(!idx.actually_holds(c(0), d(1)));
        // Eager rebuild means the published filter is already clean.
        assert!(idx.lookup_all(d(1), c(1)).is_empty());
    }

    #[test]
    fn lazy_threshold_leaves_staleness() {
        let cfg = SummaryConfig {
            rebuild_threshold: 10.0, // effectively never
            ..Default::default()
        };
        let mut idx = BloomSummaryIndex::new(2, cfg);
        idx.on_store(c(0), d(1));
        // Never rebuilt: the published (empty) filter misses the doc.
        assert!(idx.lookup_all(d(1), c(1)).is_empty());
        idx.rebuild(c(0));
        assert_eq!(idx.lookup_all(d(1), c(1)), vec![c(0)]);
    }

    #[test]
    fn rebuild_traffic_accounted() {
        let mut idx = BloomSummaryIndex::new(2, eager());
        idx.on_store(c(0), d(1));
        let s = idx.stats();
        assert!(s.flushes >= 1);
        assert!(s.update_bytes > 0);
    }

    #[test]
    fn memory_is_compact_relative_to_exact() {
        let mut idx = BloomSummaryIndex::new(1, SummaryConfig::default());
        for i in 0..1024 {
            idx.on_store(c(0), d(i));
        }
        idx.rebuild_all();
        // 10 bits/doc ≈ 1.25 B/doc vs 28 B/doc exact: > 10x smaller.
        let exact_bytes = 1024 * crate::exact::BYTES_PER_ENTRY;
        assert!(idx.memory_bytes() * 10 < exact_bytes * 2);
    }

    #[test]
    fn no_false_negatives_after_rebuild() {
        let mut idx = BloomSummaryIndex::new(2, eager());
        for i in 0..500 {
            idx.on_store(c(0), d(i));
        }
        idx.rebuild_all();
        for i in 0..500 {
            assert!(
                idx.lookup_all(d(i), c(1)).contains(&c(0)),
                "false negative {i}"
            );
        }
    }
}
