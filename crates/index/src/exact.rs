//! The exact, invalidation-driven browser index (the paper's base design).
//!
//! The proxy learns about browser-cache contents from two event streams
//! (§2): an index item is **added** when the proxy sends a document to a
//! browser, and **removed** when the browser sends an invalidation message
//! on eviction. With both streams applied synchronously the index mirrors
//! the union of all browser caches exactly.

use crate::stats::IndexStats;
use baps_trace::{ClientId, DocId};
use std::collections::HashMap;

/// Estimated bytes per index entry: a 16-byte MD5 URL signature plus a
/// client id and list overhead (paper §5 sizes the index this way).
pub const BYTES_PER_ENTRY: u64 = 16 + 4 + 8;

/// Exact directory of which clients cache which documents.
#[derive(Debug, Clone, Default)]
pub struct ExactIndex {
    /// doc -> holders, most recently stored last.
    holders: HashMap<DocId, Vec<ClientId>>,
    /// Total number of (client, doc) entries.
    entries: u64,
    stats: IndexStats,
}

impl ExactIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `client` now caches `doc`.
    pub fn on_store(&mut self, client: ClientId, doc: DocId) {
        let list = self.holders.entry(doc).or_default();
        if let Some(pos) = list.iter().position(|&c| c == client) {
            // Refresh recency within the holder list.
            list.remove(pos);
        } else {
            self.entries += 1;
        }
        list.push(client);
        self.stats.updates += 1;
    }

    /// Records that `client` evicted `doc`. Returns whether an entry was
    /// actually removed — `false` means the notice was stale (already
    /// applied, or the index never held it), which lets callers treat
    /// replayed eviction notices idempotently.
    pub fn on_evict(&mut self, client: ClientId, doc: DocId) -> bool {
        let mut removed = false;
        if let Some(list) = self.holders.get_mut(&doc) {
            if let Some(pos) = list.iter().position(|&c| c == client) {
                list.remove(pos);
                self.entries -= 1;
                removed = true;
                if list.is_empty() {
                    self.holders.remove(&doc);
                }
            }
        }
        self.stats.updates += 1;
        removed
    }

    /// Returns the preferred holder of `doc` other than `exclude`
    /// (most recently stored first, so the copy is least likely stale).
    pub fn lookup(&mut self, doc: DocId, exclude: ClientId) -> Option<ClientId> {
        self.stats.lookups += 1;
        let found = self
            .holders
            .get(&doc)
            .and_then(|list| list.iter().rev().find(|&&c| c != exclude).copied());
        if found.is_some() {
            self.stats.index_hits += 1;
        }
        found
    }

    /// Returns all holders of `doc` other than `exclude`, most recent first.
    pub fn lookup_all(&mut self, doc: DocId, exclude: ClientId) -> Vec<ClientId> {
        self.stats.lookups += 1;
        let found: Vec<ClientId> = self
            .holders
            .get(&doc)
            .map(|list| {
                list.iter()
                    .rev()
                    .filter(|&&c| c != exclude)
                    .copied()
                    .collect()
            })
            .unwrap_or_default();
        if !found.is_empty() {
            self.stats.index_hits += 1;
        }
        found
    }

    /// Whether the index believes `client` caches `doc` (no stats effects).
    pub fn contains(&self, client: ClientId, doc: DocId) -> bool {
        self.holders
            .get(&doc)
            .is_some_and(|list| list.contains(&client))
    }

    /// Number of (client, doc) entries.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Number of distinct indexed documents.
    pub fn distinct_docs(&self) -> usize {
        self.holders.len()
    }

    /// Estimated memory footprint of the index (paper §5 accounting).
    pub fn memory_bytes(&self) -> u64 {
        self.entries * BYTES_PER_ENTRY
    }

    /// Access statistics.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ClientId {
        ClientId(i)
    }
    fn d(i: u32) -> DocId {
        DocId(i)
    }

    #[test]
    fn store_and_lookup() {
        let mut idx = ExactIndex::new();
        idx.on_store(c(0), d(7));
        assert_eq!(idx.lookup(d(7), c(1)), Some(c(0)));
        assert_eq!(idx.lookup(d(7), c(0)), None, "requester excluded");
        assert_eq!(idx.lookup(d(8), c(1)), None);
        assert_eq!(idx.entries(), 1);
    }

    #[test]
    fn evict_removes_entry() {
        let mut idx = ExactIndex::new();
        idx.on_store(c(0), d(7));
        idx.on_evict(c(0), d(7));
        assert_eq!(idx.lookup(d(7), c(1)), None);
        assert_eq!(idx.entries(), 0);
        assert_eq!(idx.distinct_docs(), 0);
    }

    #[test]
    fn evict_unknown_is_noop() {
        let mut idx = ExactIndex::new();
        idx.on_store(c(0), d(7));
        idx.on_evict(c(1), d(7));
        idx.on_evict(c(0), d(9));
        assert_eq!(idx.entries(), 1);
        assert!(idx.contains(c(0), d(7)));
    }

    #[test]
    fn most_recent_holder_preferred() {
        let mut idx = ExactIndex::new();
        idx.on_store(c(0), d(7));
        idx.on_store(c(1), d(7));
        idx.on_store(c(2), d(7));
        assert_eq!(idx.lookup(d(7), c(9)), Some(c(2)));
        // Excluding the most recent falls back to the next.
        assert_eq!(idx.lookup(d(7), c(2)), Some(c(1)));
        // Re-storing refreshes recency.
        idx.on_store(c(0), d(7));
        assert_eq!(idx.lookup(d(7), c(9)), Some(c(0)));
        assert_eq!(idx.entries(), 3);
    }

    #[test]
    fn lookup_all_order_and_exclusion() {
        let mut idx = ExactIndex::new();
        idx.on_store(c(0), d(7));
        idx.on_store(c(1), d(7));
        idx.on_store(c(2), d(7));
        assert_eq!(idx.lookup_all(d(7), c(1)), vec![c(2), c(0)]);
    }

    #[test]
    fn duplicate_store_counts_once() {
        let mut idx = ExactIndex::new();
        idx.on_store(c(0), d(7));
        idx.on_store(c(0), d(7));
        assert_eq!(idx.entries(), 1);
        assert_eq!(idx.memory_bytes(), BYTES_PER_ENTRY);
    }

    #[test]
    fn stats_track_traffic() {
        let mut idx = ExactIndex::new();
        idx.on_store(c(0), d(1));
        idx.lookup(d(1), c(5));
        idx.lookup(d(2), c(5));
        let s = idx.stats();
        assert_eq!(s.updates, 1);
        assert_eq!(s.lookups, 2);
        assert_eq!(s.index_hits, 1);
    }
}
