//! Index access/traffic statistics.

use serde::{Deserialize, Serialize};

/// Counters accumulated by an index implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexStats {
    /// Lookup operations performed.
    pub lookups: u64,
    /// Lookups that returned at least one candidate holder.
    pub index_hits: u64,
    /// Update operations applied (stores + evictions).
    pub updates: u64,
    /// Update messages actually transmitted browser → proxy (delayed
    /// models batch several updates per message).
    pub messages: u64,
    /// Bytes of update traffic (16-byte signature per entry, paper §5).
    pub update_bytes: u64,
    /// Batch flushes performed (delayed/summary models).
    pub flushes: u64,
}

impl IndexStats {
    /// Fraction of lookups that found at least one candidate holder
    /// (0 when no lookups have happened).
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.index_hits as f64 / self.lookups as f64
        }
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &IndexStats) {
        self.lookups += other.lookups;
        self.index_hits += other.index_hits;
        self.updates += other.updates;
        self.messages += other.messages;
        self.update_bytes += other.update_bytes;
        self.flushes += other.flushes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = IndexStats {
            lookups: 1,
            index_hits: 1,
            updates: 2,
            messages: 1,
            update_bytes: 16,
            flushes: 0,
        };
        let b = IndexStats {
            lookups: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.lookups, 4);
        assert_eq!(a.updates, 2);
    }

    #[test]
    fn hit_ratio_handles_empty() {
        assert_eq!(IndexStats::default().hit_ratio(), 0.0);
        let s = IndexStats {
            lookups: 4,
            index_hits: 1,
            ..Default::default()
        };
        assert!((s.hit_ratio() - 0.25).abs() < 1e-12);
    }
}
