//! Property-based tests of the crypto layer.

use baps_crypto::{
    decrypt_message, encrypt_message, md5, sign_digest, verify_digest, KeyPair, Md5, ProxySigner,
    Watermark, XteaKey,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Incremental MD5 over arbitrary chunkings equals one-shot MD5.
    #[test]
    fn md5_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        splits in proptest::collection::vec(0usize..2048, 0..8),
    ) {
        let oneshot = md5(&data);
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        cuts.push(0);
        cuts.push(data.len());
        cuts.sort_unstable();
        let mut ctx = Md5::new();
        for w in cuts.windows(2) {
            ctx.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(ctx.finalize(), oneshot);
    }

    /// RSA message encryption round-trips for arbitrary payloads.
    #[test]
    fn rsa_message_roundtrip(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let kp = KeyPair::generate(&mut StdRng::seed_from_u64(seed));
        let ct = encrypt_message(&kp.public, &msg).unwrap();
        let pt = decrypt_message(&kp.private, &ct).unwrap();
        prop_assert_eq!(pt, msg);
    }

    /// Signatures verify iff the digest is unchanged.
    #[test]
    fn signature_soundness(
        seed in any::<u64>(),
        doc in proptest::collection::vec(any::<u8>(), 0..512),
        flip in any::<u8>(),
    ) {
        let kp = KeyPair::generate(&mut StdRng::seed_from_u64(seed));
        let d = md5(&doc);
        let sig = sign_digest(&kp.private, &d);
        prop_assert!(verify_digest(&kp.public, &d, &sig));
        // Any single-byte change to the doc changes the digest -> rejection.
        let mut tampered = doc.clone();
        if tampered.is_empty() {
            tampered.push(flip);
        } else {
            let idx = flip as usize % tampered.len();
            tampered[idx] = tampered[idx].wrapping_add(1);
        }
        let d2 = md5(&tampered);
        prop_assert!(d2 != d);
        prop_assert!(!verify_digest(&kp.public, &d2, &sig));
    }

    /// XTEA-CBC round-trips for arbitrary payloads and keys.
    #[test]
    fn xtea_cbc_roundtrip(
        key in any::<[u32; 4]>(),
        rng_seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let k = XteaKey(key);
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let ct = k.encrypt_cbc(&mut rng, &msg);
        prop_assert_eq!(k.decrypt_cbc(&ct).unwrap(), msg);
    }

    /// Watermarks verify intact documents and reject any corruption.
    #[test]
    fn watermark_soundness(
        seed in any::<u64>(),
        doc in proptest::collection::vec(any::<u8>(), 1..512),
        idx in any::<usize>(),
    ) {
        let signer = ProxySigner::generate(&mut StdRng::seed_from_u64(seed));
        let wm = signer.watermark(&doc);
        prop_assert!(baps_crypto::verify_document(&signer.public_key(), &doc, &wm).is_ok());
        let mut bad = doc.clone();
        let i = idx % bad.len();
        bad[i] = bad[i].wrapping_add(1);
        prop_assert!(baps_crypto::verify_document(&signer.public_key(), &bad, &wm).is_err());
    }

    /// The full §6.1 tamper matrix: a flipped byte, a truncated body, and
    /// a forged (bit-flipped) watermark must each fail verification — a
    /// peer can never make wrong bytes verify.
    #[test]
    fn watermark_tamper_matrix(
        seed in any::<u64>(),
        doc in proptest::collection::vec(any::<u8>(), 2..512),
        idx in any::<usize>(),
        sig_byte in any::<usize>(),
        sig_bit in 0u32..8,
    ) {
        let signer = ProxySigner::generate(&mut StdRng::seed_from_u64(seed));
        let key = signer.public_key();
        let wm = signer.watermark(&doc);
        prop_assert!(baps_crypto::verify_document(&key, &doc, &wm).is_ok());

        // Flipped byte anywhere in the body.
        let mut flipped = doc.clone();
        let i = idx % flipped.len();
        flipped[i] ^= 0xff;
        prop_assert!(baps_crypto::verify_document(&key, &flipped, &wm).is_err());

        // Truncated body (a well-formed frame can still carry one).
        prop_assert!(baps_crypto::verify_document(&key, &doc[..doc.len() / 2], &wm).is_err());

        // Forged watermark: any single bit flipped in the signature. It
        // still parses as a watermark but must not verify the real bytes.
        let mut forged_bytes = wm.to_bytes();
        forged_bytes[sig_byte % 32] ^= 1u8 << sig_bit;
        let forged = Watermark::from_bytes(&forged_bytes).unwrap();
        prop_assert!(baps_crypto::verify_document(&key, &doc, &forged).is_err());

        // The forgery survives the hex wire encoding and is still caught.
        let rewired = Watermark::from_hex(&forged.to_hex()).unwrap();
        prop_assert!(baps_crypto::verify_document(&key, &doc, &rewired).is_err());
    }
}
