//! # baps-crypto — integrity and anonymity protocols for BAPS
//!
//! Implements the reliability layer of the paper's §6:
//!
//! * [`mod@md5`] — MD5 per RFC 1321 (the paper's digest for URL signatures and
//!   watermarks), implemented from scratch with RFC test vectors;
//! * [`rsa`] — textbook RSA over 64-bit moduli with deterministic
//!   Miller–Rabin key generation ([`prime`]);
//! * [`xtea`] — XTEA-CBC standing in for DES as the symmetric cipher;
//! * [`watermark`] — the §6.1 digital-watermark data-integrity protocol;
//! * [`anonymity`] — the §6.2 anonymizing-proxy protocol plus a
//!   content-blind secure relay variant.
//!
//! **Security disclaimer**: every primitive here is demonstration-grade,
//! sized to reproduce the *protocols* and their overhead ordering without
//! depending on crates outside the approved offline set. A 64-bit RSA
//! modulus offers no real security; MD5 is broken. Do not reuse this code
//! outside the reproduction.

#![warn(missing_docs)]

pub mod anonymity;
pub mod error;
pub mod md5;
pub mod prime;
pub mod rsa;
pub mod watermark;
pub mod xtea;

pub use anonymity::{
    requester_open, target_serve, AnonymizingProxy, Delivery, FetchOrder, FetchReply, PeerId,
    SealedDelivery, SealedOrder, SecureRelay, TxnId,
};
pub use error::CryptoError;
pub use md5::{md5, Digest, Md5};
pub use rsa::{
    decrypt_message, encrypt_message, sign_digest, verify_digest, KeyPair, PrivateKey, PublicKey,
    Signature,
};
pub use watermark::{verify_document, ProxySigner, Watermark};
pub use xtea::XteaKey;
