//! Digital watermarks for data integrity (paper §6.1).
//!
//! When the proxy first fetches a document from the server it produces a
//! *digital watermark*: the MD5 digest of the document, encrypted with the
//! proxy's private key. The watermark travels with the document into browser
//! caches. When a peer later serves the document out of its browser cache,
//! the requesting client recomputes the MD5 digest and checks it against the
//! watermark decrypted with the proxy's **public** key. No client can tamper
//! with a document and forge a matching watermark, because only the proxy
//! knows its private key.

use crate::error::CryptoError;
use crate::md5::{md5, Digest};
use crate::rsa::{sign_digest, verify_digest, KeyPair, PublicKey, Signature};
use rand::Rng;

/// A watermark: signature over the document's MD5 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermark {
    /// The signed signature blocks.
    pub signature: Signature,
}

impl Watermark {
    /// Serialises to 32 bytes.
    pub fn to_bytes(self) -> [u8; 32] {
        self.signature.to_bytes()
    }

    /// Parses 32 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Watermark, CryptoError> {
        Ok(Watermark {
            signature: Signature::from_bytes(bytes)?,
        })
    }

    /// Renders as hex (for wire headers).
    pub fn to_hex(self) -> String {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut out = String::with_capacity(64);
        for b in self.to_bytes() {
            out.push(HEX[(b >> 4) as usize] as char);
            out.push(HEX[(b & 0xf) as usize] as char);
        }
        out
    }

    /// Parses the hex form produced by [`Watermark::to_hex`].
    pub fn from_hex(s: &str) -> Result<Watermark, CryptoError> {
        let s = s.trim();
        if s.len() != 64 || !s.is_char_boundary(0) {
            return Err(CryptoError::MalformedSignature);
        }
        let mut bytes = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char)
                .to_digit(16)
                .ok_or(CryptoError::MalformedSignature)?;
            let lo = (chunk[1] as char)
                .to_digit(16)
                .ok_or(CryptoError::MalformedSignature)?;
            bytes[i] = ((hi << 4) | lo) as u8;
        }
        Watermark::from_bytes(&bytes)
    }
}

/// The proxy-side signer holding the key pair.
#[derive(Debug, Clone)]
pub struct ProxySigner {
    keys: KeyPair,
}

impl ProxySigner {
    /// Generates a signer with a fresh key pair.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> ProxySigner {
        ProxySigner {
            keys: KeyPair::generate(rng),
        }
    }

    /// Wraps an existing key pair.
    pub fn from_keys(keys: KeyPair) -> ProxySigner {
        ProxySigner { keys }
    }

    /// The public key clients use for verification.
    pub fn public_key(&self) -> PublicKey {
        self.keys.public
    }

    /// Produces the watermark for a document body.
    pub fn watermark(&self, document: &[u8]) -> Watermark {
        let digest = md5(document);
        Watermark {
            signature: sign_digest(&self.keys.private, &digest),
        }
    }
}

/// Client-side verification: recompute the digest and check the signature
/// against the proxy's public key.
pub fn verify_document(
    proxy_key: &PublicKey,
    document: &[u8],
    watermark: &Watermark,
) -> Result<Digest, CryptoError> {
    let digest = md5(document);
    if verify_digest(proxy_key, &digest, &watermark.signature) {
        Ok(digest)
    } else {
        Err(CryptoError::WatermarkMismatch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn signer() -> ProxySigner {
        ProxySigner::generate(&mut StdRng::seed_from_u64(21))
    }

    #[test]
    fn intact_document_verifies() {
        let s = signer();
        let doc = b"<html>cached page</html>";
        let wm = s.watermark(doc);
        let digest = verify_document(&s.public_key(), doc, &wm).unwrap();
        assert_eq!(digest, md5(doc));
    }

    #[test]
    fn tampered_document_rejected() {
        let s = signer();
        let wm = s.watermark(b"<html>cached page</html>");
        let err = verify_document(&s.public_key(), b"<html>evil page!</html>", &wm).unwrap_err();
        assert_eq!(err, CryptoError::WatermarkMismatch);
    }

    #[test]
    fn single_bit_flip_rejected() {
        let s = signer();
        let mut doc = b"payload bytes".to_vec();
        let wm = s.watermark(&doc);
        doc[5] ^= 0x01;
        assert!(verify_document(&s.public_key(), &doc, &wm).is_err());
    }

    #[test]
    fn peer_cannot_forge_watermark() {
        let proxy = signer();
        // A malicious client generates its own keys and signs a modified doc.
        let evil = ProxySigner::generate(&mut StdRng::seed_from_u64(99));
        let forged = evil.watermark(b"modified doc");
        // Verification against the *proxy's* public key must fail.
        assert!(verify_document(&proxy.public_key(), b"modified doc", &forged).is_err());
    }

    #[test]
    fn hex_roundtrip() {
        let s = signer();
        let wm = s.watermark(b"doc");
        let back = Watermark::from_hex(&wm.to_hex()).unwrap();
        assert_eq!(back, wm);
        assert!(Watermark::from_hex("zz").is_err());
        assert!(Watermark::from_hex(&"g".repeat(64)).is_err());
    }

    #[test]
    fn bytes_roundtrip() {
        let s = signer();
        let wm = s.watermark(b"doc2");
        assert_eq!(Watermark::from_bytes(&wm.to_bytes()).unwrap(), wm);
    }

    #[test]
    fn empty_document_watermarkable() {
        let s = signer();
        let wm = s.watermark(b"");
        assert!(verify_document(&s.public_key(), b"", &wm).is_ok());
        assert!(verify_document(&s.public_key(), b"x", &wm).is_err());
    }
}
