//! Communication-anonymity protocols (paper §6.2).
//!
//! The browsers-aware proxy hides the identities of both the requesting
//! browser and the serving browser: a client always talks to the proxy, the
//! proxy contacts the target client and relays the content. The target never
//! learns who asked; the requester never learns who served. This module
//! models the protocol as explicit message types — none of the messages that
//! cross the proxy boundary carry a peer identity — plus the bookkeeping the
//! proxy keeps per transaction.
//!
//! Two modes are provided:
//!
//! * [`AnonymizingProxy`] — the paper's base design: the proxy relays
//!   plaintext documents (it is trusted with content anyway, being a cache).
//! * [`SecureRelay`] — the stronger variant sketched from the companion
//!   HP Labs report (Xu, Xiao, Zhang, HPL-2001-204): the proxy provisions a
//!   one-time session key per transaction, delivered to each endpoint under
//!   that endpoint's public key; the document body transits the proxy only
//!   as ciphertext, so even the relay cannot read it while still keeping the
//!   endpoints mutually anonymous.

use crate::error::CryptoError;
use crate::rsa::{decrypt_message, encrypt_message, KeyPair, PublicKey};
use crate::watermark::Watermark;
use crate::xtea::XteaKey;
use rand::Rng;
use std::collections::HashMap;

/// Opaque peer identity, known only to the proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeerId(pub u32);

/// Per-exchange transaction identifier (the only correlation token peers
/// ever see).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxnId(pub u64);

/// Proxy → target: "serve this document". Carries **no requester identity**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchOrder {
    /// Transaction token.
    pub txn: TxnId,
    /// The document URL to serve from the browser cache.
    pub url: String,
}

/// Target → proxy: the served document. Carries **no target identity**
/// beyond the transport connection the proxy already owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchReply {
    /// Transaction token.
    pub txn: TxnId,
    /// Document body (plaintext in base mode, ciphertext in secure mode).
    pub body: Vec<u8>,
    /// The proxy-issued integrity watermark stored with the document.
    pub watermark: Watermark,
}

/// Proxy → requester: the delivered document. Carries **no target identity**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Transaction token.
    pub txn: TxnId,
    /// Document body.
    pub body: Vec<u8>,
    /// Integrity watermark for client-side verification.
    pub watermark: Watermark,
}

/// The base anonymizing proxy: plaintext relay with identity indirection.
#[derive(Debug, Default)]
pub struct AnonymizingProxy {
    next_txn: u64,
    pending: HashMap<TxnId, PeerId>,
}

impl AnonymizingProxy {
    /// Creates an empty relay.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of in-flight transactions.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Starts a transaction on behalf of `requester`; returns the order to
    /// forward to the chosen target. The requester's identity is recorded
    /// only in the proxy's private table.
    pub fn begin(&mut self, requester: PeerId, url: &str) -> FetchOrder {
        self.next_txn += 1;
        let txn = TxnId(self.next_txn);
        self.pending.insert(txn, requester);
        FetchOrder {
            txn,
            url: url.to_owned(),
        }
    }

    /// Completes a transaction with the target's reply; returns who to
    /// deliver to (known only to the proxy) and the identity-free delivery.
    pub fn complete(&mut self, reply: FetchReply) -> Result<(PeerId, Delivery), CryptoError> {
        let requester = self
            .pending
            .remove(&reply.txn)
            .ok_or(CryptoError::UnknownTransaction)?;
        Ok((
            requester,
            Delivery {
                txn: reply.txn,
                body: reply.body,
                watermark: reply.watermark,
            },
        ))
    }

    /// Drops a transaction (e.g. target no longer holds the document).
    pub fn abort(&mut self, txn: TxnId) -> Result<PeerId, CryptoError> {
        self.pending
            .remove(&txn)
            .ok_or(CryptoError::UnknownTransaction)
    }
}

/// A fetch order whose session key is sealed for the target's public key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedOrder {
    /// The identity-free order.
    pub order: FetchOrder,
    /// One-time XTEA session key, RSA-encrypted for the target.
    pub sealed_key: Vec<u64>,
}

/// A delivery whose session key is sealed for the requester's public key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedDelivery {
    /// The identity-free delivery (body is ciphertext).
    pub delivery: Delivery,
    /// One-time XTEA session key, RSA-encrypted for the requester.
    pub sealed_key: Vec<u64>,
}

/// The content-blind relay: mutual anonymity plus content privacy.
#[derive(Debug, Default)]
pub struct SecureRelay {
    next_txn: u64,
    pending: HashMap<TxnId, (PeerId, XteaKey)>,
}

impl SecureRelay {
    /// Creates an empty relay.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a secure transaction: mints a one-time session key, seals it
    /// for the target, and remembers (requester, key) privately.
    pub fn begin<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        requester: PeerId,
        target_key: &PublicKey,
        url: &str,
    ) -> Result<SealedOrder, CryptoError> {
        self.next_txn += 1;
        let txn = TxnId(self.next_txn);
        let session = XteaKey::generate(rng);
        let mut key_bytes = [0u8; 16];
        for (i, w) in session.0.iter().enumerate() {
            key_bytes[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        let sealed_key = encrypt_message(target_key, &key_bytes)?;
        self.pending.insert(txn, (requester, session));
        Ok(SealedOrder {
            order: FetchOrder {
                txn,
                url: url.to_owned(),
            },
            sealed_key,
        })
    }

    /// Relays the (encrypted) reply to the requester, re-sealing the session
    /// key for the requester's public key. The body is **not** decrypted.
    pub fn complete(
        &mut self,
        reply: FetchReply,
        requester_key: &PublicKey,
    ) -> Result<(PeerId, SealedDelivery), CryptoError> {
        let (requester, session) = self
            .pending
            .remove(&reply.txn)
            .ok_or(CryptoError::UnknownTransaction)?;
        let mut key_bytes = [0u8; 16];
        for (i, w) in session.0.iter().enumerate() {
            key_bytes[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        let sealed_key = encrypt_message(requester_key, &key_bytes)?;
        Ok((
            requester,
            SealedDelivery {
                delivery: Delivery {
                    txn: reply.txn,
                    body: reply.body,
                    watermark: reply.watermark,
                },
                sealed_key,
            },
        ))
    }
}

/// Target-side helper: unseal the session key and encrypt the document body.
pub fn target_serve<R: Rng + ?Sized>(
    rng: &mut R,
    target_keys: &KeyPair,
    order: &SealedOrder,
    document: &[u8],
    watermark: Watermark,
) -> Result<FetchReply, CryptoError> {
    let key_bytes = decrypt_message(&target_keys.private, &order.sealed_key)?;
    let key_arr: [u8; 16] = key_bytes
        .try_into()
        .map_err(|_| CryptoError::MalformedCiphertext)?;
    let session = XteaKey::from_bytes(&key_arr);
    Ok(FetchReply {
        txn: order.order.txn,
        body: session.encrypt_cbc(rng, document),
        watermark,
    })
}

/// Requester-side helper: unseal the session key and decrypt the body.
pub fn requester_open(
    requester_keys: &KeyPair,
    delivery: &SealedDelivery,
) -> Result<Vec<u8>, CryptoError> {
    let key_bytes = decrypt_message(&requester_keys.private, &delivery.sealed_key)?;
    let key_arr: [u8; 16] = key_bytes
        .try_into()
        .map_err(|_| CryptoError::MalformedCiphertext)?;
    let session = XteaKey::from_bytes(&key_arr);
    session.decrypt_cbc(&delivery.delivery.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watermark::{verify_document, ProxySigner};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn base_relay_roundtrip_hides_identities() {
        let mut proxy = AnonymizingProxy::new();
        let signer = ProxySigner::generate(&mut StdRng::seed_from_u64(1));
        let doc = b"shared page".to_vec();
        let wm = signer.watermark(&doc);

        let order = proxy.begin(PeerId(7), "http://x/page");
        // The order the target sees has no requester identity: only txn+url.
        assert_eq!(order.url, "http://x/page");

        let reply = FetchReply {
            txn: order.txn,
            body: doc.clone(),
            watermark: wm,
        };
        let (deliver_to, delivery) = proxy.complete(reply).unwrap();
        assert_eq!(deliver_to, PeerId(7));
        assert_eq!(delivery.body, doc);
        assert!(verify_document(&signer.public_key(), &delivery.body, &delivery.watermark).is_ok());
        assert_eq!(proxy.pending(), 0);
    }

    #[test]
    fn unknown_txn_rejected() {
        let mut proxy = AnonymizingProxy::new();
        let signer = ProxySigner::generate(&mut StdRng::seed_from_u64(2));
        let reply = FetchReply {
            txn: TxnId(999),
            body: vec![],
            watermark: signer.watermark(b""),
        };
        assert_eq!(
            proxy.complete(reply).unwrap_err(),
            CryptoError::UnknownTransaction
        );
    }

    #[test]
    fn txn_single_use() {
        let mut proxy = AnonymizingProxy::new();
        let signer = ProxySigner::generate(&mut StdRng::seed_from_u64(3));
        let order = proxy.begin(PeerId(1), "u");
        let mk_reply = || FetchReply {
            txn: order.txn,
            body: b"d".to_vec(),
            watermark: signer.watermark(b"d"),
        };
        proxy.complete(mk_reply()).unwrap();
        // Replays are rejected.
        assert!(proxy.complete(mk_reply()).is_err());
    }

    #[test]
    fn abort_releases_txn() {
        let mut proxy = AnonymizingProxy::new();
        let order = proxy.begin(PeerId(4), "u");
        assert_eq!(proxy.abort(order.txn).unwrap(), PeerId(4));
        assert!(proxy.abort(order.txn).is_err());
        assert_eq!(proxy.pending(), 0);
    }

    #[test]
    fn txn_ids_are_unique() {
        let mut proxy = AnonymizingProxy::new();
        let a = proxy.begin(PeerId(1), "u1");
        let b = proxy.begin(PeerId(2), "u2");
        assert_ne!(a.txn, b.txn);
        assert_eq!(proxy.pending(), 2);
    }

    #[test]
    fn secure_relay_end_to_end() {
        let mut rng = StdRng::seed_from_u64(10);
        let requester_keys = KeyPair::generate(&mut rng);
        let target_keys = KeyPair::generate(&mut rng);
        let signer = ProxySigner::generate(&mut rng);
        let doc = b"<html>private document body</html>".to_vec();
        let wm = signer.watermark(&doc);

        let mut relay = SecureRelay::new();
        let sealed = relay
            .begin(&mut rng, PeerId(3), &target_keys.public, "http://x/doc")
            .unwrap();

        // Target serves: the body leaving the target is ciphertext.
        let reply = target_serve(&mut rng, &target_keys, &sealed, &doc, wm).unwrap();
        assert_ne!(reply.body, doc, "body must not transit in plaintext");

        // Proxy relays without decrypting.
        let (deliver_to, delivery) = relay.complete(reply, &requester_keys.public).unwrap();
        assert_eq!(deliver_to, PeerId(3));
        assert_ne!(delivery.delivery.body, doc);

        // Requester opens and verifies integrity of the plaintext.
        let plain = requester_open(&requester_keys, &delivery).unwrap();
        assert_eq!(plain, doc);
        assert!(
            verify_document(&signer.public_key(), &plain, &delivery.delivery.watermark).is_ok()
        );
    }

    #[test]
    fn secure_relay_wrong_requester_key_cannot_open() {
        let mut rng = StdRng::seed_from_u64(11);
        let requester_keys = KeyPair::generate(&mut rng);
        let eavesdropper_keys = KeyPair::generate(&mut rng);
        let target_keys = KeyPair::generate(&mut rng);
        let signer = ProxySigner::generate(&mut rng);
        let doc = b"secret".to_vec();
        let wm = signer.watermark(&doc);

        let mut relay = SecureRelay::new();
        let sealed = relay
            .begin(&mut rng, PeerId(3), &target_keys.public, "u")
            .unwrap();
        let reply = target_serve(&mut rng, &target_keys, &sealed, &doc, wm).unwrap();
        let (_, delivery) = relay.complete(reply, &requester_keys.public).unwrap();

        match requester_open(&eavesdropper_keys, &delivery) {
            Err(_) => {}
            Ok(plain) => assert_ne!(plain, doc),
        }
    }

    #[test]
    fn secure_relay_unknown_txn() {
        let mut rng = StdRng::seed_from_u64(12);
        let keys = KeyPair::generate(&mut rng);
        let signer = ProxySigner::generate(&mut rng);
        let mut relay = SecureRelay::new();
        let reply = FetchReply {
            txn: TxnId(42),
            body: vec![],
            watermark: signer.watermark(b""),
        };
        assert_eq!(
            relay.complete(reply, &keys.public).unwrap_err(),
            CryptoError::UnknownTransaction
        );
    }
}
