//! MD5 message digest (RFC 1321), implemented from scratch.
//!
//! The paper represents every URL by a 16-byte MD5 signature in the browser
//! index (§5) and builds its digital-watermark integrity protocol on MD5
//! digests (§6.1). MD5 is cryptographically broken by modern standards; it
//! is implemented here because it is what the paper specifies, and because
//! the reproduction must not depend on crates outside the approved offline
//! set. Do not use this for new security designs.

use std::fmt;

/// A 16-byte MD5 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 16]);

impl Digest {
    /// Renders the digest as 32 lowercase hex characters.
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }

    /// Parses 32 hex characters into a digest.
    pub fn from_hex(s: &str) -> Option<Digest> {
        let s = s.trim();
        if s.len() != 32 {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Per-round shift amounts (RFC 1321).
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived constants `K[i] = floor(2^32 * abs(sin(i + 1)))` (RFC 1321).
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Incremental MD5 context.
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes.
    length: u64,
    buffer: [u8; 64],
    buffered: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Creates a fresh context.
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            length: 0,
            buffer: [0u8; 64],
            buffered: 0,
        }
    }

    /// Feeds `data` into the digest.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffered > 0 {
            let need = 64 - self.buffered;
            let take = need.min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            input = rest;
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Finishes the digest, consuming the context.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.length.wrapping_mul(8);
        // Padding: 0x80 then zeros until length ≡ 56 (mod 64).
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Undo the length increments caused by the padding updates, then
        // append the original length in bits, little-endian.
        let mut tail = [0u8; 8];
        tail.copy_from_slice(&bit_len.to_le_bytes());
        self.update(&tail);
        debug_assert_eq!(self.buffered, 0);

        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// One-shot MD5 of `data`.
pub fn md5(data: &[u8]) -> Digest {
    let mut ctx = Md5::new();
    ctx.update(data);
    ctx.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: [(&str, &str); 7] = [
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(md5(input.as_bytes()).to_hex(), expect, "input {input:?}");
        }
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = md5(&data);
        // Feed in awkward chunk sizes crossing block boundaries.
        let mut ctx = Md5::new();
        let mut off = 0;
        for chunk in [1usize, 7, 63, 64, 65, 128, 200, 472] {
            let end = (off + chunk).min(data.len());
            ctx.update(&data[off..end]);
            off = end;
        }
        assert_eq!(off, data.len());
        assert_eq!(ctx.finalize(), oneshot);
    }

    #[test]
    fn exact_block_boundaries() {
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xabu8; len];
            let d1 = md5(&data);
            let mut ctx = Md5::new();
            for b in &data {
                ctx.update(std::slice::from_ref(b));
            }
            assert_eq!(ctx.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn hex_roundtrip() {
        let d = md5(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("short"), None);
        assert_eq!(Digest::from_hex(&"zz".repeat(16)), None);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(md5(b"alpha"), md5(b"beta"));
        assert_ne!(md5(b""), md5(b"\0"));
    }

    #[test]
    fn display_matches_hex() {
        let d = md5(b"abc");
        assert_eq!(format!("{d}"), d.to_hex());
    }
}
