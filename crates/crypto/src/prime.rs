//! Primality testing and prime generation over `u64`.
//!
//! Supports the textbook-RSA key generation in [`crate::rsa`]. The
//! Miller–Rabin test below is *deterministic* for all 64-bit integers
//! thanks to the known minimal witness set.

use rand::Rng;

/// Modular multiplication without overflow (via `u128`).
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation `base^exp mod m` (square-and-multiply).
pub fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller–Rabin for `u64` using the minimal witness set
/// {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Write n - 1 = d * 2^r with d odd.
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Greatest common divisor (binary-free Euclid).
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Modular inverse of `a` modulo `m` via extended Euclid, if it exists.
pub fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        let tr = old_r - q * r;
        old_r = r;
        r = tr;
        let ts = old_s - q * s;
        old_s = s;
        s = ts;
    }
    if old_r != 1 {
        return None;
    }
    let mut inv = old_s % m as i128;
    if inv < 0 {
        inv += m as i128;
    }
    Some(inv as u64)
}

/// Samples a random prime uniformly from `[lo, hi)` by rejection.
///
/// # Panics
/// Panics if the range is empty or contains no prime (after a generous
/// number of attempts, which cannot happen for ranges of width ≥ 2·ln(hi)).
pub fn random_prime<R: Rng + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    assert!(lo < hi, "empty range");
    for _ in 0..1_000_000 {
        let mut candidate = rng.gen_range(lo..hi);
        candidate |= 1; // odd candidates only (2 handled by is_prime anyway)
        if candidate >= hi {
            continue;
        }
        if is_prime(candidate) {
            return candidate;
        }
    }
    panic!("no prime found in [{lo}, {hi}) after many attempts");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_primes_classified() {
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 97, 101, 65537];
        let composites = [0u64, 1, 4, 6, 9, 15, 21, 25, 91, 561, 1105, 6601];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Classic Fermat pseudoprimes that fool weak tests.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 75361] {
            assert!(!is_prime(c), "carmichael {c}");
        }
    }

    #[test]
    fn large_known_primes() {
        assert!(is_prime(2_147_483_647)); // 2^31 - 1 (Mersenne)
        assert!(is_prime(4_294_967_291)); // largest prime < 2^32
        assert!(!is_prime(4_294_967_295)); // 2^32 - 1 = 3·5·17·257·65537
        assert!(is_prime(18_446_744_073_709_551_557)); // largest u64 prime
    }

    #[test]
    fn pow_mod_matches_naive() {
        for (b, e, m) in [(3u64, 4u64, 5u64), (10, 0, 7), (2, 10, 1024), (7, 3, 1)] {
            let naive = if m == 1 {
                0
            } else {
                (0..e).fold(1u64, |acc, _| acc * b % m)
            };
            assert_eq!(pow_mod(b, e, m), naive);
        }
    }

    #[test]
    fn pow_mod_fermat() {
        // Fermat's little theorem: a^(p-1) ≡ 1 (mod p).
        let p = 4_294_967_291u64;
        for a in [2u64, 3, 12345, 987654321] {
            assert_eq!(pow_mod(a, p - 1, p), 1);
        }
    }

    #[test]
    fn gcd_and_inverse() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd(0, 5), 5);
        let inv = mod_inverse(3, 11).unwrap();
        assert_eq!(3 * inv % 11, 1);
        assert_eq!(mod_inverse(4, 8), None); // not coprime
        let inv2 = mod_inverse(65537, 4_294_967_291).unwrap();
        assert_eq!(mul_mod(65537, inv2, 4_294_967_291), 1);
    }

    #[test]
    fn random_prime_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let p = random_prime(&mut rng, 1 << 31, 1 << 32);
            assert!((1 << 31..1 << 32).contains(&p));
            assert!(is_prime(p));
        }
    }

    #[test]
    fn mul_mod_no_overflow() {
        let big = u64::MAX - 58; // the largest u64 prime
        assert_eq!(mul_mod(big - 1, big - 1, big), 1); // (-1)^2 = 1 mod p
    }
}
