//! XTEA block cipher with CBC mode and PKCS#7-style padding.
//!
//! The paper's anonymity protocols assume a symmetric cipher (it names DES).
//! DES is obsolete and export-grade; XTEA (Wheeler & Needham, 1997) is a
//! contemporaneous 64-bit block cipher that is far simpler to implement
//! correctly, so it stands in for DES here. The substitution is documented
//! in DESIGN.md: the protocols only require *some* shared-key cipher with a
//! 64-bit block, and overhead comparisons are unaffected.

use crate::error::CryptoError;
use rand::Rng;

const ROUNDS: u32 = 32;
const DELTA: u32 = 0x9e37_79b9;

/// A 128-bit XTEA key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XteaKey(pub [u32; 4]);

impl XteaKey {
    /// Generates a random key.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> XteaKey {
        XteaKey([rng.gen(), rng.gen(), rng.gen(), rng.gen()])
    }

    /// Builds a key from 16 bytes (little-endian words).
    pub fn from_bytes(bytes: &[u8; 16]) -> XteaKey {
        let mut words = [0u32; 4];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        XteaKey(words)
    }

    /// Encrypts one 64-bit block.
    pub fn encrypt_block(&self, block: u64) -> u64 {
        let mut v0 = (block >> 32) as u32;
        let mut v1 = block as u32;
        let mut sum = 0u32;
        for _ in 0..ROUNDS {
            v0 = v0.wrapping_add(
                (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                    ^ (sum.wrapping_add(self.0[(sum & 3) as usize])),
            );
            sum = sum.wrapping_add(DELTA);
            v1 = v1.wrapping_add(
                (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                    ^ (sum.wrapping_add(self.0[((sum >> 11) & 3) as usize])),
            );
        }
        ((v0 as u64) << 32) | v1 as u64
    }

    /// Decrypts one 64-bit block.
    pub fn decrypt_block(&self, block: u64) -> u64 {
        let mut v0 = (block >> 32) as u32;
        let mut v1 = block as u32;
        let mut sum = DELTA.wrapping_mul(ROUNDS);
        for _ in 0..ROUNDS {
            v1 = v1.wrapping_sub(
                (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                    ^ (sum.wrapping_add(self.0[((sum >> 11) & 3) as usize])),
            );
            sum = sum.wrapping_sub(DELTA);
            v0 = v0.wrapping_sub(
                (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                    ^ (sum.wrapping_add(self.0[(sum & 3) as usize])),
            );
        }
        ((v0 as u64) << 32) | v1 as u64
    }

    /// CBC-encrypts `plaintext` with a random IV (prepended to the output).
    /// Padding is PKCS#7 over 8-byte blocks.
    pub fn encrypt_cbc<R: Rng + ?Sized>(&self, rng: &mut R, plaintext: &[u8]) -> Vec<u8> {
        let pad = 8 - (plaintext.len() % 8);
        let mut padded = Vec::with_capacity(plaintext.len() + pad);
        padded.extend_from_slice(plaintext);
        padded.extend(std::iter::repeat_n(pad as u8, pad));

        let iv: u64 = rng.gen();
        let mut out = Vec::with_capacity(8 + padded.len());
        out.extend_from_slice(&iv.to_le_bytes());
        let mut prev = iv;
        for chunk in padded.chunks_exact(8) {
            let block = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            let ct = self.encrypt_block(block ^ prev);
            out.extend_from_slice(&ct.to_le_bytes());
            prev = ct;
        }
        out
    }

    /// Decrypts a CBC ciphertext produced by [`XteaKey::encrypt_cbc`].
    pub fn decrypt_cbc(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if ciphertext.len() < 16 || !ciphertext.len().is_multiple_of(8) {
            return Err(CryptoError::MalformedCiphertext);
        }
        let mut prev = u64::from_le_bytes(ciphertext[..8].try_into().expect("8 bytes"));
        let mut out = Vec::with_capacity(ciphertext.len() - 8);
        for chunk in ciphertext[8..].chunks_exact(8) {
            let ct = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            let pt = self.decrypt_block(ct) ^ prev;
            out.extend_from_slice(&pt.to_le_bytes());
            prev = ct;
        }
        let pad = *out.last().expect("at least one block") as usize;
        if pad == 0 || pad > 8 || pad > out.len() {
            return Err(CryptoError::BadPadding);
        }
        if out[out.len() - pad..].iter().any(|&b| b as usize != pad) {
            return Err(CryptoError::BadPadding);
        }
        out.truncate(out.len() - pad);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn block_roundtrip() {
        let key = XteaKey([1, 2, 3, 4]);
        for block in [0u64, 1, 0xdead_beef_cafe_f00d, u64::MAX] {
            assert_eq!(key.decrypt_block(key.encrypt_block(block)), block);
        }
    }

    #[test]
    fn known_vector() {
        // Widely cited XTEA vector: all-zero key, all-zero plaintext
        // encrypts to dee9d4d8 f7131ed9 with 32 cycles.
        let key = XteaKey([0, 0, 0, 0]);
        assert_eq!(key.encrypt_block(0), 0xdee9d4d8f7131ed9);
    }

    #[test]
    fn different_keys_differ() {
        let a = XteaKey([1, 2, 3, 4]);
        let b = XteaKey([1, 2, 3, 5]);
        assert_ne!(a.encrypt_block(42), b.encrypt_block(42));
    }

    #[test]
    fn cbc_roundtrip_various_lengths() {
        let key = XteaKey::generate(&mut rng());
        let mut r = rng();
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let msg: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let ct = key.encrypt_cbc(&mut r, &msg);
            assert_eq!(key.decrypt_cbc(&ct).unwrap(), msg, "len {len}");
        }
    }

    #[test]
    fn cbc_same_plaintext_distinct_ciphertexts() {
        let key = XteaKey::generate(&mut rng());
        let mut r = rng();
        let a = key.encrypt_cbc(&mut r, b"hello world");
        let b = key.encrypt_cbc(&mut r, b"hello world");
        assert_ne!(a, b); // random IVs
        assert_eq!(key.decrypt_cbc(&a).unwrap(), key.decrypt_cbc(&b).unwrap());
    }

    #[test]
    fn cbc_tamper_detected_by_padding_or_garbage() {
        let key = XteaKey::generate(&mut rng());
        let mut r = rng();
        let mut ct = key.encrypt_cbc(&mut r, b"sensitive document body");
        let last = ct.len() - 1;
        ct[last] ^= 0xff;
        match key.decrypt_cbc(&ct) {
            Err(_) => {}
            Ok(pt) => assert_ne!(pt, b"sensitive document body"),
        }
    }

    #[test]
    fn cbc_wrong_key_fails_or_garbles() {
        let key = XteaKey::generate(&mut rng());
        let other = XteaKey([9, 9, 9, 9]);
        let ct = key.encrypt_cbc(&mut rng(), b"payload");
        match other.decrypt_cbc(&ct) {
            Err(_) => {}
            Ok(pt) => assert_ne!(pt, b"payload"),
        }
    }

    #[test]
    fn cbc_truncated_rejected() {
        let key = XteaKey::generate(&mut rng());
        let ct = key.encrypt_cbc(&mut rng(), b"abc");
        assert!(key.decrypt_cbc(&ct[..ct.len() - 3]).is_err());
        assert!(key.decrypt_cbc(&ct[..8]).is_err());
    }

    #[test]
    fn key_from_bytes() {
        let bytes: [u8; 16] = [
            0x03, 0x02, 0x01, 0x00, 0x07, 0x06, 0x05, 0x04, 0x0b, 0x0a, 0x09, 0x08, 0x0f, 0x0e,
            0x0d, 0x0c,
        ];
        assert_eq!(
            XteaKey::from_bytes(&bytes),
            XteaKey([0x00010203, 0x04050607, 0x08090a0b, 0x0c0d0e0f])
        );
    }
}
