//! Textbook RSA over 64-bit moduli.
//!
//! The paper's reliability protocols (§6) assume the proxy owns a
//! public/private key pair and that clients know every peer's public key.
//! This module provides the *shape* of RSA — key generation, raw
//! encrypt/decrypt, digest signing — over `n = p·q` with 32-bit primes.
//!
//! **This is a demonstration-grade substitute, not secure cryptography**: a
//! 64-bit modulus is factorable instantly and textbook RSA lacks padding.
//! Real deployments would use a vetted library; the reproduction is
//! restricted to the approved offline crate set, and protocol behaviour
//! (message flow, overhead ordering) is unaffected by key size.

use crate::error::CryptoError;
use crate::md5::Digest;
use crate::prime::{gcd, mod_inverse, pow_mod, random_prime};
use rand::Rng;

/// RSA public key `(n, e)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey {
    /// Modulus.
    pub n: u64,
    /// Public exponent.
    pub e: u64,
}

/// RSA private key `(n, d)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrivateKey {
    /// Modulus.
    pub n: u64,
    /// Private exponent.
    pub d: u64,
}

/// A full key pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyPair {
    /// The shareable half.
    pub public: PublicKey,
    /// The secret half.
    pub private: PrivateKey,
}

impl KeyPair {
    /// Generates a key pair with 32-bit primes (so every 4-byte block is
    /// strictly smaller than the modulus).
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> KeyPair {
        loop {
            let p = random_prime(rng, 1 << 31, 1 << 32);
            let q = random_prime(rng, 1 << 31, 1 << 32);
            if p == q {
                continue;
            }
            let n = p.checked_mul(q).expect("32-bit primes fit in u64");
            let phi = (p - 1) * (q - 1);
            let e = 65537u64;
            if gcd(e, phi) != 1 {
                continue;
            }
            let d = mod_inverse(e, phi).expect("e coprime to phi");
            return KeyPair {
                public: PublicKey { n, e },
                private: PrivateKey { n, d },
            };
        }
    }
}

impl PublicKey {
    /// Raw RSA on one block: `m^e mod n`. `m` must be `< n`.
    pub fn encrypt_block(&self, m: u64) -> Result<u64, CryptoError> {
        if m >= self.n {
            return Err(CryptoError::BlockTooLarge);
        }
        Ok(pow_mod(m, self.e, self.n))
    }
}

impl PrivateKey {
    /// Raw RSA on one block: `c^d mod n`.
    pub fn decrypt_block(&self, c: u64) -> Result<u64, CryptoError> {
        if c >= self.n {
            return Err(CryptoError::BlockTooLarge);
        }
        Ok(pow_mod(c, self.d, self.n))
    }
}

/// A signature over an MD5 digest: the four 4-byte words of the digest,
/// each raised to the private exponent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature(pub [u64; 4]);

impl Signature {
    /// Serialises to 32 bytes (little-endian words).
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, w) in self.0.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Parses 32 bytes produced by [`Signature::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Signature, CryptoError> {
        if bytes.len() != 32 {
            return Err(CryptoError::MalformedSignature);
        }
        let mut words = [0u64; 4];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        Ok(Signature(words))
    }
}

/// Signs an MD5 digest with `key`: each 4-byte word of the digest (always
/// `< 2^32 ≤ n`) is RSA-decrypted (i.e. raised to `d`).
pub fn sign_digest(key: &PrivateKey, digest: &Digest) -> Signature {
    let mut words = [0u64; 4];
    for (i, chunk) in digest.0.chunks_exact(4).enumerate() {
        let m = u32::from_le_bytes(chunk.try_into().expect("4 bytes")) as u64;
        words[i] = pow_mod(m, key.d, key.n);
    }
    Signature(words)
}

/// Verifies a digest signature with the matching public key.
pub fn verify_digest(key: &PublicKey, digest: &Digest, sig: &Signature) -> bool {
    for (i, chunk) in digest.0.chunks_exact(4).enumerate() {
        let expect = u32::from_le_bytes(chunk.try_into().expect("4 bytes")) as u64;
        if sig.0[i] >= key.n {
            return false;
        }
        if pow_mod(sig.0[i], key.e, key.n) != expect {
            return false;
        }
    }
    true
}

/// Encrypts an arbitrary byte message for `key` by chunking into 4-byte
/// blocks (length-prefixed, zero-padded). Output is one `u64` per block.
pub fn encrypt_message(key: &PublicKey, msg: &[u8]) -> Result<Vec<u64>, CryptoError> {
    let mut framed = Vec::with_capacity(4 + msg.len());
    framed.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    framed.extend_from_slice(msg);
    while framed.len() % 4 != 0 {
        framed.push(0);
    }
    framed
        .chunks_exact(4)
        .map(|c| {
            let m = u32::from_le_bytes(c.try_into().expect("4 bytes")) as u64;
            key.encrypt_block(m)
        })
        .collect()
}

/// Decrypts a message produced by [`encrypt_message`].
pub fn decrypt_message(key: &PrivateKey, blocks: &[u64]) -> Result<Vec<u8>, CryptoError> {
    let mut bytes = Vec::with_capacity(blocks.len() * 4);
    for &c in blocks {
        let m = key.decrypt_block(c)?;
        if m > u32::MAX as u64 {
            return Err(CryptoError::MalformedCiphertext);
        }
        bytes.extend_from_slice(&(m as u32).to_le_bytes());
    }
    if bytes.len() < 4 {
        return Err(CryptoError::MalformedCiphertext);
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    if len > bytes.len() - 4 {
        return Err(CryptoError::MalformedCiphertext);
    }
    Ok(bytes[4..4 + len].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md5::md5;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(seed: u64) -> KeyPair {
        KeyPair::generate(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn block_roundtrip() {
        let kp = keypair(1);
        for m in [0u64, 1, 42, u32::MAX as u64, (1u64 << 40) + 12345] {
            let c = kp.public.encrypt_block(m).unwrap();
            assert_eq!(kp.private.decrypt_block(c).unwrap(), m);
        }
    }

    #[test]
    fn block_too_large_rejected() {
        let kp = keypair(2);
        assert!(matches!(
            kp.public.encrypt_block(kp.public.n),
            Err(CryptoError::BlockTooLarge)
        ));
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair(3);
        let d = md5(b"the quick brown fox");
        let sig = sign_digest(&kp.private, &d);
        assert!(verify_digest(&kp.public, &d, &sig));
    }

    #[test]
    fn tampered_digest_fails_verification() {
        let kp = keypair(4);
        let d = md5(b"original");
        let sig = sign_digest(&kp.private, &d);
        let tampered = md5(b"tampered");
        assert!(!verify_digest(&kp.public, &tampered, &sig));
    }

    #[test]
    fn wrong_key_fails_verification() {
        let kp1 = keypair(5);
        let kp2 = keypair(6);
        let d = md5(b"doc");
        let sig = sign_digest(&kp1.private, &d);
        assert!(!verify_digest(&kp2.public, &d, &sig));
    }

    #[test]
    fn forged_signature_fails() {
        let kp = keypair(7);
        let d = md5(b"doc");
        let mut sig = sign_digest(&kp.private, &d);
        sig.0[2] ^= 1;
        assert!(!verify_digest(&kp.public, &d, &sig));
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let kp = keypair(8);
        let sig = sign_digest(&kp.private, &md5(b"x"));
        let back = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(back, sig);
        assert!(Signature::from_bytes(&[0u8; 31]).is_err());
    }

    #[test]
    fn message_roundtrip_various_lengths() {
        let kp = keypair(9);
        for len in [0usize, 1, 3, 4, 5, 16, 255] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
            let ct = encrypt_message(&kp.public, &msg).unwrap();
            let pt = decrypt_message(&kp.private, &ct).unwrap();
            assert_eq!(pt, msg, "len {len}");
        }
    }

    #[test]
    fn decrypt_garbage_fails_gracefully() {
        let kp = keypair(10);
        assert!(decrypt_message(&kp.private, &[]).is_err());
    }

    #[test]
    fn distinct_keypairs() {
        assert_ne!(keypair(11).public, keypair(12).public);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(keypair(13), keypair(13));
    }
}
