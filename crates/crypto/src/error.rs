//! Error type shared by the crypto primitives and protocols.

use std::fmt;

/// Failures raised by the crypto layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// A raw RSA block was not smaller than the modulus.
    BlockTooLarge,
    /// A ciphertext could not be parsed (wrong length, framing, or range).
    MalformedCiphertext,
    /// A signature blob had the wrong length.
    MalformedSignature,
    /// CBC padding was invalid after decryption (tampering or wrong key).
    BadPadding,
    /// A digital watermark failed verification: the document was modified
    /// or the watermark was not produced by the expected proxy.
    WatermarkMismatch,
    /// An anonymity-protocol message referenced an unknown transaction.
    UnknownTransaction,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            CryptoError::BlockTooLarge => "RSA block not smaller than modulus",
            CryptoError::MalformedCiphertext => "malformed ciphertext",
            CryptoError::MalformedSignature => "malformed signature",
            CryptoError::BadPadding => "bad CBC padding (tampering or wrong key)",
            CryptoError::WatermarkMismatch => "digital watermark verification failed",
            CryptoError::UnknownTransaction => "unknown anonymity transaction",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CryptoError::WatermarkMismatch
            .to_string()
            .contains("watermark"));
        assert!(CryptoError::BadPadding.to_string().contains("padding"));
    }
}
