//! An intrusive doubly-linked list backed by a slab of nodes.
//!
//! Cache replacement needs O(1) "move this entry to the front" and "pop the
//! back"; a pointer-based list would need `unsafe`, so nodes live in a `Vec`
//! and links are indices. Freed slots are recycled through a free list, so a
//! long-running cache performs no per-operation allocation once warm.

/// Sentinel index meaning "no node".
const NIL: u32 = u32::MAX;

/// A stable handle to a list node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle(u32);

#[derive(Debug, Clone)]
struct Node<T> {
    prev: u32,
    next: u32,
    value: Option<T>,
}

/// Doubly-linked list over a slab; front = most recent.
#[derive(Debug, Clone)]
pub struct SlabList<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
}

impl<T> Default for SlabList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SlabList<T> {
    /// Creates an empty list.
    pub fn new() -> Self {
        SlabList {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, value: T) -> u32 {
        if let Some(idx) = self.free.pop() {
            let node = &mut self.nodes[idx as usize];
            node.value = Some(value);
            node.prev = NIL;
            node.next = NIL;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx != NIL, "slab list full");
            self.nodes.push(Node {
                prev: NIL,
                next: NIL,
                value: Some(value),
            });
            idx
        }
    }

    /// Pushes a value at the front (most-recent end); returns its handle.
    pub fn push_front(&mut self, value: T) -> Handle {
        let idx = self.alloc(value);
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
        self.len += 1;
        Handle(idx)
    }

    /// Detaches `h` from the list and returns its value.
    ///
    /// # Panics
    /// Panics if the handle is stale (already removed).
    pub fn remove(&mut self, h: Handle) -> T {
        let idx = h.0;
        let (prev, next) = {
            let node = &self.nodes[idx as usize];
            assert!(node.value.is_some(), "stale list handle");
            (node.prev, node.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.len -= 1;
        self.free.push(idx);
        let node = &mut self.nodes[idx as usize];
        node.prev = NIL;
        node.next = NIL;
        node.value.take().expect("checked above")
    }

    /// Moves `h` to the front (most-recent end).
    pub fn move_to_front(&mut self, h: Handle) {
        if self.head == h.0 {
            return;
        }
        let value = self.remove(h);
        let new = self.push_front(value);
        // Re-use of the freed slot keeps the handle stable.
        debug_assert_eq!(new.0, h.0, "slot should be recycled immediately");
    }

    /// Returns a reference to the value at `h`.
    pub fn get(&self, h: Handle) -> Option<&T> {
        self.nodes.get(h.0 as usize).and_then(|n| n.value.as_ref())
    }

    /// Returns the handle of the back (least-recent) element.
    pub fn back(&self) -> Option<Handle> {
        if self.tail == NIL {
            None
        } else {
            Some(Handle(self.tail))
        }
    }

    /// Returns the handle of the front (most-recent) element.
    pub fn front(&self) -> Option<Handle> {
        if self.head == NIL {
            None
        } else {
            Some(Handle(self.head))
        }
    }

    /// Removes and returns the back (least-recent) element.
    pub fn pop_back(&mut self) -> Option<T> {
        self.back().map(|h| self.remove(h))
    }

    /// Iterates front (most recent) to back (least recent).
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            list: self,
            cur: self.head,
        }
    }
}

/// Front-to-back iterator over a [`SlabList`].
pub struct Iter<'a, T> {
    list: &'a SlabList<T>,
    cur: u32,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.list.nodes[self.cur as usize];
        self.cur = node.next;
        node.value.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(list: &SlabList<i32>) -> Vec<i32> {
        list.iter().copied().collect()
    }

    #[test]
    fn push_front_orders_mru_first() {
        let mut l = SlabList::new();
        l.push_front(1);
        l.push_front(2);
        l.push_front(3);
        assert_eq!(collect(&l), vec![3, 2, 1]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn pop_back_returns_lru() {
        let mut l = SlabList::new();
        l.push_front(1);
        l.push_front(2);
        assert_eq!(l.pop_back(), Some(1));
        assert_eq!(l.pop_back(), Some(2));
        assert_eq!(l.pop_back(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn move_to_front_promotes() {
        let mut l = SlabList::new();
        let a = l.push_front(1);
        l.push_front(2);
        l.push_front(3);
        l.move_to_front(a);
        assert_eq!(collect(&l), vec![1, 3, 2]);
    }

    #[test]
    fn move_front_of_front_is_noop() {
        let mut l = SlabList::new();
        l.push_front(1);
        let b = l.push_front(2);
        l.move_to_front(b);
        assert_eq!(collect(&l), vec![2, 1]);
    }

    #[test]
    fn remove_middle_relinks() {
        let mut l = SlabList::new();
        l.push_front(1);
        let b = l.push_front(2);
        l.push_front(3);
        assert_eq!(l.remove(b), 2);
        assert_eq!(collect(&l), vec![3, 1]);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn slots_are_recycled() {
        let mut l = SlabList::new();
        let a = l.push_front(1);
        l.remove(a);
        let b = l.push_front(2);
        // The freed slot is reused, so the slab does not grow.
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn handles_survive_promotion() {
        let mut l = SlabList::new();
        let a = l.push_front(10);
        l.push_front(20);
        l.move_to_front(a);
        assert_eq!(l.get(a), Some(&10));
    }

    #[test]
    #[should_panic(expected = "stale list handle")]
    fn stale_handle_panics() {
        let mut l = SlabList::new();
        let a = l.push_front(1);
        l.remove(a);
        l.remove(a);
    }

    #[test]
    fn single_element_front_back_agree() {
        let mut l = SlabList::new();
        let a = l.push_front(7);
        assert_eq!(l.front(), Some(a));
        assert_eq!(l.back(), Some(a));
    }
}
