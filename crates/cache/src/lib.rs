//! # baps-cache — cache substrate for the Browsers-Aware Proxy Server
//!
//! Byte-capacity document caches used by both the trace-driven simulator
//! and the live proxy:
//!
//! * [`ByteLru`] — O(1) LRU over a slab-backed intrusive list (the paper's
//!   replacement policy);
//! * [`RankedCache`] / [`AnyCache`] — LFU, GDSF, SIZE and FIFO policies for
//!   the replacement-policy ablation benches;
//! * [`TieredLru`] — memory + disk two-tier model behind the paper's
//!   *memory byte hit ratio* experiment (§4.2);
//! * [`CacheStats`] — hit/byte/memory accounting.

#![warn(missing_docs)]

pub mod lru;
pub mod policy;
pub mod slablist;
pub mod stats;
pub mod tiered;

pub use lru::{ByteLru, InsertOutcome};
pub use policy::{AnyCache, DocCache, Policy, RankedCache};
pub use slablist::{Handle, SlabList};
pub use stats::CacheStats;
pub use tiered::{Tier, TieredLru};
