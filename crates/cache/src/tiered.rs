//! Two-tier (memory + disk) LRU cache model.
//!
//! The paper's §4.2 compares *memory byte hit ratios*: the fraction of hit
//! bytes served from the RAM-resident part of a cache (set to 1/10 of the
//! cache size, per the Squid measurements it cites). A [`TieredLru`] models
//! this as a memory segment holding the most-recently-used bytes and a disk
//! segment holding the rest:
//!
//! * hits in the memory segment stay in memory;
//! * hits in the disk segment promote the object to the memory front,
//!   demoting memory-LRU objects to the disk front;
//! * inserts go to the memory front; overflow demotes.
//!
//! Eviction is governed by the **global** byte budget (memory + disk), so
//! the concatenation `memory ++ disk` is *exactly* the recency order of a
//! flat LRU of the combined capacity: overall hit ratios are unchanged by
//! tiering — only the memory/disk attribution differs. Objects larger than
//! the memory segment demote the whole memory segment and sit at the disk
//! front (they can never be RAM-resident, but their global recency position
//! still matches flat LRU).

use crate::lru::{ByteLru, InsertOutcome};
use std::hash::Hash;

/// Which tier served a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// RAM-resident segment.
    Memory,
    /// Disk-resident segment.
    Disk,
}

/// A two-segment LRU with a shared global byte budget.
#[derive(Debug, Clone)]
pub struct TieredLru<K: Hash + Eq + Copy> {
    mem: ByteLru<K>,
    /// Unbounded list; overflow is enforced against `total_capacity`.
    disk: ByteLru<K>,
    total_capacity: u64,
}

impl<K: Hash + Eq + Copy> TieredLru<K> {
    /// Creates a tiered cache with `mem_capacity` bytes of memory and
    /// `disk_capacity` bytes of disk.
    pub fn new(mem_capacity: u64, disk_capacity: u64) -> Self {
        TieredLru {
            mem: ByteLru::new(mem_capacity),
            disk: ByteLru::new(u64::MAX),
            total_capacity: mem_capacity + disk_capacity,
        }
    }

    /// Creates a tiered cache of `total` bytes with a memory segment of
    /// `mem_fraction` (e.g. 0.1 for the paper's 1/10 rule).
    pub fn with_mem_fraction(total: u64, mem_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&mem_fraction));
        let mem = (total as f64 * mem_fraction).round() as u64;
        TieredLru::new(mem, total - mem)
    }

    /// Combined byte capacity.
    pub fn capacity(&self) -> u64 {
        self.total_capacity
    }

    /// Memory-segment capacity.
    pub fn mem_capacity(&self) -> u64 {
        self.mem.capacity()
    }

    /// Combined bytes stored.
    pub fn used(&self) -> u64 {
        self.mem.used() + self.disk.used()
    }

    /// Combined entry count.
    pub fn len(&self) -> usize {
        self.mem.len() + self.disk.len()
    }

    /// Whether both tiers are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `key` is present in either tier.
    pub fn contains(&self, key: &K) -> bool {
        self.mem.contains(key) || self.disk.contains(key)
    }

    /// Size of the cached copy in either tier (no promotion).
    pub fn size_of(&self, key: &K) -> Option<u64> {
        self.mem.size_of(key).or_else(|| self.disk.size_of(key))
    }

    /// Which tier currently holds `key`, if cached (no promotion).
    pub fn tier_of(&self, key: &K) -> Option<Tier> {
        if self.mem.contains(key) {
            Some(Tier::Memory)
        } else if self.disk.contains(key) {
            Some(Tier::Disk)
        } else {
            None
        }
    }

    /// Looks up `key`; on a hit returns the size and the tier that held it,
    /// promoting the object to the memory front. Promotion never evicts
    /// (global bytes are unchanged), it only demotes memory-LRU objects to
    /// the disk front.
    pub fn touch(&mut self, key: &K) -> Option<(u64, Tier)> {
        if let Some(size) = self.mem.touch(key) {
            return Some((size, Tier::Memory));
        }
        let size = self.disk.remove(key)?;
        let evicted = self.admit(*key, size);
        debug_assert!(evicted.is_empty(), "promotion must not evict");
        Some((size, Tier::Disk))
    }

    /// Inserts `key`; returns entries evicted from the global LRU end.
    /// Objects larger than the combined capacity are rejected (a stale
    /// smaller copy, if any, is purged).
    pub fn insert(&mut self, key: K, size: u64) -> InsertOutcome<K> {
        if size > self.total_capacity {
            self.remove(key);
            return InsertOutcome {
                admitted: false,
                evicted: Vec::new(),
            };
        }
        // Drop any stale copy so bytes are reclaimed before admission.
        self.remove(key);
        let evicted = self.admit(key, size);
        InsertOutcome {
            admitted: true,
            evicted,
        }
    }

    /// Removes `key` from whichever tier holds it.
    pub fn remove(&mut self, key: K) -> Option<u64> {
        self.mem.remove(&key).or_else(|| self.disk.remove(&key))
    }

    /// Admits an object at the logical MRU position, cascading demotions,
    /// then enforces the global byte budget. Returns evicted entries.
    fn admit(&mut self, key: K, size: u64) -> Vec<(K, u64)> {
        if size > self.mem.capacity() {
            // The object can never be RAM-resident. To keep global recency
            // identical to a flat LRU ([big][old mem][old disk]), demote the
            // entire memory segment (LRU-first, so order is preserved) and
            // place the object at the disk front.
            while let Some((k, s)) = self.mem.pop_lru() {
                self.disk.insert(k, s);
            }
            self.disk.insert(key, size);
        } else {
            let spill = self.mem.insert(key, size).evicted;
            // Demote spilled memory entries to the disk front: spill is
            // LRU-first and each insert lands at the disk front, so the most
            // recent demotee ends up frontmost.
            for (k, s) in spill {
                self.disk.insert(k, s);
            }
        }
        // Enforce the global budget from the global LRU end (disk back,
        // then memory back if the disk tier is empty).
        let mut evicted = Vec::new();
        while self.used() > self.total_capacity {
            let victim = self
                .disk
                .pop_lru()
                .or_else(|| self.mem.pop_lru())
                .expect("used > 0 implies entries");
            evicted.push(victim);
        }
        evicted
    }

    /// Iterates all entries in global recency order (memory first).
    pub fn iter_mru(&self) -> impl Iterator<Item = (K, u64)> + '_ {
        self.mem.iter_mru().chain(self.disk.iter_mru())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_hit_vs_disk_hit() {
        let mut c = TieredLru::new(50, 100);
        c.insert("a", 40);
        c.insert("b", 40); // "a" demoted to disk
        assert_eq!(c.touch(&"b"), Some((40, Tier::Memory)));
        assert_eq!(c.touch(&"a"), Some((40, Tier::Disk)));
        // "a" is now memory-resident.
        assert_eq!(c.touch(&"a"), Some((40, Tier::Memory)));
    }

    #[test]
    fn global_eviction_from_disk_end() {
        let mut c = TieredLru::new(50, 50);
        c.insert("a", 40);
        c.insert("b", 40); // a -> disk
        let out = c.insert("c", 40); // b -> disk, a evicted
        assert_eq!(out.evicted, vec![("a", 40)]);
        assert!(c.contains(&"b"));
        assert!(c.contains(&"c"));
        assert!(c.used() <= c.capacity());
    }

    #[test]
    fn matches_flat_lru_content() {
        // Same operation sequence on a tiered and a flat LRU must keep the
        // same content and recency order when objects fit in memory.
        let mut tiered = TieredLru::new(64, 192);
        let mut flat = ByteLru::new(256);
        let keys = [1u32, 2, 3, 4, 5, 6, 7, 8];
        let ops: Vec<(u32, u64)> = (0..200)
            .map(|i| (keys[(i * 7 + 3) % keys.len()], 20 + (i as u64 * 13) % 40))
            .collect();
        for &(k, s) in &ops {
            if tiered.contains(&k) && tiered.size_of(&k) == Some(s) {
                tiered.touch(&k);
                flat.touch(&k);
            } else {
                tiered.insert(k, s);
                flat.insert(k, s);
            }
        }
        let t: Vec<(u32, u64)> = tiered.iter_mru().collect();
        let f: Vec<(u32, u64)> = flat.iter_mru().collect();
        assert_eq!(t, f);
    }

    #[test]
    fn promotion_never_evicts() {
        let mut c = TieredLru::new(64, 192);
        // Fill to the brim with 32-byte objects.
        for k in 0u32..8 {
            c.insert(k, 32);
        }
        assert_eq!(c.used(), 256);
        let before = c.len();
        // Promote the deepest disk entry; nothing may be evicted.
        assert_eq!(c.touch(&0), Some((32, Tier::Disk)));
        assert_eq!(c.len(), before);
        assert_eq!(c.used(), 256);
    }

    #[test]
    fn object_bigger_than_memory_goes_to_disk() {
        let mut c = TieredLru::new(50, 200);
        let out = c.insert("big", 120);
        assert!(out.admitted);
        assert_eq!(c.touch(&"big"), Some((120, Tier::Disk)));
    }

    #[test]
    fn object_bigger_than_total_rejected() {
        let mut c = TieredLru::new(50, 100);
        c.insert("a", 30);
        let out = c.insert("huge", 200);
        assert!(!out.admitted);
        assert!(c.contains(&"a"));
    }

    #[test]
    fn oversize_update_purges_stale_copy() {
        let mut c = TieredLru::new(50, 100);
        c.insert("a", 30);
        assert!(!c.insert("a", 500).admitted);
        assert!(!c.contains(&"a"));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn remove_from_either_tier() {
        let mut c = TieredLru::new(50, 100);
        c.insert("a", 40);
        c.insert("b", 40); // a in disk
        assert_eq!(c.remove("a"), Some(40));
        assert_eq!(c.remove("b"), Some(40));
        assert_eq!(c.remove("b"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn with_mem_fraction_splits() {
        let c: TieredLru<u32> = TieredLru::with_mem_fraction(1000, 0.1);
        assert_eq!(c.mem_capacity(), 100);
        assert_eq!(c.capacity(), 1000);
    }

    #[test]
    fn demotion_preserves_recency_order() {
        let mut c = TieredLru::new(60, 120);
        c.insert(1u32, 30);
        c.insert(2, 30);
        c.insert(3, 30); // demotes 1
        c.insert(4, 30); // demotes 2
        let order: Vec<u32> = c.iter_mru().map(|(k, _)| k).collect();
        assert_eq!(order, vec![4, 3, 2, 1]);
    }

    #[test]
    fn zero_disk_behaves_like_flat_memory_lru() {
        let mut c = TieredLru::new(100, 0);
        c.insert("a", 60);
        let out = c.insert("b", 60);
        assert_eq!(out.evicted, vec![("a", 60)]);
        assert_eq!(c.touch(&"b"), Some((60, Tier::Memory)));
    }
}
