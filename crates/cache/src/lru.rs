//! Byte-capacity LRU cache, the replacement policy the paper simulates.
//!
//! Entries are whole Web documents: each has a key and a byte size, and the
//! cache holds at most `capacity` bytes. All operations are O(1) expected.
//! Documents larger than the whole cache are not admitted (standard Web
//! cache behaviour; admitting them would flush the entire cache for an
//! object that can never be reused before eviction).

use crate::slablist::{Handle, SlabList};
use std::collections::HashMap;
use std::hash::Hash;

/// Result of an [`ByteLru::insert`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertOutcome<K> {
    /// Whether the object was admitted to the cache.
    pub admitted: bool,
    /// Entries evicted to make room, in eviction (LRU-first) order.
    pub evicted: Vec<(K, u64)>,
}

impl<K> InsertOutcome<K> {
    fn rejected() -> Self {
        InsertOutcome {
            admitted: false,
            evicted: Vec::new(),
        }
    }
}

/// An LRU cache bounded by total bytes rather than entry count.
#[derive(Debug, Clone)]
pub struct ByteLru<K: Hash + Eq + Copy> {
    map: HashMap<K, Handle>,
    list: SlabList<(K, u64)>,
    capacity: u64,
    used: u64,
}

impl<K: Hash + Eq + Copy> ByteLru<K> {
    /// Creates a cache holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        ByteLru {
            map: HashMap::new(),
            list: SlabList::new(),
            capacity,
            used: 0,
        }
    }

    /// The byte capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently stored.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `key` is cached (does not promote).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Size of the cached copy of `key`, if present (does not promote).
    pub fn size_of(&self, key: &K) -> Option<u64> {
        self.map
            .get(key)
            .map(|&h| self.list.get(h).expect("map/list in sync").1)
    }

    /// Looks `key` up and promotes it to most-recently-used on a hit.
    /// Returns the cached size.
    pub fn touch(&mut self, key: &K) -> Option<u64> {
        let &h = self.map.get(key)?;
        self.list.move_to_front(h);
        Some(self.list.get(h).expect("map/list in sync").1)
    }

    /// Inserts (or refreshes) `key` with `size` bytes, evicting LRU entries
    /// as needed. An existing entry with the same key is replaced (its size
    /// updated) and promoted.
    pub fn insert(&mut self, key: K, size: u64) -> InsertOutcome<K> {
        if size > self.capacity {
            // Remove a stale smaller copy if present: the document now
            // exceeds the cache entirely.
            self.remove(&key);
            return InsertOutcome::rejected();
        }
        // Replace an existing copy first so its bytes are reclaimed.
        self.remove(&key);
        let mut evicted = Vec::new();
        while self.used + size > self.capacity {
            let (victim, vsize) = self.list.pop_back().expect("used > 0 implies entries");
            self.map.remove(&victim);
            self.used -= vsize;
            evicted.push((victim, vsize));
        }
        let h = self.list.push_front((key, size));
        self.map.insert(key, h);
        self.used += size;
        InsertOutcome {
            admitted: true,
            evicted,
        }
    }

    /// Removes `key`; returns its size if it was cached.
    pub fn remove(&mut self, key: &K) -> Option<u64> {
        let h = self.map.remove(key)?;
        let (_, size) = self.list.remove(h);
        self.used -= size;
        Some(size)
    }

    /// Evicts and returns the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(K, u64)> {
        let (key, size) = self.list.pop_back()?;
        self.map.remove(&key);
        self.used -= size;
        Some((key, size))
    }

    /// Iterates entries most-recent first.
    pub fn iter_mru(&self) -> impl Iterator<Item = (K, u64)> + '_ {
        self.list.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_hit() {
        let mut c = ByteLru::new(100);
        assert!(c.insert("a", 40).admitted);
        assert_eq!(c.touch(&"a"), Some(40));
        assert_eq!(c.touch(&"b"), None);
        assert_eq!(c.used(), 40);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_is_lru_order() {
        let mut c = ByteLru::new(100);
        c.insert("a", 40);
        c.insert("b", 40);
        let out = c.insert("c", 40); // must evict "a"
        assert_eq!(out.evicted, vec![("a", 40)]);
        assert!(!c.contains(&"a"));
        assert!(c.contains(&"b"));
        assert_eq!(c.used(), 80);
    }

    #[test]
    fn touch_promotes_against_eviction() {
        let mut c = ByteLru::new(100);
        c.insert("a", 40);
        c.insert("b", 40);
        c.touch(&"a"); // now "b" is LRU
        let out = c.insert("c", 40);
        assert_eq!(out.evicted, vec![("b", 40)]);
        assert!(c.contains(&"a"));
    }

    #[test]
    fn oversized_object_rejected() {
        let mut c = ByteLru::new(100);
        c.insert("a", 40);
        let out = c.insert("big", 101);
        assert!(!out.admitted);
        assert!(out.evicted.is_empty());
        // Cache undisturbed.
        assert!(c.contains(&"a"));
    }

    #[test]
    fn oversized_update_purges_stale_copy() {
        let mut c = ByteLru::new(100);
        c.insert("a", 40);
        let out = c.insert("a", 200); // "a" grew past the cache
        assert!(!out.admitted);
        assert!(!c.contains(&"a"));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn reinsert_updates_size() {
        let mut c = ByteLru::new(100);
        c.insert("a", 40);
        c.insert("a", 70);
        assert_eq!(c.used(), 70);
        assert_eq!(c.size_of(&"a"), Some(70));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn exact_fit_evicts_everything_needed() {
        let mut c = ByteLru::new(100);
        c.insert("a", 30);
        c.insert("b", 30);
        c.insert("c", 30);
        let out = c.insert("d", 100);
        assert!(out.admitted);
        assert_eq!(out.evicted.len(), 3);
        assert_eq!(c.used(), 100);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_frees_bytes() {
        let mut c = ByteLru::new(100);
        c.insert("a", 60);
        assert_eq!(c.remove(&"a"), Some(60));
        assert_eq!(c.remove(&"a"), None);
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn pop_lru_drains_in_order() {
        let mut c = ByteLru::new(100);
        c.insert("a", 10);
        c.insert("b", 10);
        c.touch(&"a");
        assert_eq!(c.pop_lru(), Some(("b", 10)));
        assert_eq!(c.pop_lru(), Some(("a", 10)));
        assert_eq!(c.pop_lru(), None);
    }

    #[test]
    fn iter_mru_order() {
        let mut c = ByteLru::new(100);
        c.insert("a", 10);
        c.insert("b", 10);
        c.insert("c", 10);
        c.touch(&"a");
        let keys: Vec<&str> = c.iter_mru().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "c", "b"]);
    }

    #[test]
    fn size_of_does_not_promote() {
        let mut c = ByteLru::new(100);
        c.insert("a", 40);
        c.insert("b", 40);
        assert_eq!(c.size_of(&"a"), Some(40));
        // "a" is still LRU.
        let out = c.insert("c", 40);
        assert_eq!(out.evicted, vec![("a", 40)]);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut c: ByteLru<u32> = ByteLru::new(0);
        assert!(!c.insert(1, 1).admitted);
        assert!(c.is_empty());
    }
}
