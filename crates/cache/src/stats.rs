//! Cache access statistics.

use crate::tiered::Tier;
use serde::{Deserialize, Serialize};

/// Counters accumulated while driving a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests that hit.
    pub hits: u64,
    /// Requests that missed.
    pub misses: u64,
    /// Bytes served from the cache.
    pub hit_bytes: u64,
    /// Bytes that had to be fetched elsewhere.
    pub miss_bytes: u64,
    /// Hits served from the memory tier (if tiered).
    pub mem_hits: u64,
    /// Bytes served from the memory tier (if tiered).
    pub mem_hit_bytes: u64,
    /// Entries evicted.
    pub evictions: u64,
    /// Bytes evicted.
    pub evicted_bytes: u64,
    /// Entries inserted.
    pub inserts: u64,
}

impl CacheStats {
    /// Records a hit of `size` bytes served by `tier`.
    pub fn record_hit(&mut self, size: u64, tier: Tier) {
        self.hits += 1;
        self.hit_bytes += size;
        if tier == Tier::Memory {
            self.mem_hits += 1;
            self.mem_hit_bytes += size;
        }
    }

    /// Records a miss of `size` bytes.
    pub fn record_miss(&mut self, size: u64) {
        self.misses += 1;
        self.miss_bytes += size;
    }

    /// Records an insertion and its evictions.
    pub fn record_insert(&mut self, evicted: &[(impl Sized, u64)]) {
        self.inserts += 1;
        self.evictions += evicted.len() as u64;
        self.evicted_bytes += evicted.iter().map(|(_, s)| *s).sum::<u64>();
    }

    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in percent.
    pub fn hit_ratio(&self) -> f64 {
        ratio(self.hits, self.requests())
    }

    /// Byte hit ratio in percent.
    pub fn byte_hit_ratio(&self) -> f64 {
        ratio(self.hit_bytes, self.hit_bytes + self.miss_bytes)
    }

    /// Memory byte hit ratio in percent (memory-served bytes over all
    /// requested bytes).
    pub fn mem_byte_hit_ratio(&self) -> f64 {
        ratio(self.mem_hit_bytes, self.hit_bytes + self.miss_bytes)
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.hit_bytes += other.hit_bytes;
        self.miss_bytes += other.miss_bytes;
        self.mem_hits += other.mem_hits;
        self.mem_hit_bytes += other.mem_hit_bytes;
        self.evictions += other.evictions;
        self.evicted_bytes += other.evicted_bytes;
        self.inserts += other.inserts;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut s = CacheStats::default();
        s.record_hit(100, Tier::Memory);
        s.record_hit(300, Tier::Disk);
        s.record_miss(600);
        assert_eq!(s.requests(), 3);
        assert!((s.hit_ratio() - 66.6667).abs() < 0.01);
        assert!((s.byte_hit_ratio() - 40.0).abs() < 1e-9);
        assert!((s.mem_byte_hit_ratio() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_ratios_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.byte_hit_ratio(), 0.0);
        assert_eq!(s.mem_byte_hit_ratio(), 0.0);
    }

    #[test]
    fn insert_records_evictions() {
        let mut s = CacheStats::default();
        s.record_insert(&[((), 10u64), ((), 20u64)]);
        let empty: [((), u64); 0] = [];
        s.record_insert(&empty);
        assert_eq!(s.inserts, 2);
        assert_eq!(s.evictions, 2);
        assert_eq!(s.evicted_bytes, 30);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats::default();
        a.record_hit(10, Tier::Memory);
        let mut b = CacheStats::default();
        b.record_miss(20);
        a.merge(&b);
        assert_eq!(a.requests(), 2);
        assert_eq!(a.miss_bytes, 20);
    }
}
