//! Replacement-policy framework.
//!
//! The paper's simulator uses LRU everywhere; we additionally provide LFU,
//! GDSF (GreedyDual-Size with Frequency), SIZE and FIFO so the benchmark
//! suite can run replacement-policy ablations. All policies share the
//! [`DocCache`] trait and the [`AnyCache`] enum-dispatch wrapper so the
//! simulator is policy-agnostic.

use crate::lru::{ByteLru, InsertOutcome};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

/// Replacement policies available to the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Least-recently-used (the paper's policy).
    Lru,
    /// Least-frequently-used, ties broken oldest-first.
    Lfu,
    /// GreedyDual-Size with Frequency: priority `L + freq / size`.
    Gdsf,
    /// Evict the largest document first.
    Size,
    /// First-in first-out.
    Fifo,
}

impl Policy {
    /// All policies, LRU first.
    pub fn all() -> [Policy; 5] {
        [
            Policy::Lru,
            Policy::Lfu,
            Policy::Gdsf,
            Policy::Size,
            Policy::Fifo,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Lru => "LRU",
            Policy::Lfu => "LFU",
            Policy::Gdsf => "GDSF",
            Policy::Size => "SIZE",
            Policy::Fifo => "FIFO",
        }
    }
}

/// Common interface of byte-capacity document caches.
pub trait DocCache<K> {
    /// Byte capacity.
    fn capacity(&self) -> u64;
    /// Bytes currently stored.
    fn used(&self) -> u64;
    /// Number of entries.
    fn len(&self) -> usize;
    /// Whether `key` is present (no side effects).
    fn contains(&self, key: &K) -> bool;
    /// Size of the cached copy, if any (no side effects).
    fn size_of(&self, key: &K) -> Option<u64>;
    /// Registers a hit on `key` (promotes per policy); returns cached size.
    fn touch(&mut self, key: &K) -> Option<u64>;
    /// Inserts `key`, evicting per policy.
    fn insert(&mut self, key: K, size: u64) -> InsertOutcome<K>;
    /// Removes `key`; returns its size if present.
    fn remove(&mut self, key: &K) -> Option<u64>;
    /// Whether the cache holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Hash + Eq + Copy> DocCache<K> for ByteLru<K> {
    fn capacity(&self) -> u64 {
        ByteLru::capacity(self)
    }
    fn used(&self) -> u64 {
        ByteLru::used(self)
    }
    fn len(&self) -> usize {
        ByteLru::len(self)
    }
    fn contains(&self, key: &K) -> bool {
        ByteLru::contains(self, key)
    }
    fn size_of(&self, key: &K) -> Option<u64> {
        ByteLru::size_of(self, key)
    }
    fn touch(&mut self, key: &K) -> Option<u64> {
        ByteLru::touch(self, key)
    }
    fn insert(&mut self, key: K, size: u64) -> InsertOutcome<K> {
        ByteLru::insert(self, key, size)
    }
    fn remove(&mut self, key: &K) -> Option<u64> {
        ByteLru::remove(self, key)
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Ordered priority; the minimum (prio, tick) pair is evicted first.
    prio: u64,
    tick: u64,
    size: u64,
    freq: u64,
}

/// Priority-ordered cache implementing LFU / GDSF / SIZE / FIFO.
///
/// Eviction removes the entry with the smallest `(priority, tick)`;
/// per-policy priorities are computed internally per policy kind.
#[derive(Debug, Clone)]
pub struct RankedCache<K: Hash + Eq + Copy + Ord> {
    kind: Policy,
    map: HashMap<K, Entry>,
    order: BTreeSet<(u64, u64, K)>,
    capacity: u64,
    used: u64,
    tick: u64,
    /// GDSF inflation value L (the priority of the last evicted entry).
    inflation: f64,
}

impl<K: Hash + Eq + Copy + Ord> RankedCache<K> {
    /// Creates a cache with the given policy and byte capacity.
    ///
    /// # Panics
    /// Panics if `kind` is [`Policy::Lru`]; use [`ByteLru`] for LRU.
    pub fn new(kind: Policy, capacity: u64) -> Self {
        assert!(kind != Policy::Lru, "use ByteLru for LRU");
        RankedCache {
            kind,
            map: HashMap::new(),
            order: BTreeSet::new(),
            capacity,
            used: 0,
            tick: 0,
            inflation: 0.0,
        }
    }

    fn priority(&self, size: u64, freq: u64) -> u64 {
        match self.kind {
            Policy::Lru => unreachable!(),
            Policy::Lfu => freq,
            Policy::Gdsf => {
                // H = L + freq / size; encode the non-negative f64 by its
                // bit pattern, which preserves order.
                let h = self.inflation + freq as f64 / (size.max(1)) as f64;
                h.to_bits()
            }
            Policy::Size => u64::MAX - size,
            Policy::Fifo => 0, // tick (insertion order) breaks ties
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

impl<K: Hash + Eq + Copy + Ord> DocCache<K> for RankedCache<K> {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn size_of(&self, key: &K) -> Option<u64> {
        self.map.get(key).map(|e| e.size)
    }

    fn touch(&mut self, key: &K) -> Option<u64> {
        let tick = self.next_tick();
        let entry = *self.map.get(key)?;
        let mut updated = entry;
        updated.freq = entry.freq.saturating_add(1);
        match self.kind {
            // FIFO ignores hits entirely.
            Policy::Fifo => return Some(entry.size),
            Policy::Size => {
                // Priority is size-only; refresh frequency bookkeeping.
                self.map.insert(*key, updated);
                return Some(entry.size);
            }
            _ => {}
        }
        updated.prio = self.priority(updated.size, updated.freq);
        updated.tick = tick;
        self.order.remove(&(entry.prio, entry.tick, *key));
        self.order.insert((updated.prio, updated.tick, *key));
        self.map.insert(*key, updated);
        Some(entry.size)
    }

    fn insert(&mut self, key: K, size: u64) -> InsertOutcome<K> {
        if size > self.capacity {
            self.remove(&key);
            return InsertOutcome {
                admitted: false,
                evicted: Vec::new(),
            };
        }
        self.remove(&key);
        let mut evicted = Vec::new();
        while self.used + size > self.capacity {
            let &(prio, tick, victim) = self.order.iter().next().expect("used > 0");
            self.order.remove(&(prio, tick, victim));
            let e = self.map.remove(&victim).expect("map/order in sync");
            self.used -= e.size;
            if self.kind == Policy::Gdsf {
                self.inflation = f64::from_bits(e.prio);
            }
            evicted.push((victim, e.size));
        }
        let tick = self.next_tick();
        let entry = Entry {
            prio: self.priority(size, 1),
            tick,
            size,
            freq: 1,
        };
        self.order.insert((entry.prio, entry.tick, key));
        self.map.insert(key, entry);
        self.used += size;
        InsertOutcome {
            admitted: true,
            evicted,
        }
    }

    fn remove(&mut self, key: &K) -> Option<u64> {
        let e = self.map.remove(key)?;
        self.order.remove(&(e.prio, e.tick, *key));
        self.used -= e.size;
        Some(e.size)
    }
}

/// Enum-dispatch wrapper so callers can hold any policy uniformly.
#[derive(Debug, Clone)]
pub enum AnyCache<K: Hash + Eq + Copy + Ord> {
    /// O(1) LRU.
    Lru(ByteLru<K>),
    /// Priority-ordered policies.
    Ranked(RankedCache<K>),
}

impl<K: Hash + Eq + Copy + Ord> AnyCache<K> {
    /// Creates a cache with the given policy and capacity.
    pub fn new(policy: Policy, capacity: u64) -> Self {
        match policy {
            Policy::Lru => AnyCache::Lru(ByteLru::new(capacity)),
            other => AnyCache::Ranked(RankedCache::new(other, capacity)),
        }
    }

    /// The policy this cache runs.
    pub fn policy(&self) -> Policy {
        match self {
            AnyCache::Lru(_) => Policy::Lru,
            AnyCache::Ranked(r) => r.kind,
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $c:ident, $e:expr) => {
        match $self {
            AnyCache::Lru($c) => $e,
            AnyCache::Ranked($c) => $e,
        }
    };
}

impl<K: Hash + Eq + Copy + Ord> DocCache<K> for AnyCache<K> {
    fn capacity(&self) -> u64 {
        dispatch!(self, c, c.capacity())
    }
    fn used(&self) -> u64 {
        dispatch!(self, c, c.used())
    }
    fn len(&self) -> usize {
        dispatch!(self, c, c.len())
    }
    fn contains(&self, key: &K) -> bool {
        dispatch!(self, c, c.contains(key))
    }
    fn size_of(&self, key: &K) -> Option<u64> {
        dispatch!(self, c, c.size_of(key))
    }
    fn touch(&mut self, key: &K) -> Option<u64> {
        dispatch!(self, c, c.touch(key))
    }
    fn insert(&mut self, key: K, size: u64) -> InsertOutcome<K> {
        dispatch!(self, c, c.insert(key, size))
    }
    fn remove(&mut self, key: &K) -> Option<u64> {
        dispatch!(self, c, c.remove(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut c = RankedCache::new(Policy::Lfu, 100);
        c.insert(1u32, 40);
        c.insert(2, 40);
        c.touch(&1);
        c.touch(&1);
        let out = c.insert(3, 40);
        assert_eq!(out.evicted, vec![(2, 40)]);
        assert!(c.contains(&1));
    }

    #[test]
    fn lfu_ties_break_oldest_first() {
        let mut c = RankedCache::new(Policy::Lfu, 100);
        c.insert(1u32, 40);
        c.insert(2, 40);
        // Equal frequency: evict 1 (older tick).
        let out = c.insert(3, 40);
        assert_eq!(out.evicted, vec![(1, 40)]);
    }

    #[test]
    fn size_policy_evicts_largest() {
        let mut c = RankedCache::new(Policy::Size, 100);
        c.insert(1u32, 60);
        c.insert(2, 30);
        let out = c.insert(3, 50);
        assert_eq!(out.evicted, vec![(1, 60)]);
        assert!(c.contains(&2));
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut c = RankedCache::new(Policy::Fifo, 100);
        c.insert(1u32, 40);
        c.insert(2, 40);
        c.touch(&1);
        c.touch(&1);
        // Despite the hits, 1 entered first and is evicted first.
        let out = c.insert(3, 40);
        assert_eq!(out.evicted, vec![(1, 40)]);
    }

    #[test]
    fn gdsf_prefers_small_frequent_docs() {
        let mut c = RankedCache::new(Policy::Gdsf, 1000);
        c.insert(1u32, 100); // small
        c.insert(2, 900); // large, same freq => much lower priority
        let out = c.insert(3, 500);
        assert_eq!(out.evicted, vec![(2, 900)]);
        assert!(c.contains(&1));
    }

    #[test]
    fn gdsf_inflation_ages_old_entries() {
        let mut c = RankedCache::new(Policy::Gdsf, 1000);
        c.insert(1u32, 500);
        for _ in 0..50 {
            c.touch(&1); // freq 51 -> priority ~0.102
        }
        c.insert(2, 400); // freq 1 -> priority 0.0025
        let out = c.insert(3, 200); // overflow: evicts doc 2, not hot doc 1
        assert_eq!(out.evicted, vec![(2, 400)]);
        assert!(c.contains(&1));
        // Eviction raised the inflation value L.
        assert!(c.inflation > 0.0);
    }

    #[test]
    fn ranked_oversized_rejected() {
        let mut c = RankedCache::new(Policy::Lfu, 100);
        assert!(!c.insert(1u32, 101).admitted);
        assert!(c.is_empty());
    }

    #[test]
    fn ranked_reinsert_updates_size() {
        let mut c = RankedCache::new(Policy::Lfu, 100);
        c.insert(1u32, 40);
        c.insert(1, 70);
        assert_eq!(c.used(), 70);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ranked_remove() {
        let mut c = RankedCache::new(Policy::Size, 100);
        c.insert(1u32, 40);
        assert_eq!(c.remove(&1), Some(40));
        assert_eq!(c.remove(&1), None);
        assert_eq!(c.used(), 0);
        assert!(c.order.is_empty());
    }

    #[test]
    fn any_cache_dispatches() {
        for policy in Policy::all() {
            let mut c = AnyCache::new(policy, 100);
            assert_eq!(c.policy(), policy);
            assert!(c.insert(1u32, 50).admitted);
            assert_eq!(c.touch(&1), Some(50));
            assert_eq!(c.size_of(&1), Some(50));
            assert_eq!(c.used(), 50);
            assert_eq!(c.remove(&1), Some(50));
            assert!(c.is_empty());
        }
    }

    #[test]
    fn policy_names() {
        assert_eq!(Policy::Lru.name(), "LRU");
        assert_eq!(Policy::Gdsf.name(), "GDSF");
    }

    #[test]
    #[should_panic(expected = "use ByteLru")]
    fn ranked_rejects_lru_kind() {
        let _ = RankedCache::<u32>::new(Policy::Lru, 10);
    }
}
