//! Property-based tests of the cache substrate invariants.

use baps_cache::{AnyCache, ByteLru, DocCache, Policy, TieredLru};
use proptest::prelude::*;

/// A randomly generated cache operation.
#[derive(Debug, Clone)]
enum Op {
    Touch(u16),
    Insert(u16, u64),
    Remove(u16),
}

fn op_strategy(max_size: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..64).prop_map(Op::Touch),
        ((0u16..64), (1..=max_size)).prop_map(|(k, s)| Op::Insert(k, s)),
        (0u16..64).prop_map(Op::Remove),
    ]
}

proptest! {
    /// Used bytes never exceed capacity, and used always equals the sum of
    /// the sizes of the entries the cache reports as present.
    #[test]
    fn lru_capacity_invariant(
        capacity in 1u64..2000,
        ops in proptest::collection::vec(op_strategy(600), 0..300),
    ) {
        let mut c = ByteLru::new(capacity);
        let mut shadow = std::collections::HashMap::new();
        for op in ops {
            match op {
                Op::Touch(k) => {
                    let hit = c.touch(&k);
                    prop_assert_eq!(hit, shadow.get(&k).copied());
                }
                Op::Insert(k, s) => {
                    let out = c.insert(k, s);
                    if out.admitted {
                        shadow.insert(k, s);
                    } else {
                        shadow.remove(&k);
                    }
                    for (victim, _) in &out.evicted {
                        shadow.remove(victim);
                    }
                }
                Op::Remove(k) => {
                    let removed = c.remove(&k);
                    prop_assert_eq!(removed, shadow.remove(&k));
                }
            }
            prop_assert!(c.used() <= capacity);
            let shadow_bytes: u64 = shadow.values().sum();
            prop_assert_eq!(c.used(), shadow_bytes);
            prop_assert_eq!(c.len(), shadow.len());
        }
    }

    /// Recency order: replaying iter_mru from most to least recent, every
    /// entry's last access must be no older than the next entry's.
    #[test]
    fn lru_eviction_is_least_recent(
        ops in proptest::collection::vec(op_strategy(100), 1..200),
    ) {
        let mut c = ByteLru::new(300);
        let mut last_access: std::collections::HashMap<u16, usize> = Default::default();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Touch(k) => {
                    if c.touch(&k).is_some() {
                        last_access.insert(k, i);
                    }
                }
                Op::Insert(k, s) => {
                    let out = c.insert(k, s);
                    if out.admitted {
                        last_access.insert(k, i);
                    } else {
                        last_access.remove(&k);
                    }
                    for (v, _) in out.evicted {
                        last_access.remove(&v);
                    }
                }
                Op::Remove(k) => {
                    c.remove(&k);
                    last_access.remove(&k);
                }
            }
        }
        let order: Vec<u16> = c.iter_mru().map(|(k, _)| k).collect();
        for w in order.windows(2) {
            prop_assert!(last_access[&w[0]] > last_access[&w[1]],
                "MRU order violated: {:?}", order);
        }
    }

    /// Every policy maintains the byte-capacity invariant and consistent
    /// bookkeeping under arbitrary operation sequences.
    #[test]
    fn all_policies_capacity_invariant(
        policy_idx in 0usize..5,
        capacity in 1u64..1500,
        ops in proptest::collection::vec(op_strategy(500), 0..250),
    ) {
        let policy = Policy::all()[policy_idx];
        let mut c = AnyCache::new(policy, capacity);
        let mut shadow = std::collections::HashMap::new();
        for op in ops {
            match op {
                Op::Touch(k) => {
                    let hit = c.touch(&k);
                    prop_assert_eq!(hit, shadow.get(&k).copied());
                }
                Op::Insert(k, s) => {
                    let out = c.insert(k, s);
                    if out.admitted {
                        shadow.insert(k, s);
                    } else {
                        shadow.remove(&k);
                    }
                    for (victim, _) in &out.evicted {
                        shadow.remove(victim);
                    }
                }
                Op::Remove(k) => {
                    let removed = c.remove(&k);
                    prop_assert_eq!(removed, shadow.remove(&k));
                }
            }
            prop_assert!(c.used() <= capacity, "{:?} exceeded capacity", policy);
            prop_assert_eq!(c.used(), shadow.values().sum::<u64>());
            prop_assert_eq!(c.len(), shadow.len());
        }
    }

    /// A tiered LRU holds exactly the same entries, in the same global
    /// recency order, as a flat LRU of the combined capacity — including
    /// objects larger than the memory tier.
    #[test]
    fn tiered_equals_flat_lru(
        mem in 50u64..300,
        disk in 0u64..1200,
        ops in proptest::collection::vec(op_strategy(500), 0..300),
    ) {
        let mut tiered = TieredLru::new(mem, disk);
        let mut flat = ByteLru::new(mem + disk);
        for op in ops {
            match op {
                Op::Touch(k) => {
                    let t = tiered.touch(&k).map(|(s, _)| s);
                    let f = flat.touch(&k);
                    prop_assert_eq!(t, f);
                }
                Op::Insert(k, s) => {
                    let to = tiered.insert(k, s);
                    let fo = flat.insert(k, s);
                    prop_assert_eq!(to.admitted, fo.admitted);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tiered.remove(k), flat.remove(&k));
                }
            }
            prop_assert_eq!(tiered.used(), flat.used());
        }
        let t: Vec<(u16, u64)> = tiered.iter_mru().collect();
        let f: Vec<(u16, u64)> = flat.iter_mru().collect();
        prop_assert_eq!(t, f);
    }
}
