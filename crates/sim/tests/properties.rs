//! Property-based tests of the simulator's accounting invariants.

use baps_core::{
    BrowserSizing, HitClass, LatencyParams, Organization, RemoteHitCaching, SystemConfig,
};
use baps_sim::{run, run_simple};
use baps_trace::{ClientId, DocId, Request, Trace, TraceStats};
use proptest::prelude::*;

/// A small random trace: bounded universes so caches see real contention.
///
/// Sizes are a fixed function of the document id. (With arbitrary
/// per-request sizes a document can oscillate back to an earlier size,
/// making a stale *private* browser copy valid again — a private cache can
/// then beat the single-shared-infinite-cache "maximum" hit ratio. The
/// paper's accounting has the same wrinkle; real documents essentially
/// never revert, so the bound test uses churn-free traces.)
fn trace_strategy() -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0u32..6, 0u32..40), 1..400).prop_map(|reqs| {
        let mut t = Trace::new("prop");
        for (i, (c, d)) in reqs.into_iter().enumerate() {
            t.push(Request {
                time_ms: (i as u64) * 37,
                client: ClientId(c),
                doc: DocId(d),
                size: (d % 37) * 131 + 64,
            });
        }
        t
    })
}

fn config_strategy() -> impl Strategy<Value = SystemConfig> {
    (
        0usize..5,
        1_000u64..200_000,
        prop_oneof![
            Just(BrowserSizing::Minimum),
            (1.0f64..8.0).prop_map(BrowserSizing::AverageK),
            (100u64..50_000).prop_map(BrowserSizing::Fixed),
        ],
        0.0f64..=1.0,
    )
        .prop_map(|(org_idx, proxy_capacity, browser_sizing, mem_fraction)| {
            let mut cfg = SystemConfig::paper_default(Organization::all()[org_idx], proxy_capacity);
            cfg.browser_sizing = browser_sizing;
            cfg.mem_fraction = mem_fraction;
            cfg
        })
}

proptest! {
    /// Exact accounting: every request lands in exactly one class, bytes
    /// add up, and ratios stay under the infinite-cache bound.
    #[test]
    fn accounting_invariants(trace in trace_strategy(), cfg in config_strategy()) {
        let stats = TraceStats::compute(&trace);
        let r = run(&trace, &stats, &cfg, &LatencyParams::paper());
        prop_assert_eq!(r.metrics.requests(), trace.len() as u64);
        prop_assert_eq!(r.metrics.total_bytes(), trace.total_bytes());
        prop_assert!(r.hit_ratio() <= stats.max_hit_ratio + 1e-9,
            "{} HR {} > bound {}", cfg.organization.name(), r.hit_ratio(), stats.max_hit_ratio);
        prop_assert!(r.byte_hit_ratio() <= stats.max_byte_hit_ratio + 1e-9);
        // Memory hits are a subset of all hit bytes.
        let hit_bytes = r.metrics.local_browser.bytes
            + r.metrics.proxy.bytes
            + r.metrics.remote_browser.bytes;
        prop_assert!(r.metrics.mem_hit_bytes <= hit_bytes);
        // Latency accumulates for every request.
        prop_assert!(r.latency.total_ms() > 0.0);
    }

    /// With remote hits re-cached at BOTH requester and proxy (mirroring
    /// exactly what the miss path would have populated) and no peer-serve
    /// promotion, the browsers-aware system is *exactly*
    /// proxy-and-local-browser plus converted misses: identical local/proxy
    /// classes, and every gained hit is a remote-browser hit.
    ///
    /// (Under the paper's `NoCaching` policy the two systems genuinely
    /// diverge over time — a remote hit leaves the requester's browser
    /// empty where the miss path would have cached a copy — so pointwise
    /// dominance is only guaranteed in this configuration.)
    #[test]
    fn baps_dominates_plb_pointwise(trace in trace_strategy(), proxy_capacity in 1_000u64..100_000) {
        let stats = TraceStats::compute(&trace);
        let mut baps_cfg = SystemConfig::paper_default(Organization::BrowsersAware, proxy_capacity);
        baps_cfg.remote_hit_caching = RemoteHitCaching::CacheBoth;
        baps_cfg.peer_serve_promotes = false;
        let mut plb_cfg = baps_cfg;
        plb_cfg.organization = Organization::ProxyAndLocalBrowser;

        let baps = run(&trace, &stats, &baps_cfg, &LatencyParams::paper());
        let plb = run(&trace, &stats, &plb_cfg, &LatencyParams::paper());

        prop_assert_eq!(baps.metrics.local_browser, plb.metrics.local_browser);
        prop_assert_eq!(baps.metrics.proxy, plb.metrics.proxy);
        prop_assert_eq!(
            baps.metrics.remote_browser.count + baps.metrics.miss.count,
            plb.metrics.miss.count
        );
        prop_assert!(baps.hit_ratio() >= plb.hit_ratio());
    }

    /// Replays are deterministic: same inputs, same outputs.
    #[test]
    fn replay_determinism(trace in trace_strategy(), cfg in config_strategy()) {
        let a = run_simple(&trace, &cfg);
        let b = run_simple(&trace, &cfg);
        prop_assert_eq!(a.metrics, b.metrics);
        prop_assert_eq!(a.latency, b.latency);
        prop_assert_eq!(a.index_memory_bytes, b.index_memory_bytes);
    }

    /// Proxy-only and local-browser-only never produce remote or foreign
    /// hit classes.
    #[test]
    fn class_exclusivity(trace in trace_strategy(), proxy_capacity in 1_000u64..100_000) {
        let stats = TraceStats::compute(&trace);
        let p = run(
            &trace,
            &stats,
            &SystemConfig::paper_default(Organization::ProxyOnly, proxy_capacity),
            &LatencyParams::paper(),
        );
        prop_assert_eq!(p.metrics.local_browser.count, 0);
        prop_assert_eq!(p.metrics.remote_browser.count, 0);
        let b = run(
            &trace,
            &stats,
            &SystemConfig::paper_default(Organization::LocalBrowserOnly, proxy_capacity),
            &LatencyParams::paper(),
        );
        prop_assert_eq!(b.metrics.proxy.count, 0);
        prop_assert_eq!(b.metrics.remote_browser.count, 0);
        prop_assert_eq!(b.metrics.class_ratio(HitClass::Proxy), 0.0);
    }
}
