//! Trace replay engine.

use crate::histo::LatencyHistogram;
use crate::latency::LatencyTotals;
use crate::metrics::Metrics;
use crate::system::SimSystem;
use baps_core::{HitClass, LatencyParams, SystemConfig};
use baps_index::IndexStats;
use baps_trace::{Trace, TraceStats};
use serde::{Deserialize, Serialize};

/// Per-hit-class service-time distributions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClassHistograms {
    /// Local-browser hits.
    pub local_browser: LatencyHistogram,
    /// Proxy hits.
    pub proxy: LatencyHistogram,
    /// Remote-browser hits.
    pub remote_browser: LatencyHistogram,
    /// Misses (WAN fetches).
    pub miss: LatencyHistogram,
    /// All requests.
    pub all: LatencyHistogram,
}

impl ClassHistograms {
    fn record(&mut self, class: HitClass, ms: f64) {
        match class {
            HitClass::LocalBrowser => self.local_browser.record(ms),
            HitClass::Proxy => self.proxy.record(ms),
            HitClass::RemoteBrowser => self.remote_browser.record(ms),
            HitClass::Miss => self.miss.record(ms),
        }
        self.all.record(ms);
    }
}

/// Replay options beyond the system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunOptions {
    /// Fraction of the trace treated as cache warm-up: those requests are
    /// replayed (populating caches and index) but excluded from metrics.
    pub warmup_frac: f64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { warmup_frac: 0.0 }
    }
}

/// The result of replaying one trace through one system configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Trace name.
    pub trace: String,
    /// The configuration that was run.
    pub config: SystemConfig,
    /// Resolved per-browser capacity in bytes.
    pub browser_capacity: u64,
    /// Request metrics.
    pub metrics: Metrics,
    /// Latency accounting.
    pub latency: LatencyTotals,
    /// Browser-index traffic statistics (zeroed for non-sharing orgs).
    pub index_stats: IndexStats,
    /// Browser-index memory footprint at end of run, bytes.
    pub index_memory_bytes: u64,
    /// Per-class service-time distributions.
    pub histograms: ClassHistograms,
}

impl RunResult {
    /// Hit ratio in percent.
    pub fn hit_ratio(&self) -> f64 {
        self.metrics.hit_ratio()
    }

    /// Byte hit ratio in percent.
    pub fn byte_hit_ratio(&self) -> f64 {
        self.metrics.byte_hit_ratio()
    }
}

/// Replays `trace` through a system configured by `cfg`.
///
/// `stats` must be the statistics of the same trace (they feed browser
/// sizing); use [`run_simple`] to have them computed for you.
pub fn run(
    trace: &Trace,
    stats: &TraceStats,
    cfg: &SystemConfig,
    latency: &LatencyParams,
) -> RunResult {
    run_with_options(trace, stats, cfg, latency, &RunOptions::default())
}

/// Replays `trace` with explicit [`RunOptions`] (warm-up exclusion).
///
/// # Panics
///
/// Panics when `warmup_frac` lies outside `[0, 1)`, or when a nonzero
/// `warmup_frac` rounds to zero requests or swallows the whole trace —
/// either way the caller asked for a warm-up that cannot happen, and
/// silently measuring warm-up requests (or measuring nothing) would
/// corrupt the reported metrics.
pub fn run_with_options(
    trace: &Trace,
    stats: &TraceStats,
    cfg: &SystemConfig,
    latency: &LatencyParams,
    options: &RunOptions,
) -> RunResult {
    assert!(
        (0.0..1.0).contains(&options.warmup_frac),
        "warmup_frac {} outside [0, 1)",
        options.warmup_frac
    );
    let mut system = SimSystem::new(
        *cfg,
        trace.n_clients,
        stats.mean_client_infinite_bytes,
        *latency,
    );
    let warmup = ((trace.len() as f64) * options.warmup_frac) as usize;
    if options.warmup_frac > 0.0 {
        assert!(
            warmup > 0,
            "warmup_frac {} rounds to zero requests on a {}-request trace; \
             use warmup_frac = 0.0 to disable warm-up explicitly",
            options.warmup_frac,
            trace.len()
        );
        assert!(
            warmup < trace.len(),
            "warmup_frac {} covers all {} requests, leaving nothing to measure",
            options.warmup_frac,
            trace.len()
        );
    }
    let mut histograms = ClassHistograms::default();
    for (i, req) in trace.iter().enumerate() {
        if i == warmup && warmup > 0 {
            // Caches and index stay warm; measurement starts fresh.
            system.metrics = Metrics::default();
            system.latency.totals = LatencyTotals::default();
        }
        let before = system.latency.totals.total_ms();
        let class = system.process(req);
        if i >= warmup {
            histograms.record(class, system.latency.totals.total_ms() - before);
        }
    }
    let (index_stats, index_memory_bytes) = system
        .index()
        .map(|i| (i.stats(), i.memory_bytes()))
        .unwrap_or_default();
    RunResult {
        trace: trace.name.clone(),
        config: *cfg,
        browser_capacity: system.browser_capacity(),
        metrics: system.metrics.clone(),
        latency: system.latency.totals,
        index_stats,
        index_memory_bytes,
        histograms,
    }
}

/// Replays `trace` computing its statistics on the fly.
pub fn run_simple(trace: &Trace, cfg: &SystemConfig) -> RunResult {
    let stats = TraceStats::compute(trace);
    run(trace, &stats, cfg, &LatencyParams::paper())
}

#[cfg(test)]
mod tests {
    use super::*;
    use baps_core::Organization;
    use baps_trace::SynthConfig;

    fn small_trace() -> Trace {
        SynthConfig::small().scaled(0.25).generate(3)
    }

    #[test]
    fn run_covers_all_requests() {
        let trace = small_trace();
        let cfg = SystemConfig::paper_default(Organization::BrowsersAware, 1 << 20);
        let result = run_simple(&trace, &cfg);
        assert_eq!(result.metrics.requests(), trace.len() as u64);
        assert_eq!(result.metrics.total_bytes(), trace.total_bytes());
        assert!(result.hit_ratio() > 0.0);
        assert!(result.latency.total_ms() > 0.0);
    }

    #[test]
    fn hit_ratio_below_infinite_bound() {
        let trace = small_trace();
        let stats = TraceStats::compute(&trace);
        for org in Organization::all() {
            let cfg = SystemConfig::paper_default(org, 1 << 20);
            let r = run(&trace, &stats, &cfg, &LatencyParams::paper());
            assert!(
                r.hit_ratio() <= stats.max_hit_ratio + 1e-9,
                "{}: {} > {}",
                org.name(),
                r.hit_ratio(),
                stats.max_hit_ratio
            );
            assert!(r.byte_hit_ratio() <= stats.max_byte_hit_ratio + 1e-9);
        }
    }

    #[test]
    fn browsers_aware_dominates_proxy_and_local() {
        let trace = small_trace();
        let stats = TraceStats::compute(&trace);
        let proxy_cap = (stats.infinite_cache_bytes / 20).max(1); // 5%
        let baps = run(
            &trace,
            &stats,
            &SystemConfig::paper_default(Organization::BrowsersAware, proxy_cap),
            &LatencyParams::paper(),
        );
        let plb = run(
            &trace,
            &stats,
            &SystemConfig::paper_default(Organization::ProxyAndLocalBrowser, proxy_cap),
            &LatencyParams::paper(),
        );
        assert!(
            baps.hit_ratio() >= plb.hit_ratio(),
            "BAPS {} < P+LB {}",
            baps.hit_ratio(),
            plb.hit_ratio()
        );
        // The gain comes from remote-browser hits, which P+LB cannot have.
        assert!(baps.metrics.remote_browser.count > 0);
        assert_eq!(plb.metrics.remote_browser.count, 0);
    }

    #[test]
    fn exact_index_never_wastes_probes_without_churn() {
        let mut synth = SynthConfig::small().scaled(0.25);
        synth.p_size_change = 0.0; // no document churn
        let trace = synth.generate(5);
        let cfg = SystemConfig::paper_default(Organization::BrowsersAware, 1 << 20);
        let r = run_simple(&trace, &cfg);
        assert_eq!(r.metrics.wasted_probes, 0);
    }

    #[test]
    fn index_stats_populated_for_sharing_orgs() {
        let trace = small_trace();
        let cfg = SystemConfig::paper_default(Organization::BrowsersAware, 1 << 20);
        let r = run_simple(&trace, &cfg);
        assert!(r.index_stats.updates > 0);
        assert!(r.index_memory_bytes > 0);
        let cfg = SystemConfig::paper_default(Organization::ProxyAndLocalBrowser, 1 << 20);
        let r = run_simple(&trace, &cfg);
        assert_eq!(r.index_stats.updates, 0);
        assert_eq!(r.index_memory_bytes, 0);
    }

    #[test]
    fn warmup_excludes_early_requests() {
        let trace = small_trace();
        let stats = TraceStats::compute(&trace);
        let cfg = SystemConfig::paper_default(Organization::BrowsersAware, 1 << 20);
        let opts = RunOptions { warmup_frac: 0.5 };
        let warmed = run_with_options(&trace, &stats, &cfg, &LatencyParams::paper(), &opts);
        // Only the post-warm-up half is measured...
        assert_eq!(
            warmed.metrics.requests(),
            (trace.len() - trace.len() / 2) as u64
        );
        // ...and warm caches raise the measured hit ratio vs a cold run
        // truncated to the same suffix semantics (full cold run is a fair
        // lower bound here).
        let cold = run(&trace, &stats, &cfg, &LatencyParams::paper());
        assert!(warmed.hit_ratio() >= cold.hit_ratio() - 1.0);
        assert_eq!(warmed.histograms.all.count(), warmed.metrics.requests());
    }

    #[test]
    #[should_panic(expected = "rounds to zero requests")]
    fn warmup_rounding_to_zero_rejected() {
        // 1e-9 of a small trace truncates to zero warm-up requests: the
        // caller asked for warm-up but would silently measure everything.
        let trace = small_trace();
        let stats = TraceStats::compute(&trace);
        let cfg = SystemConfig::paper_default(Organization::BrowsersAware, 1 << 20);
        let opts = RunOptions { warmup_frac: 1e-9 };
        run_with_options(&trace, &stats, &cfg, &LatencyParams::paper(), &opts);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn warmup_frac_one_rejected() {
        let trace = small_trace();
        let stats = TraceStats::compute(&trace);
        let cfg = SystemConfig::paper_default(Organization::BrowsersAware, 1 << 20);
        let opts = RunOptions { warmup_frac: 1.0 };
        run_with_options(&trace, &stats, &cfg, &LatencyParams::paper(), &opts);
    }

    #[test]
    fn histograms_partition_requests() {
        let trace = small_trace();
        let cfg = SystemConfig::paper_default(Organization::BrowsersAware, 1 << 20);
        let r = run_simple(&trace, &cfg);
        let h = &r.histograms;
        assert_eq!(h.all.count(), r.metrics.requests());
        assert_eq!(
            h.local_browser.count() + h.proxy.count() + h.remote_browser.count() + h.miss.count(),
            h.all.count()
        );
        assert_eq!(h.local_browser.count(), r.metrics.local_browser.count);
        assert_eq!(h.miss.count(), r.metrics.miss.count);
        // Latency ordering: local hits are faster than misses at p50.
        if h.local_browser.count() > 0 && h.miss.count() > 0 {
            assert!(h.local_browser.quantile_ms(0.5) < h.miss.quantile_ms(0.5));
        }
        // Remote hits pay the 0.1 s connection: p50 at least 100 ms.
        if h.remote_browser.count() > 0 {
            assert!(h.remote_browser.quantile_ms(0.5) >= 90.0);
        }
        // The histogram's mean matches the accounted totals.
        let total_from_histo = h.all.mean_ms() * h.all.count() as f64;
        let rel = (total_from_histo - r.latency.total_ms()).abs() / r.latency.total_ms();
        assert!(rel < 1e-6, "histogram/total divergence {rel}");
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = small_trace();
        let cfg = SystemConfig::paper_default(Organization::BrowsersAware, 1 << 20);
        let a = run_simple(&trace, &cfg);
        let b = run_simple(&trace, &cfg);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.latency, b.latency);
    }
}
