//! Log-scaled latency histogram for per-request service times.
//!
//! The paper's §5 argues about *aggregate* service time; a distributional
//! view (p50/p90/p99 per hit class) shows where the browsers-aware design
//! helps and what the 0.1 s peer-connection setup costs. Buckets are
//! log-spaced (about 18 per decade) so microsecond memory hits and
//! multi-second WAN fetches fit in one compact structure with bounded
//! relative error (~±6%).

use serde::{Deserialize, Serialize};

/// Buckets per decade (relative resolution ≈ 10^(1/18) − 1 ≈ 13.6%, i.e.
/// quantile estimates within about ±7%).
const BUCKETS_PER_DECADE: f64 = 18.0;
/// Smallest representable latency, ms (everything below lands in bucket 0).
const MIN_MS: f64 = 1e-4;
/// Number of buckets: spans 1e-4 .. 1e5 ms (9 decades).
const NBUCKETS: usize = (9.0 * BUCKETS_PER_DECADE) as usize + 2;

/// A fixed-size log-scaled histogram of millisecond latencies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ms: f64,
    max_ms: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; NBUCKETS],
            total: 0,
            sum_ms: 0.0,
            max_ms: 0.0,
        }
    }

    fn bucket(ms: f64) -> usize {
        if ms <= MIN_MS {
            return 0;
        }
        let idx = ((ms / MIN_MS).log10() * BUCKETS_PER_DECADE).floor() as usize + 1;
        idx.min(NBUCKETS - 1)
    }

    /// Lower edge of a bucket, ms.
    fn bucket_value(idx: usize) -> f64 {
        if idx == 0 {
            return MIN_MS;
        }
        MIN_MS * 10f64.powf((idx - 1) as f64 / BUCKETS_PER_DECADE)
    }

    /// Records one latency observation.
    pub fn record(&mut self, ms: f64) {
        debug_assert!(ms.is_finite() && ms >= 0.0);
        self.counts[Self::bucket(ms)] += 1;
        self.total += 1;
        self.sum_ms += ms;
        self.max_ms = self.max_ms.max(ms);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency, ms (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ms / self.total as f64
        }
    }

    /// Maximum observed latency, ms.
    pub fn max_ms(&self) -> f64 {
        self.max_ms
    }

    /// Approximate quantile (`q` in [0, 1]), ms. Returns 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(idx);
            }
        }
        self.max_ms
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ms += other.sum_ms;
        self.max_ms = self.max_ms.max(other.max_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.quantile_ms(0.5), 0.0);
    }

    #[test]
    fn mean_and_max_exact() {
        let mut h = LatencyHistogram::new();
        for v in [1.0, 2.0, 3.0] {
            h.record(v);
        }
        assert!((h.mean_ms() - 2.0).abs() < 1e-12);
        assert_eq!(h.max_ms(), 3.0);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LatencyHistogram::new();
        // 1..=1000 ms uniform.
        for i in 1..=1000 {
            h.record(i as f64);
        }
        for (q, expect) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = h.quantile_ms(q);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.15, "q{q}: got {got}, expect {expect}");
        }
    }

    #[test]
    fn spans_nine_decades() {
        let mut h = LatencyHistogram::new();
        h.record(0.0002); // memory hit territory
        h.record(15_000.0); // slow WAN fetch
        assert!(h.quantile_ms(0.01) < 0.001);
        assert!(h.quantile_ms(1.0) >= 10_000.0);
    }

    #[test]
    fn below_min_clamps_to_first_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(0.0);
        h.record(1e-9);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ms(1.0) <= MIN_MS * 2.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10.0);
        b.record(1000.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.max_ms() == 1000.0);
        assert!(a.quantile_ms(0.25) < 20.0);
        assert!(a.quantile_ms(1.0) > 500.0);
    }

    #[test]
    fn monotone_quantiles() {
        let mut h = LatencyHistogram::new();
        for i in 0..5000 {
            h.record((i % 97) as f64 + 0.1);
        }
        let mut prev = 0.0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile_ms(q);
            assert!(v >= prev, "quantiles must be monotone");
            prev = v;
        }
    }
}
