//! Log-scaled latency histogram — re-exported from [`baps_obs`].
//!
//! The histogram used to live here; it moved to `baps-obs` so the offline
//! simulator, the live runtime's `METRICS` verb, and the benchmark
//! binaries all report latency through the identical bucket layout (18
//! buckets per decade over 1e-4..1e5 ms). This module remains so existing
//! `baps_sim::histo::LatencyHistogram` imports keep working.

pub use baps_obs::hist::{LatencyHistogram, BUCKETS_PER_DECADE, MIN_MS, NBUCKETS};
