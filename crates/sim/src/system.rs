//! The simulated caching system: browser caches, proxy cache, browser index
//! and the request-routing logic of each of the five organizations.

use crate::latency::LatencyModel;
use crate::metrics::Metrics;
use baps_cache::{AnyCache, DocCache, Policy, Tier, TieredLru};
use baps_core::{HitClass, LatencyParams, SystemConfig};
use baps_index::AnyIndex;
use baps_trace::{ClientId, DocId, Request};
use std::collections::HashMap;

/// Maximum remote candidates probed before giving up and going to the
/// server (only inexact indexes ever produce failing probes).
const MAX_PROBES: usize = 4;

/// A cache that is either a two-tier LRU (memory attribution) or a ranked
/// policy cache (no memory tier modelled).
#[derive(Debug, Clone)]
enum SimCache {
    Tiered(TieredLru<DocId>),
    Ranked(AnyCache<DocId>),
}

impl SimCache {
    fn new(policy: Policy, capacity: u64, mem_fraction: f64) -> SimCache {
        match policy {
            Policy::Lru => SimCache::Tiered(TieredLru::with_mem_fraction(capacity, mem_fraction)),
            other => SimCache::Ranked(AnyCache::new(other, capacity)),
        }
    }

    fn size_of(&self, doc: DocId) -> Option<u64> {
        match self {
            SimCache::Tiered(c) => c.size_of(&doc),
            SimCache::Ranked(c) => c.size_of(&doc),
        }
    }

    /// Which tier currently holds `doc` (no promotion). Ranked caches do
    /// not model a memory tier and always report disk.
    fn tier_of(&self, doc: DocId) -> Option<Tier> {
        match self {
            SimCache::Tiered(c) => c.tier_of(&doc),
            SimCache::Ranked(c) => c.contains(&doc).then_some(Tier::Disk),
        }
    }

    fn touch(&mut self, doc: DocId) -> Option<(u64, Tier)> {
        match self {
            SimCache::Tiered(c) => c.touch(&doc),
            SimCache::Ranked(c) => c.touch(&doc).map(|s| (s, Tier::Disk)),
        }
    }

    /// Returns (admitted, evicted).
    fn insert(&mut self, doc: DocId, size: u64) -> (bool, Vec<(DocId, u64)>) {
        match self {
            SimCache::Tiered(c) => {
                let out = c.insert(doc, size);
                (out.admitted, out.evicted)
            }
            SimCache::Ranked(c) => {
                let out = c.insert(doc, size);
                (out.admitted, out.evicted)
            }
        }
    }

    fn remove(&mut self, doc: DocId) -> Option<u64> {
        match self {
            SimCache::Tiered(c) => c.remove(doc),
            SimCache::Ranked(c) => c.remove(&doc),
        }
    }

    fn used(&self) -> u64 {
        match self {
            SimCache::Tiered(c) => c.used(),
            SimCache::Ranked(c) => c.used(),
        }
    }
}

/// A fully assembled simulated system processing one request at a time.
#[derive(Debug)]
pub struct SimSystem {
    cfg: SystemConfig,
    proxy: Option<SimCache>,
    browsers: Vec<SimCache>,
    index: Option<AnyIndex>,
    /// Store timestamps for TTL accounting (only maintained when
    /// `cfg.ttl_ms` is set). Browser slots first, proxy last.
    stored_at: Vec<HashMap<DocId, u64>>,
    /// Accumulated request metrics.
    pub metrics: Metrics,
    /// Accumulated latency accounting.
    pub latency: LatencyModel,
    browser_capacity: u64,
}

impl SimSystem {
    /// Builds the system for `n_clients` clients.
    ///
    /// `mean_client_infinite` feeds the browser sizing rule (see
    /// [`baps_core::BrowserSizing`]).
    pub fn new(
        cfg: SystemConfig,
        n_clients: u32,
        mean_client_infinite: f64,
        latency: LatencyParams,
    ) -> SimSystem {
        cfg.validate().expect("invalid SystemConfig");
        let browser_capacity =
            cfg.browser_sizing
                .resolve(cfg.proxy_capacity, n_clients, mean_client_infinite);
        let proxy = cfg
            .organization
            .has_proxy_cache()
            .then(|| SimCache::new(cfg.policy, cfg.proxy_capacity, cfg.mem_fraction));
        let browser_mem = cfg.browser_mem_fraction.unwrap_or(cfg.mem_fraction);
        let browsers = if cfg.organization.has_browser_caches() {
            (0..n_clients)
                .map(|_| SimCache::new(cfg.policy, browser_capacity, browser_mem))
                .collect()
        } else {
            Vec::new()
        };
        let index = cfg
            .organization
            .shares_browsers()
            .then(|| cfg.index_model.build(n_clients));
        let stored_at = if cfg.ttl_ms.is_some() {
            vec![HashMap::new(); n_clients as usize + 1]
        } else {
            Vec::new()
        };
        SimSystem {
            cfg,
            proxy,
            browsers,
            index,
            stored_at,
            metrics: Metrics::default(),
            latency: LatencyModel::new(latency),
            browser_capacity,
        }
    }

    /// Timestamp slot for a browser (or the proxy with `None`).
    fn ttl_slot(&self, client: Option<ClientId>) -> usize {
        match client {
            Some(c) => c.index(),
            None => self.stored_at.len() - 1,
        }
    }

    /// Records a store time when TTL accounting is on.
    fn note_store(&mut self, client: Option<ClientId>, doc: DocId, now: u64) {
        if self.cfg.ttl_ms.is_some() {
            let slot = self.ttl_slot(client);
            self.stored_at[slot].insert(doc, now);
        }
    }

    /// Whether a cached copy is fresh; an expired copy is revalidated
    /// (one WAN round-trip, no body) and refreshed, returning `true` —
    /// document-change misses are handled separately by the size check.
    /// Pass `charge = false` to only test freshness (remote candidates).
    fn fresh_or_revalidate(
        &mut self,
        client: Option<ClientId>,
        doc: DocId,
        now: u64,
        charge: bool,
    ) -> bool {
        let Some(ttl) = self.cfg.ttl_ms else {
            return true;
        };
        let slot = self.ttl_slot(client);
        let stored = self.stored_at[slot].get(&doc).copied().unwrap_or(0);
        if now.saturating_sub(stored) <= ttl {
            return true;
        }
        if charge {
            self.latency.revalidation();
            self.metrics.revalidations += 1;
            self.stored_at[slot].insert(doc, now);
            true
        } else {
            false
        }
    }

    /// The resolved per-browser capacity in bytes.
    pub fn browser_capacity(&self) -> u64 {
        self.browser_capacity
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Bytes currently held by the proxy cache (0 if none).
    pub fn proxy_used(&self) -> u64 {
        self.proxy.as_ref().map_or(0, SimCache::used)
    }

    /// Combined bytes held by all browser caches.
    pub fn browsers_used(&self) -> u64 {
        self.browsers.iter().map(SimCache::used).sum()
    }

    /// The browser index, if this organization maintains one.
    pub fn index(&self) -> Option<&AnyIndex> {
        self.index.as_ref()
    }

    /// Processes one trace request, returning how it was served.
    pub fn process(&mut self, req: &Request) -> HitClass {
        let Request {
            time_ms,
            client,
            doc,
            size,
        } = *req;
        let size = size as u64;
        if let Some(idx) = self.index.as_mut() {
            idx.advance_time(time_ms);
        }
        let mut saw_stale_copy = false;

        // 1. Local browser cache.
        if self.cfg.organization.has_browser_caches() {
            match self.browsers[client.index()].size_of(doc) {
                Some(cached) if cached == size => {
                    self.fresh_or_revalidate(Some(client), doc, time_ms, true);
                    let (_, tier) = self.browsers[client.index()]
                        .touch(doc)
                        .expect("size_of implied presence");
                    self.account_tier(tier, size);
                    self.metrics.record(HitClass::LocalBrowser, size);
                    return HitClass::LocalBrowser;
                }
                Some(_) => {
                    // Stale copy: the document changed; purge and continue.
                    self.evict_browser_copy(client, doc);
                    saw_stale_copy = true;
                }
                None => {}
            }
        }

        // 2. Proxy cache.
        if self.proxy.is_some() {
            match self.proxy.as_ref().expect("checked").size_of(doc) {
                Some(cached) if cached == size => {
                    self.fresh_or_revalidate(None, doc, time_ms, true);
                    let (_, tier) = self
                        .proxy
                        .as_mut()
                        .expect("checked")
                        .touch(doc)
                        .expect("size_of implied presence");
                    self.account_tier(tier, size);
                    self.latency.proxy_transfer(size);
                    // The browser caches what it receives from the proxy.
                    self.store_browser(client, doc, size);
                    self.note_store(Some(client), doc, time_ms);
                    self.metrics.record(HitClass::Proxy, size);
                    return HitClass::Proxy;
                }
                Some(_) => {
                    self.proxy.as_mut().expect("checked").remove(doc);
                    saw_stale_copy = true;
                }
                None => {}
            }
        }

        // 3. Remote browser caches via the browser index.
        if self.cfg.organization.shares_browsers() {
            if let Some(peer) = self.probe_remote(time_ms, client, doc, size) {
                self.metrics.record(HitClass::RemoteBrowser, size);
                // Optional re-caching of the forwarded copy.
                if self.cfg.remote_hit_caching.at_requester() {
                    self.store_browser(client, doc, size);
                    self.note_store(Some(client), doc, time_ms);
                }
                if self.cfg.remote_hit_caching.at_proxy() {
                    if let Some(proxy) = self.proxy.as_mut() {
                        proxy.insert(doc, size);
                    }
                    if self.proxy.is_some() {
                        self.note_store(None, doc, time_ms);
                    }
                }
                let _ = peer;
                return HitClass::RemoteBrowser;
            }
        }

        // 4. Miss: fetch from the server, populate caches on the way back.
        if saw_stale_copy {
            self.metrics.size_change_misses += 1;
        }
        self.latency.miss(size);
        self.metrics.record(HitClass::Miss, size);
        if let Some(proxy) = self.proxy.as_mut() {
            proxy.insert(doc, size);
        }
        if self.proxy.is_some() {
            self.note_store(None, doc, time_ms);
        }
        if self.cfg.organization.has_browser_caches() {
            self.store_browser(client, doc, size);
            self.note_store(Some(client), doc, time_ms);
        }
        HitClass::Miss
    }

    /// Probes index candidates; returns the serving peer on success.
    fn probe_remote(
        &mut self,
        time_ms: u64,
        client: ClientId,
        doc: DocId,
        size: u64,
    ) -> Option<ClientId> {
        let candidates = self
            .index
            .as_mut()
            .map(|idx| idx.candidates(doc, client))
            .unwrap_or_default();
        for peer in candidates.into_iter().take(MAX_PROBES) {
            match self.browsers[peer.index()].size_of(doc) {
                Some(cached)
                    if cached == size
                        && !self.fresh_or_revalidate(Some(peer), doc, time_ms, false) =>
                {
                    // Expired peer copy: not servable without the owner
                    // revalidating; treat as a wasted probe.
                    self.metrics.wasted_probes += 1;
                    self.latency.wasted_probe();
                }
                Some(cached) if cached == size => {
                    // The tier that serves the bytes is wherever the copy
                    // currently resides; whether serving *promotes* it in
                    // the peer's LRU is configurable.
                    let tier = if self.cfg.peer_serve_promotes {
                        self.browsers[peer.index()]
                            .touch(doc)
                            .expect("size_of implied presence")
                            .1
                    } else {
                        self.browsers[peer.index()]
                            .tier_of(doc)
                            .expect("size_of implied presence")
                    };
                    self.account_tier(tier, size);
                    self.latency.remote_transfer(time_ms, size);
                    return Some(peer);
                }
                _ => {
                    // Stale index entry, Bloom false positive, or a peer
                    // copy with a changed size: wasted probe.
                    self.metrics.wasted_probes += 1;
                    self.latency.wasted_probe();
                }
            }
        }
        None
    }

    /// Stores a document into a browser cache, keeping the index in sync.
    fn store_browser(&mut self, client: ClientId, doc: DocId, size: u64) {
        if !self.cfg.organization.has_browser_caches() {
            return;
        }
        let had = self.browsers[client.index()].size_of(doc).is_some();
        let (admitted, evicted) = self.browsers[client.index()].insert(doc, size);
        if let Some(idx) = self.index.as_mut() {
            for (victim, _) in &evicted {
                idx.on_evict(client, *victim);
            }
            if admitted {
                idx.on_store(client, doc);
            } else if had {
                // An oversize update purged the old copy without admission.
                idx.on_evict(client, doc);
            }
        }
    }

    /// Purges a stale browser copy, keeping the index in sync.
    fn evict_browser_copy(&mut self, client: ClientId, doc: DocId) {
        if self.browsers[client.index()].remove(doc).is_some() {
            if let Some(idx) = self.index.as_mut() {
                idx.on_evict(client, doc);
            }
        }
    }

    fn account_tier(&mut self, tier: Tier, size: u64) {
        match tier {
            Tier::Memory => {
                self.latency.mem_hit(size);
                self.metrics.mem_hits += 1;
                self.metrics.mem_hit_bytes += size;
            }
            Tier::Disk => self.latency.disk_hit(size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baps_core::{BrowserSizing, Organization, RemoteHitCaching};
    use baps_index::IndexModel;

    fn req(t: u64, c: u32, d: u32, s: u32) -> Request {
        Request {
            time_ms: t,
            client: ClientId(c),
            doc: DocId(d),
            size: s,
        }
    }

    fn system(org: Organization) -> SimSystem {
        let cfg = SystemConfig {
            browser_sizing: BrowserSizing::Fixed(10_000),
            ..SystemConfig::paper_default(org, 100_000)
        };
        SimSystem::new(cfg, 4, 0.0, LatencyParams::paper())
    }

    #[test]
    fn proxy_only_routes_through_proxy() {
        let mut s = system(Organization::ProxyOnly);
        assert_eq!(s.process(&req(0, 0, 1, 500)), HitClass::Miss);
        // A different client hits the shared proxy cache.
        assert_eq!(s.process(&req(1, 1, 1, 500)), HitClass::Proxy);
        // No browser caches exist, so the same client also hits the proxy.
        assert_eq!(s.process(&req(2, 1, 1, 500)), HitClass::Proxy);
    }

    #[test]
    fn local_browser_only_private_caches() {
        let mut s = system(Organization::LocalBrowserOnly);
        assert_eq!(s.process(&req(0, 0, 1, 500)), HitClass::Miss);
        assert_eq!(s.process(&req(1, 0, 1, 500)), HitClass::LocalBrowser);
        // Other clients cannot see client 0's cache.
        assert_eq!(s.process(&req(2, 1, 1, 500)), HitClass::Miss);
    }

    #[test]
    fn global_browsers_share_without_proxy() {
        let mut s = system(Organization::GlobalBrowsersOnly);
        assert_eq!(s.process(&req(0, 0, 1, 500)), HitClass::Miss);
        assert_eq!(s.process(&req(1, 1, 1, 500)), HitClass::RemoteBrowser);
        // Default policy: the requester did not cache the remote copy.
        assert_eq!(s.process(&req(2, 1, 1, 500)), HitClass::RemoteBrowser);
    }

    #[test]
    fn proxy_and_local_browser_no_sharing() {
        let mut s = system(Organization::ProxyAndLocalBrowser);
        assert_eq!(s.process(&req(0, 0, 1, 500)), HitClass::Miss);
        assert_eq!(s.process(&req(1, 0, 1, 500)), HitClass::LocalBrowser);
        assert_eq!(s.process(&req(2, 1, 1, 500)), HitClass::Proxy);
        // Client 1's browser now has a copy from the proxy hit.
        assert_eq!(s.process(&req(3, 1, 1, 500)), HitClass::LocalBrowser);
    }

    #[test]
    fn browsers_aware_finds_docs_evicted_from_proxy() {
        let mut s = system(Organization::BrowsersAware);
        assert_eq!(s.process(&req(0, 0, 1, 500)), HitClass::Miss);
        // Push doc 1 out of the proxy cache (capacity 100_000).
        for i in 0..300 {
            s.process(&req(1 + i, 2, 100 + i as u32, 50_000));
        }
        // Doc 1 is gone from the proxy but alive in client 0's browser.
        assert_eq!(s.process(&req(1000, 1, 1, 500)), HitClass::RemoteBrowser);
    }

    #[test]
    fn size_change_invalidates_caches() {
        let mut s = system(Organization::BrowsersAware);
        s.process(&req(0, 0, 1, 500));
        assert_eq!(s.process(&req(1, 0, 1, 500)), HitClass::LocalBrowser);
        // The document changes size: every cached copy is stale.
        assert_eq!(s.process(&req(2, 0, 1, 600)), HitClass::Miss);
        assert_eq!(s.metrics.size_change_misses, 1);
        // The fresh copy is served locally afterwards.
        assert_eq!(s.process(&req(3, 0, 1, 600)), HitClass::LocalBrowser);
    }

    #[test]
    fn remote_hit_caching_at_requester() {
        let mut cfg = SystemConfig {
            browser_sizing: BrowserSizing::Fixed(10_000),
            ..SystemConfig::paper_default(Organization::BrowsersAware, 1_000)
        };
        cfg.remote_hit_caching = RemoteHitCaching::CacheAtRequester;
        let mut s = SimSystem::new(cfg, 4, 0.0, LatencyParams::paper());
        s.process(&req(0, 0, 1, 900)); // miss; proxy cap 1000
        s.process(&req(1, 2, 2, 900)); // evicts doc 1 from proxy
        assert_eq!(s.process(&req(2, 1, 1, 900)), HitClass::RemoteBrowser);
        // Requester cached the forwarded copy: next access is local.
        assert_eq!(s.process(&req(3, 1, 1, 900)), HitClass::LocalBrowser);
    }

    #[test]
    fn stale_peer_copy_is_wasted_probe() {
        let mut s = system(Organization::BrowsersAware);
        s.process(&req(0, 0, 1, 500));
        // Push doc 1 out of the proxy so only client 0's browser has it.
        for i in 0..300 {
            s.process(&req(1 + i, 2, 100 + i as u32, 50_000));
        }
        // Doc 1 changed size: the peer's copy cannot be used.
        assert_eq!(s.process(&req(1000, 1, 1, 700)), HitClass::Miss);
        assert!(s.metrics.wasted_probes >= 1);
    }

    #[test]
    fn metrics_and_capacity_accounting() {
        let mut s = system(Organization::BrowsersAware);
        for i in 0..50 {
            s.process(&req(i, (i % 4) as u32, (i % 10) as u32, 1_000));
        }
        assert_eq!(s.metrics.requests(), 50);
        assert!(s.proxy_used() <= 100_000);
        assert!(s.browsers_used() <= 4 * s.browser_capacity());
        assert!(s.latency.totals.total_ms() > 0.0);
    }

    #[test]
    fn ttl_revalidates_expired_local_copies() {
        let mut cfg = SystemConfig {
            browser_sizing: BrowserSizing::Fixed(10_000),
            ..SystemConfig::paper_default(Organization::BrowsersAware, 100_000)
        };
        cfg.ttl_ms = Some(1_000);
        let mut s = SimSystem::new(cfg, 2, 0.0, LatencyParams::paper());
        s.process(&req(0, 0, 1, 500));
        // Within TTL: plain local hit, no revalidation.
        assert_eq!(s.process(&req(500, 0, 1, 500)), HitClass::LocalBrowser);
        assert_eq!(s.metrics.revalidations, 0);
        // Past TTL: still a local hit, but a revalidation round-trip is paid.
        assert_eq!(s.process(&req(5_000, 0, 1, 500)), HitClass::LocalBrowser);
        assert_eq!(s.metrics.revalidations, 1);
        assert!(s.latency.totals.revalidation_ms > 0.0);
        // The revalidation refreshed the copy: an immediate re-access is free.
        assert_eq!(s.process(&req(5_100, 0, 1, 500)), HitClass::LocalBrowser);
        assert_eq!(s.metrics.revalidations, 1);
    }

    #[test]
    fn ttl_expired_peer_copies_not_served() {
        let mut cfg = SystemConfig {
            browser_sizing: BrowserSizing::Fixed(10_000),
            ..SystemConfig::paper_default(Organization::BrowsersAware, 1_000)
        };
        cfg.ttl_ms = Some(1_000);
        let mut s = SimSystem::new(cfg, 4, 0.0, LatencyParams::paper());
        s.process(&req(0, 0, 1, 900));
        s.process(&req(1, 2, 2, 900)); // evict doc 1 from the tiny proxy
                                       // Within TTL a peer hit works.
        assert_eq!(s.process(&req(500, 1, 1, 900)), HitClass::RemoteBrowser);
        // Far beyond the TTL the peer copy is expired: fall through to miss.
        assert_eq!(s.process(&req(60_000, 3, 1, 900)), HitClass::Miss);
        assert!(s.metrics.wasted_probes >= 1);
    }

    #[test]
    fn no_ttl_never_revalidates() {
        let mut s = system(Organization::BrowsersAware);
        s.process(&req(0, 0, 1, 500));
        s.process(&req(1_000_000_000, 0, 1, 500));
        assert_eq!(s.metrics.revalidations, 0);
        assert_eq!(s.latency.totals.revalidation_ms, 0.0);
    }

    #[test]
    fn delayed_index_produces_wasted_probes_or_misses() {
        let mut cfg = SystemConfig {
            browser_sizing: BrowserSizing::Fixed(10_000),
            ..SystemConfig::paper_default(Organization::BrowsersAware, 1_000)
        };
        cfg.index_model = IndexModel::Delayed {
            threshold: 0.5,
            interval_ms: None,
        };
        let mut s = SimSystem::new(cfg, 4, 0.0, LatencyParams::paper());
        // Client 0 fetches a doc; with a lazy index the store may not be
        // published yet, so client 1 may miss even though the copy exists.
        s.process(&req(0, 0, 1, 900));
        s.process(&req(1, 2, 2, 900)); // evict doc 1 from tiny proxy
        let class = s.process(&req(2, 1, 1, 900));
        assert!(
            class == HitClass::Miss || class == HitClass::RemoteBrowser,
            "unexpected class {class:?}"
        );
    }
}
