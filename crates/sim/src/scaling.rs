//! Client-scaling experiment support (paper §4.3, Fig. 8).
//!
//! The paper measures how the browsers-aware gain grows with the client
//! population: for each *relative number of clients* (25%, 50%, 75%, 100%)
//! it replays the trace restricted to that subset, keeping the proxy cache
//! size fixed (10% of the full trace's infinite cache), and reports the
//! hit-ratio and byte-hit-ratio *increments* of browsers-aware over
//! proxy-and-local-browser.

use crate::engine::{run, RunResult};
use baps_core::{LatencyParams, Organization, SystemConfig};
use baps_trace::{ClientId, Trace, TraceStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The relative client-population points used in Fig. 8.
pub const CLIENT_SCALE_POINTS: [f64; 4] = [0.25, 0.50, 0.75, 1.00];

/// One point of the scaling experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Fraction of the client population included.
    pub fraction: f64,
    /// Number of clients in this subset.
    pub clients: u32,
    /// Browsers-aware run.
    pub baps: RunResult,
    /// Proxy-and-local-browser baseline run.
    pub baseline: RunResult,
}

impl ScalingPoint {
    /// Hit-ratio increment in percent:
    /// `(HR_baps - HR_baseline) / HR_baseline × 100` (the paper's formula).
    pub fn hit_ratio_increment(&self) -> f64 {
        increment(self.baps.hit_ratio(), self.baseline.hit_ratio())
    }

    /// Byte-hit-ratio increment in percent.
    pub fn byte_hit_ratio_increment(&self) -> f64 {
        increment(self.baps.byte_hit_ratio(), self.baseline.byte_hit_ratio())
    }
}

fn increment(enhanced: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        100.0 * (enhanced - baseline) / baseline
    }
}

/// Deterministically selects `fraction` of a trace's active clients.
///
/// Selection is a seeded shuffle so each larger fraction is a superset of
/// the smaller ones (the paper grows the population, it does not resample).
pub fn select_clients(trace: &Trace, fraction: f64, seed: u64) -> Vec<ClientId> {
    assert!((0.0..=1.0).contains(&fraction));
    let mut clients = trace.active_clients();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..clients.len()).rev() {
        let j = rng.gen_range(0..=i);
        clients.swap(i, j);
    }
    let keep = ((clients.len() as f64 * fraction).round() as usize)
        .max(1)
        .min(clients.len());
    clients.truncate(keep);
    clients
}

/// Runs the Fig. 8 experiment: for each fraction, restrict the trace to a
/// prefix of a seeded client shuffle and compare browsers-aware against
/// proxy-and-local-browser with a fixed proxy size.
///
/// `proxy_capacity` should be 10% of the *full* trace's infinite cache size
/// (the paper fixes it at the 100%-clients point).
pub fn run_scaling(
    trace: &Trace,
    fractions: &[f64],
    proxy_capacity: u64,
    base: &SystemConfig,
    latency: &LatencyParams,
    seed: u64,
) -> Vec<ScalingPoint> {
    fractions
        .iter()
        .map(|&fraction| {
            let subset = select_clients(trace, fraction, seed);
            let restricted = trace.restrict_clients(&subset);
            let stats = TraceStats::compute(&restricted);
            let mk = |org: Organization| {
                let mut cfg = *base;
                cfg.organization = org;
                cfg.proxy_capacity = proxy_capacity;
                cfg
            };
            let baps = run(
                &restricted,
                &stats,
                &mk(Organization::BrowsersAware),
                latency,
            );
            let baseline = run(
                &restricted,
                &stats,
                &mk(Organization::ProxyAndLocalBrowser),
                latency,
            );
            ScalingPoint {
                fraction,
                clients: restricted.n_clients,
                baps,
                baseline,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use baps_trace::SynthConfig;

    fn trace() -> Trace {
        SynthConfig::small().scaled(0.3).generate(8)
    }

    #[test]
    fn selection_is_deterministic_and_nested() {
        let t = trace();
        let q = select_clients(&t, 0.25, 1);
        let h = select_clients(&t, 0.5, 1);
        let f = select_clients(&t, 1.0, 1);
        assert!(q.len() <= h.len() && h.len() <= f.len());
        // Nested prefixes: every quarter client is in the half set.
        for c in &q {
            assert!(h.contains(c));
        }
        for c in &h {
            assert!(f.contains(c));
        }
        assert_eq!(select_clients(&t, 0.5, 1), h);
    }

    #[test]
    fn different_seed_different_subset() {
        let t = trace();
        let a = select_clients(&t, 0.5, 1);
        let b = select_clients(&t, 0.5, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn scaling_points_have_growing_population() {
        let t = trace();
        let stats = TraceStats::compute(&t);
        let base = SystemConfig::paper_default(Organization::BrowsersAware, 0);
        let points = run_scaling(
            &t,
            &CLIENT_SCALE_POINTS,
            stats.infinite_cache_bytes / 10,
            &base,
            &LatencyParams::paper(),
            7,
        );
        assert_eq!(points.len(), 4);
        for w in points.windows(2) {
            assert!(w[0].clients <= w[1].clients);
        }
        // Increments are finite numbers.
        for p in &points {
            assert!(p.hit_ratio_increment().is_finite());
            assert!(p.byte_hit_ratio_increment().is_finite());
            assert!(p.hit_ratio_increment() >= 0.0, "BAPS should not lose");
        }
    }

    #[test]
    fn increment_formula() {
        assert!((increment(12.0, 10.0) - 20.0).abs() < 1e-9);
        assert_eq!(increment(5.0, 0.0), 0.0);
    }
}
