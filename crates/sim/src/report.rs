//! Plain-text table rendering for the experiment binaries.

/// A simple ASCII table builder with right-aligned numeric columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    // First column left-aligned (labels).
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("  {:>width$}", cell, width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders as CSV (for downstream plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as `12.34`.
pub fn pct(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats bytes as a human-readable quantity.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["name", "hr", "bhr"]);
        t.row(vec!["proxy-only", "12.34", "5.60"]);
        t.row(vec!["baps", "45.00", "30.10"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("proxy-only"));
        // Numeric columns right-aligned: both rows end at the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y", "has \"quote\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"has \"\"quote\"\"\""));
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00 MB");
        assert!(human_bytes(5 * 1024 * 1024 * 1024).contains("GB"));
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(12.345), "12.35");
        assert_eq!(pct(0.0), "0.00");
    }
}
