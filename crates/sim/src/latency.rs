//! Service-time accounting and the shared-LAN contention model (paper §5).

use baps_core::LatencyParams;
use serde::{Deserialize, Serialize};

/// Accumulated service-time components over a run, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyTotals {
    /// Memory-tier access time.
    pub mem_ms: f64,
    /// Disk-tier access time.
    pub disk_ms: f64,
    /// LAN wire time for proxy↔client transfers (proxy hits).
    pub proxy_lan_ms: f64,
    /// Remote-browser communication: connection setup + wire time
    /// (the *additional* overhead the paper's §5 quantifies).
    pub remote_comm_ms: f64,
    /// Time spent waiting for the shared LAN bus (contention).
    pub contention_ms: f64,
    /// WAN time for misses (connection + transfer).
    pub wan_ms: f64,
    /// Connection-setup cost of remote probes that failed verification.
    pub wasted_probe_ms: f64,
    /// WAN round-trips spent revalidating expired cached copies.
    pub revalidation_ms: f64,
}

impl LatencyTotals {
    /// Total service time across all components.
    pub fn total_ms(&self) -> f64 {
        self.mem_ms
            + self.disk_ms
            + self.proxy_lan_ms
            + self.remote_comm_ms
            + self.contention_ms
            + self.wan_ms
            + self.wasted_probe_ms
            + self.revalidation_ms
    }

    /// Remote-browser communication (+ contention + wasted probes) as a
    /// percentage of total service time — the paper reports this is < 1.2%.
    pub fn remote_overhead_pct(&self) -> f64 {
        let total = self.total_ms();
        if total == 0.0 {
            0.0
        } else {
            100.0 * (self.remote_comm_ms + self.contention_ms + self.wasted_probe_ms) / total
        }
    }

    /// Contention as a percentage of remote communication time — the paper
    /// reports this is ≤ 0.12% (no bursty remote-hit trains).
    pub fn contention_pct_of_comm(&self) -> f64 {
        if self.remote_comm_ms == 0.0 {
            0.0
        } else {
            100.0 * self.contention_ms / self.remote_comm_ms
        }
    }

    /// Merges another run's totals (for parallel shards).
    pub fn merge(&mut self, other: &LatencyTotals) {
        self.mem_ms += other.mem_ms;
        self.disk_ms += other.disk_ms;
        self.proxy_lan_ms += other.proxy_lan_ms;
        self.remote_comm_ms += other.remote_comm_ms;
        self.contention_ms += other.contention_ms;
        self.wan_ms += other.wan_ms;
        self.wasted_probe_ms += other.wasted_probe_ms;
        self.revalidation_ms += other.revalidation_ms;
    }
}

/// Shared-bus contention: transfers serialise on the LAN segment.
///
/// Each remote-browser transfer at trace time `t` with duration `d` must
/// wait until the bus is free; the wait is the contention. The paper uses
/// the same busy-period argument to show remote hits are not bursty.
#[derive(Debug, Clone, Copy, Default)]
pub struct LanBus {
    busy_until_ms: f64,
}

impl LanBus {
    /// Creates an idle bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts a transfer starting at trace time `now_ms` lasting
    /// `duration_ms`; returns the contention wait in ms.
    pub fn transfer(&mut self, now_ms: f64, duration_ms: f64) -> f64 {
        let start = now_ms.max(self.busy_until_ms);
        let wait = start - now_ms;
        self.busy_until_ms = start + duration_ms;
        wait
    }
}

/// Convenience wrapper bundling parameters, totals and the bus.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Model parameters.
    pub params: LatencyParams,
    /// Accumulated totals.
    pub totals: LatencyTotals,
    bus: LanBus,
}

impl LatencyModel {
    /// Creates a model with the given parameters.
    pub fn new(params: LatencyParams) -> Self {
        LatencyModel {
            params,
            totals: LatencyTotals::default(),
            bus: LanBus::new(),
        }
    }

    /// Accounts a memory-tier hit.
    pub fn mem_hit(&mut self, size: u64) {
        self.totals.mem_ms += self.params.mem_ms(size);
    }

    /// Accounts a disk-tier hit.
    pub fn disk_hit(&mut self, size: u64) {
        self.totals.disk_ms += self.params.disk_ms(size);
    }

    /// Accounts the LAN leg of a proxy hit (persistent connection assumed).
    pub fn proxy_transfer(&mut self, size: u64) {
        self.totals.proxy_lan_ms += self.params.lan_transfer_ms(size);
    }

    /// Accounts a remote-browser transfer at trace time `now_ms`, including
    /// connection setup and bus contention.
    pub fn remote_transfer(&mut self, now_ms: u64, size: u64) {
        let duration = self.params.lan_ms(size);
        let wait = self.bus.transfer(now_ms as f64, duration);
        self.totals.remote_comm_ms += duration;
        self.totals.contention_ms += wait;
    }

    /// Accounts a wasted remote probe (stale index entry / Bloom FP): one
    /// connection setup with no payload.
    pub fn wasted_probe(&mut self) {
        self.totals.wasted_probe_ms += self.params.lan_conn_ms;
    }

    /// Accounts a miss (WAN fetch).
    pub fn miss(&mut self, size: u64) {
        self.totals.wan_ms += self.params.wan_ms(size);
    }

    /// Accounts a TTL revalidation: one WAN round-trip, no body transfer
    /// (the If-Modified-Since / 304 path).
    pub fn revalidation(&mut self) {
        self.totals.revalidation_ms += self.params.wan_conn_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_contention_when_overlapping() {
        let mut bus = LanBus::new();
        assert_eq!(bus.transfer(0.0, 100.0), 0.0);
        // Second transfer arrives mid-flight: waits 50 ms.
        assert_eq!(bus.transfer(50.0, 100.0), 50.0);
        // Third arrives after the bus is idle again.
        assert_eq!(bus.transfer(500.0, 10.0), 0.0);
    }

    #[test]
    fn bus_back_to_back() {
        let mut bus = LanBus::new();
        bus.transfer(0.0, 10.0);
        assert_eq!(bus.transfer(10.0, 10.0), 0.0);
        assert_eq!(bus.transfer(10.0, 10.0), 10.0);
    }

    #[test]
    fn totals_accumulate() {
        let mut m = LatencyModel::new(LatencyParams::paper());
        m.mem_hit(16);
        m.disk_hit(4096);
        m.proxy_transfer(8192);
        m.remote_transfer(0, 8192);
        m.miss(8192);
        m.wasted_probe();
        let t = m.totals;
        assert!(t.mem_ms > 0.0);
        assert!(t.disk_ms >= 10.0);
        assert!(t.proxy_lan_ms > 0.0);
        assert!(t.remote_comm_ms > 100.0);
        assert!(t.wan_ms > 1000.0);
        assert!((t.wasted_probe_ms - 100.0).abs() < 1e-9);
        assert!(t.total_ms() > t.wan_ms);
    }

    #[test]
    fn overhead_percentages() {
        let t = LatencyTotals {
            remote_comm_ms: 10.0,
            contention_ms: 0.01,
            wan_ms: 990.0,
            ..Default::default()
        };
        assert!((t.remote_overhead_pct() - 1.001).abs() < 1e-3);
        assert!((t.contention_pct_of_comm() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn empty_totals_zero_percentages() {
        let t = LatencyTotals::default();
        assert_eq!(t.remote_overhead_pct(), 0.0);
        assert_eq!(t.contention_pct_of_comm(), 0.0);
    }
}
