//! Request-level metrics: hit ratios, byte hit ratios, breakdowns.

use baps_core::HitClass;
use serde::{Deserialize, Serialize};

/// Count/byte pair for one hit class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounter {
    /// Number of requests in this class.
    pub count: u64,
    /// Bytes served in this class.
    pub bytes: u64,
}

/// Aggregated metrics over a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Requests served by the local browser cache.
    pub local_browser: ClassCounter,
    /// Requests served by the proxy cache.
    pub proxy: ClassCounter,
    /// Requests served by remote browser caches.
    pub remote_browser: ClassCounter,
    /// Requests that went to the server.
    pub miss: ClassCounter,
    /// Bytes served from memory tiers (across local/proxy/remote hits).
    pub mem_hit_bytes: u64,
    /// Hits served from memory tiers.
    pub mem_hits: u64,
    /// Misses forced by an observed document-size change.
    pub size_change_misses: u64,
    /// Remote probes that failed verification (stale index / Bloom FP).
    pub wasted_probes: u64,
    /// Cached copies served only after a TTL revalidation round-trip.
    pub revalidations: u64,
}

impl Metrics {
    /// Records one request outcome.
    pub fn record(&mut self, class: HitClass, size: u64) {
        let slot = match class {
            HitClass::LocalBrowser => &mut self.local_browser,
            HitClass::Proxy => &mut self.proxy,
            HitClass::RemoteBrowser => &mut self.remote_browser,
            HitClass::Miss => &mut self.miss,
        };
        slot.count += 1;
        slot.bytes += size;
    }

    /// Total requests.
    pub fn requests(&self) -> u64 {
        self.local_browser.count + self.proxy.count + self.remote_browser.count + self.miss.count
    }

    /// Total bytes requested.
    pub fn total_bytes(&self) -> u64 {
        self.local_browser.bytes + self.proxy.bytes + self.remote_browser.bytes + self.miss.bytes
    }

    /// Hit ratio in percent (paper's definition: hits in browser caches or
    /// the proxy cache — remote-browser hits count as browser-cache hits).
    pub fn hit_ratio(&self) -> f64 {
        percent(
            self.local_browser.count + self.proxy.count + self.remote_browser.count,
            self.requests(),
        )
    }

    /// Byte hit ratio in percent.
    pub fn byte_hit_ratio(&self) -> f64 {
        percent(
            self.local_browser.bytes + self.proxy.bytes + self.remote_browser.bytes,
            self.total_bytes(),
        )
    }

    /// Fraction of all requests served by a given class, percent
    /// (the Fig. 3 breakdown).
    pub fn class_ratio(&self, class: HitClass) -> f64 {
        let c = match class {
            HitClass::LocalBrowser => self.local_browser,
            HitClass::Proxy => self.proxy,
            HitClass::RemoteBrowser => self.remote_browser,
            HitClass::Miss => self.miss,
        };
        percent(c.count, self.requests())
    }

    /// Fraction of all requested bytes served by a given class, percent.
    pub fn class_byte_ratio(&self, class: HitClass) -> f64 {
        let c = match class {
            HitClass::LocalBrowser => self.local_browser,
            HitClass::Proxy => self.proxy,
            HitClass::RemoteBrowser => self.remote_browser,
            HitClass::Miss => self.miss,
        };
        percent(c.bytes, self.total_bytes())
    }

    /// Memory byte hit ratio in percent (paper §4.2): bytes served from RAM
    /// tiers over all requested bytes.
    pub fn mem_byte_hit_ratio(&self) -> f64 {
        percent(self.mem_hit_bytes, self.total_bytes())
    }
}

fn percent(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_add_up() {
        let mut m = Metrics::default();
        m.record(HitClass::LocalBrowser, 100);
        m.record(HitClass::Proxy, 200);
        m.record(HitClass::RemoteBrowser, 300);
        m.record(HitClass::Miss, 400);
        assert_eq!(m.requests(), 4);
        assert_eq!(m.total_bytes(), 1000);
        assert!((m.hit_ratio() - 75.0).abs() < 1e-9);
        assert!((m.byte_hit_ratio() - 60.0).abs() < 1e-9);
        let sum: f64 = [
            HitClass::LocalBrowser,
            HitClass::Proxy,
            HitClass::RemoteBrowser,
            HitClass::Miss,
        ]
        .iter()
        .map(|&c| m.class_ratio(c))
        .sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_zero_ratios() {
        let m = Metrics::default();
        assert_eq!(m.hit_ratio(), 0.0);
        assert_eq!(m.byte_hit_ratio(), 0.0);
        assert_eq!(m.mem_byte_hit_ratio(), 0.0);
    }

    #[test]
    fn mem_byte_hit_ratio() {
        let mut m = Metrics::default();
        m.record(HitClass::Proxy, 100);
        m.record(HitClass::Miss, 100);
        m.mem_hit_bytes = 50;
        assert!((m.mem_byte_hit_ratio() - 25.0).abs() < 1e-9);
    }
}
