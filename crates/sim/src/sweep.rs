//! Parallel parameter sweeps.
//!
//! Each (configuration) replay is single-threaded and deterministic; a sweep
//! fans the independent replays out over `std::thread::scope` workers, so
//! results are bit-identical to running them serially, just wall-clock
//! faster. This is how every multi-point figure in the paper is produced.

use crate::engine::{run, RunResult};
use baps_core::{LatencyParams, SystemConfig};
use baps_trace::{Trace, TraceStats};

/// Runs every configuration against the trace, in parallel, preserving
/// input order in the output.
pub fn run_sweep(
    trace: &Trace,
    stats: &TraceStats,
    configs: &[SystemConfig],
    latency: &LatencyParams,
) -> Vec<RunResult> {
    let threads = available_threads().min(configs.len().max(1));
    if threads <= 1 || configs.len() <= 1 {
        return configs
            .iter()
            .map(|cfg| run(trace, stats, cfg, latency))
            .collect();
    }

    // Work queue: an atomic cursor hands out configuration indices; each
    // worker sends (index, result) back over a channel and the coordinator
    // reassembles input order.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, RunResult)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let result = run(trace, stats, &configs[i], latency);
                tx.send((i, result)).expect("coordinator alive");
            });
        }
    });
    drop(tx);
    let mut results: Vec<Option<RunResult>> = vec![None; configs.len()];
    for (i, r) in rx {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every config produced a result"))
        .collect()
}

/// Number of worker threads to use (leaves a core for the coordinator).
fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

/// The proxy-cache scale points used throughout the paper's figures,
/// as fractions of the infinite cache size.
pub const PROXY_SCALE_POINTS: [f64; 5] = [0.005, 0.01, 0.05, 0.10, 0.20];

/// Builds one configuration per proxy scale point for a fixed organization.
pub fn scale_configs(
    base: &SystemConfig,
    infinite_cache_bytes: u64,
    points: &[f64],
) -> Vec<SystemConfig> {
    points
        .iter()
        .map(|&frac| {
            let mut cfg = *base;
            cfg.proxy_capacity = ((infinite_cache_bytes as f64 * frac).round() as u64).max(1);
            cfg
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_simple;
    use baps_core::Organization;
    use baps_trace::SynthConfig;

    #[test]
    fn sweep_matches_serial() {
        let trace = SynthConfig::small().scaled(0.2).generate(4);
        let stats = TraceStats::compute(&trace);
        let configs: Vec<SystemConfig> = Organization::all()
            .iter()
            .map(|&org| SystemConfig::paper_default(org, 1 << 20))
            .collect();
        let parallel = run_sweep(&trace, &stats, &configs, &LatencyParams::paper());
        assert_eq!(parallel.len(), configs.len());
        for (cfg, result) in configs.iter().zip(&parallel) {
            let serial = run_simple(&trace, cfg);
            assert_eq!(
                serial.metrics,
                result.metrics,
                "{}",
                cfg.organization.name()
            );
        }
    }

    #[test]
    fn sweep_preserves_order() {
        let trace = SynthConfig::small().scaled(0.1).generate(4);
        let stats = TraceStats::compute(&trace);
        let base = SystemConfig::paper_default(Organization::BrowsersAware, 0);
        let configs = scale_configs(&base, stats.infinite_cache_bytes, &PROXY_SCALE_POINTS);
        let results = run_sweep(&trace, &stats, &configs, &LatencyParams::paper());
        for (cfg, r) in configs.iter().zip(&results) {
            assert_eq!(cfg.proxy_capacity, r.config.proxy_capacity);
        }
        // Larger proxies never hurt the hit ratio (LRU inclusion on a
        // fixed stream — monotone in practice for these workloads).
        assert!(results.last().unwrap().hit_ratio() >= results[0].hit_ratio());
    }

    #[test]
    fn scale_configs_fractions() {
        let base = SystemConfig::paper_default(Organization::ProxyOnly, 0);
        let configs = scale_configs(&base, 1_000_000, &[0.01, 0.10]);
        assert_eq!(configs[0].proxy_capacity, 10_000);
        assert_eq!(configs[1].proxy_capacity, 100_000);
    }

    #[test]
    fn empty_sweep_is_empty() {
        let trace = SynthConfig::small().scaled(0.05).generate(4);
        let stats = TraceStats::compute(&trace);
        let results = run_sweep(&trace, &stats, &[], &LatencyParams::paper());
        assert!(results.is_empty());
    }
}
