//! Parallel parameter sweeps.
//!
//! Each (configuration) replay is single-threaded and deterministic; a sweep
//! fans the independent replays out over `std::thread::scope` workers, so
//! results are bit-identical to running them serially, just wall-clock
//! faster. This is how every multi-point figure in the paper is produced.

use crate::engine::{run, RunResult};
use crate::latency::LatencyTotals;
use baps_core::{LatencyParams, SystemConfig};
use baps_trace::{Trace, TraceStats};

/// Runs every configuration against the trace, in parallel, preserving
/// input order in the output.
pub fn run_sweep(
    trace: &Trace,
    stats: &TraceStats,
    configs: &[SystemConfig],
    latency: &LatencyParams,
) -> Vec<RunResult> {
    let threads = available_threads().min(configs.len().max(1));
    if threads <= 1 || configs.len() <= 1 {
        return configs
            .iter()
            .map(|cfg| run(trace, stats, cfg, latency))
            .collect();
    }

    // Work queue: an atomic cursor hands out configuration indices; each
    // worker sends (index, result) back over a channel and the coordinator
    // reassembles input order.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, RunResult)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let result = run(trace, stats, &configs[i], latency);
                tx.send((i, result)).expect("coordinator alive");
            });
        }
    });
    drop(tx);
    let mut results: Vec<Option<RunResult>> = vec![None; configs.len()];
    for (i, r) in rx {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every config produced a result"))
        .collect()
}

/// One independent unit of matrix work: a trace (with precomputed stats)
/// and the configurations to replay against it.
///
/// Borrowed rather than owned so callers can share one generated trace
/// across several config lists without cloning multi-million-request
/// vectors.
#[derive(Clone, Copy)]
pub struct MatrixGroup<'a> {
    /// The request trace to replay.
    pub trace: &'a Trace,
    /// Its precomputed statistics.
    pub stats: &'a TraceStats,
    /// Configurations to run against this trace.
    pub configs: &'a [SystemConfig],
    /// Latency model parameters.
    pub latency: &'a LatencyParams,
}

/// Runs every (group, config) pair of a profile×config matrix across one
/// shared scoped worker pool.
///
/// Unlike calling [`run_sweep`] per group — which leaves workers idle at
/// each group boundary — all pairs feed a single work queue, so a slow
/// group's tail overlaps the next group's work. Each replay is
/// independent and deterministic, and results are reassembled in input
/// order, so the output (and the merged grand total, accumulated via
/// [`LatencyTotals::merge`] in input order) is byte-identical to running
/// the groups sequentially.
pub fn run_matrix(groups: &[MatrixGroup<'_>]) -> (Vec<Vec<RunResult>>, LatencyTotals) {
    let n_jobs: usize = groups.iter().map(|g| g.configs.len()).sum();
    // Flat job list: (group index, config index), in input order.
    let jobs: Vec<(usize, usize)> = groups
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| (0..g.configs.len()).map(move |ci| (gi, ci)))
        .collect();

    let threads = available_threads().min(n_jobs.max(1));
    let mut results: Vec<Vec<Option<RunResult>>> =
        groups.iter().map(|g| vec![None; g.configs.len()]).collect();
    if threads <= 1 || n_jobs <= 1 {
        for &(gi, ci) in &jobs {
            let g = &groups[gi];
            results[gi][ci] = Some(run(g.trace, g.stats, &g.configs[ci], g.latency));
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let (tx, rx) = std::sync::mpsc::channel::<(usize, usize, RunResult)>();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let (next, jobs) = (&next, &jobs);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&(gi, ci)) = jobs.get(i) else { break };
                    let g = &groups[gi];
                    let result = run(g.trace, g.stats, &g.configs[ci], g.latency);
                    tx.send((gi, ci, result)).expect("coordinator alive");
                });
            }
        });
        drop(tx);
        for (gi, ci, r) in rx {
            results[gi][ci] = Some(r);
        }
    }

    let results: Vec<Vec<RunResult>> = results
        .into_iter()
        .map(|group| {
            group
                .into_iter()
                .map(|r| r.expect("every job produced a result"))
                .collect()
        })
        .collect();
    // Grand total merged in input order: float addition is order-sensitive,
    // so a fixed merge order keeps the total identical run to run.
    let mut grand = LatencyTotals::default();
    for group in &results {
        for r in group {
            grand.merge(&r.latency);
        }
    }
    (results, grand)
}

/// Number of worker threads to use (leaves a core for the coordinator).
fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

/// The proxy-cache scale points used throughout the paper's figures,
/// as fractions of the infinite cache size.
pub const PROXY_SCALE_POINTS: [f64; 5] = [0.005, 0.01, 0.05, 0.10, 0.20];

/// Builds one configuration per proxy scale point for a fixed organization.
pub fn scale_configs(
    base: &SystemConfig,
    infinite_cache_bytes: u64,
    points: &[f64],
) -> Vec<SystemConfig> {
    points
        .iter()
        .map(|&frac| {
            let mut cfg = *base;
            cfg.proxy_capacity = ((infinite_cache_bytes as f64 * frac).round() as u64).max(1);
            cfg
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_simple;
    use baps_core::Organization;
    use baps_trace::SynthConfig;

    #[test]
    fn sweep_matches_serial() {
        let trace = SynthConfig::small().scaled(0.2).generate(4);
        let stats = TraceStats::compute(&trace);
        let configs: Vec<SystemConfig> = Organization::all()
            .iter()
            .map(|&org| SystemConfig::paper_default(org, 1 << 20))
            .collect();
        let parallel = run_sweep(&trace, &stats, &configs, &LatencyParams::paper());
        assert_eq!(parallel.len(), configs.len());
        for (cfg, result) in configs.iter().zip(&parallel) {
            let serial = run_simple(&trace, cfg);
            assert_eq!(
                serial.metrics,
                result.metrics,
                "{}",
                cfg.organization.name()
            );
        }
    }

    #[test]
    fn sweep_preserves_order() {
        let trace = SynthConfig::small().scaled(0.1).generate(4);
        let stats = TraceStats::compute(&trace);
        let base = SystemConfig::paper_default(Organization::BrowsersAware, 0);
        let configs = scale_configs(&base, stats.infinite_cache_bytes, &PROXY_SCALE_POINTS);
        let results = run_sweep(&trace, &stats, &configs, &LatencyParams::paper());
        for (cfg, r) in configs.iter().zip(&results) {
            assert_eq!(cfg.proxy_capacity, r.config.proxy_capacity);
        }
        // Larger proxies never hurt the hit ratio (LRU inclusion on a
        // fixed stream — monotone in practice for these workloads).
        assert!(results.last().unwrap().hit_ratio() >= results[0].hit_ratio());
    }

    #[test]
    fn scale_configs_fractions() {
        let base = SystemConfig::paper_default(Organization::ProxyOnly, 0);
        let configs = scale_configs(&base, 1_000_000, &[0.01, 0.10]);
        assert_eq!(configs[0].proxy_capacity, 10_000);
        assert_eq!(configs[1].proxy_capacity, 100_000);
    }

    #[test]
    fn matrix_matches_sequential_exactly() {
        // Two "profiles" (different seeds) × different config lists: the
        // pooled matrix must reproduce the sequential per-group sweeps
        // byte for byte, and the grand total must equal merging every
        // run's totals in input order.
        let trace_a = SynthConfig::small().scaled(0.1).generate(4);
        let trace_b = SynthConfig::small().scaled(0.15).generate(9);
        let stats_a = TraceStats::compute(&trace_a);
        let stats_b = TraceStats::compute(&trace_b);
        let latency = LatencyParams::paper();
        let configs_a: Vec<SystemConfig> = Organization::all()
            .iter()
            .map(|&org| SystemConfig::paper_default(org, 1 << 19))
            .collect();
        let base = SystemConfig::paper_default(Organization::BrowsersAware, 0);
        let configs_b = scale_configs(&base, stats_b.infinite_cache_bytes, &[0.01, 0.10]);

        let groups = [
            MatrixGroup {
                trace: &trace_a,
                stats: &stats_a,
                configs: &configs_a,
                latency: &latency,
            },
            MatrixGroup {
                trace: &trace_b,
                stats: &stats_b,
                configs: &configs_b,
                latency: &latency,
            },
        ];
        let (matrix, grand) = run_matrix(&groups);

        assert_eq!(matrix.len(), 2);
        let mut expected_grand = LatencyTotals::default();
        for (group, rows) in groups.iter().zip(&matrix) {
            assert_eq!(rows.len(), group.configs.len());
            for (cfg, r) in group.configs.iter().zip(rows) {
                let serial = run(group.trace, group.stats, cfg, group.latency);
                assert_eq!(serial.metrics, r.metrics);
                assert_eq!(serial.latency, r.latency);
                expected_grand.merge(&r.latency);
            }
        }
        assert_eq!(grand, expected_grand);
        assert!(grand.total_ms() > 0.0);
    }

    #[test]
    fn empty_matrix_is_empty() {
        let (matrix, grand) = run_matrix(&[]);
        assert!(matrix.is_empty());
        assert_eq!(grand, LatencyTotals::default());
    }

    #[test]
    fn empty_sweep_is_empty() {
        let trace = SynthConfig::small().scaled(0.05).generate(4);
        let stats = TraceStats::compute(&trace);
        let results = run_sweep(&trace, &stats, &[], &LatencyParams::paper());
        assert!(results.is_empty());
    }
}
