//! Two-level proxy hierarchies with browsers-aware groups.
//!
//! The paper routes proxy misses to "an upper level proxy, or the web
//! server"; its follow-up work (Xiao, Zhang, Xu, TKDE 2004) develops this
//! into a *hybrid* P2P caching system: clients are partitioned into groups,
//! each group has a first-level proxy, the groups share a parent proxy, and
//! browsers-awareness can be deployed per group or across all groups. This
//! module implements that extension on top of the same cache/index
//! substrates, with the request path
//!
//! ```text
//! browser → L1 proxy (group) → browser index → L2 parent proxy → origin
//! ```

use crate::latency::LatencyModel;
use baps_cache::{Tier, TieredLru};
use baps_core::LatencyParams;
use baps_index::ExactIndex;
use baps_trace::{ClientId, DocId, Request, Trace, TraceStats};
use serde::{Deserialize, Serialize};

/// Where the browser index lives (and how far sharing reaches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SharingMode {
    /// Plain hierarchy: no browser sharing at all.
    NoSharing,
    /// One browsers-aware index per group: peers within the same first-level
    /// proxy's client population can serve each other.
    GroupBrowsersAware,
    /// A global index spanning all groups (served via the parent proxy's
    /// control plane; transfers still cross the inter-group network).
    GlobalBrowsersAware,
}

impl SharingMode {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SharingMode::NoSharing => "hierarchy-only",
            SharingMode::GroupBrowsersAware => "group-browsers-aware",
            SharingMode::GlobalBrowsersAware => "global-browsers-aware",
        }
    }
}

/// Configuration of the hierarchical system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Number of client groups / first-level proxies.
    pub n_groups: u32,
    /// Capacity of each first-level proxy, bytes.
    pub l1_capacity: u64,
    /// Capacity of the shared parent proxy, bytes.
    pub l2_capacity: u64,
    /// Per-browser capacity, bytes.
    pub browser_capacity: u64,
    /// Sharing mode.
    pub mode: SharingMode,
    /// Memory-tier fraction of every cache.
    pub mem_fraction: f64,
}

impl HierarchyConfig {
    /// A paper-flavoured default: capacities derived from the trace's
    /// infinite cache size (L1s split 10% among groups, L2 another 10%,
    /// browsers at the per-group minimum).
    pub fn from_stats(stats: &TraceStats, n_groups: u32, mode: SharingMode) -> HierarchyConfig {
        let tenth = (stats.infinite_cache_bytes / 10).max(1);
        let clients_per_group = (stats.clients as u32 / n_groups.max(1)).max(1);
        HierarchyConfig {
            n_groups: n_groups.max(1),
            l1_capacity: (tenth / n_groups.max(1) as u64).max(1),
            l2_capacity: tenth,
            browser_capacity: (tenth / n_groups.max(1) as u64 / clients_per_group as u64).max(1),
            mode,
            mem_fraction: 0.1,
        }
    }
}

/// Where a hierarchical request was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HierHit {
    /// The requester's own browser.
    LocalBrowser,
    /// The group's first-level proxy.
    L1Proxy,
    /// A peer browser (within the group or global, per mode).
    RemoteBrowser,
    /// The shared parent proxy.
    L2Proxy,
    /// Fetched from the origin.
    Miss,
}

/// Counters per hierarchical hit class.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HierMetrics {
    counts: [u64; 5],
    bytes: [u64; 5],
}

impl HierMetrics {
    fn slot(class: HierHit) -> usize {
        match class {
            HierHit::LocalBrowser => 0,
            HierHit::L1Proxy => 1,
            HierHit::RemoteBrowser => 2,
            HierHit::L2Proxy => 3,
            HierHit::Miss => 4,
        }
    }

    fn record(&mut self, class: HierHit, size: u64) {
        self.counts[Self::slot(class)] += 1;
        self.bytes[Self::slot(class)] += size;
    }

    /// Requests in a class.
    pub fn count(&self, class: HierHit) -> u64 {
        self.counts[Self::slot(class)]
    }

    /// Total requests.
    pub fn requests(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Hit ratio percent (everything but misses).
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.requests() - self.count(HierHit::Miss);
        percent(hits, self.requests())
    }

    /// Byte hit ratio percent.
    pub fn byte_hit_ratio(&self) -> f64 {
        let hit_bytes = self.total_bytes() - self.bytes[Self::slot(HierHit::Miss)];
        percent(hit_bytes, self.total_bytes())
    }

    /// Class share of all requests, percent.
    pub fn class_ratio(&self, class: HierHit) -> f64 {
        percent(self.count(class), self.requests())
    }
}

fn percent(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// The hierarchical simulated system.
#[derive(Debug)]
pub struct HierSystem {
    cfg: HierarchyConfig,
    browsers: Vec<TieredLru<DocId>>,
    group_of: Vec<u32>,
    l1: Vec<TieredLru<DocId>>,
    l2: TieredLru<DocId>,
    /// One index per group, or a single global one at slot 0.
    indexes: Vec<ExactIndex>,
    /// Accumulated metrics.
    pub metrics: HierMetrics,
    /// Latency accounting (remote transfers + misses only; intra-hierarchy
    /// wire time is charged as proxy transfers).
    pub latency: LatencyModel,
}

impl HierSystem {
    /// Builds the system for `n_clients` clients assigned to groups
    /// round-robin.
    pub fn new(cfg: HierarchyConfig, n_clients: u32, latency: LatencyParams) -> HierSystem {
        assert!(cfg.n_groups >= 1);
        assert!((0.0..=1.0).contains(&cfg.mem_fraction));
        let indexes = match cfg.mode {
            SharingMode::NoSharing => Vec::new(),
            SharingMode::GroupBrowsersAware => {
                (0..cfg.n_groups).map(|_| ExactIndex::new()).collect()
            }
            SharingMode::GlobalBrowsersAware => vec![ExactIndex::new()],
        };
        HierSystem {
            browsers: (0..n_clients)
                .map(|_| TieredLru::with_mem_fraction(cfg.browser_capacity, cfg.mem_fraction))
                .collect(),
            group_of: (0..n_clients).map(|c| c % cfg.n_groups).collect(),
            l1: (0..cfg.n_groups)
                .map(|_| TieredLru::with_mem_fraction(cfg.l1_capacity, cfg.mem_fraction))
                .collect(),
            l2: TieredLru::with_mem_fraction(cfg.l2_capacity, cfg.mem_fraction),
            indexes,
            metrics: HierMetrics::default(),
            latency: LatencyModel::new(latency),
            cfg,
        }
    }

    /// The group a client belongs to.
    pub fn group_of(&self, client: ClientId) -> u32 {
        self.group_of[client.index()]
    }

    fn index_slot(&self, group: u32) -> Option<usize> {
        match self.cfg.mode {
            SharingMode::NoSharing => None,
            SharingMode::GroupBrowsersAware => Some(group as usize),
            SharingMode::GlobalBrowsersAware => Some(0),
        }
    }

    fn index_store(&mut self, client: ClientId, doc: DocId) {
        if let Some(slot) = self.index_slot(self.group_of(client)) {
            self.indexes[slot].on_store(client, doc);
        }
    }

    fn index_evict(&mut self, client: ClientId, doc: DocId) {
        if let Some(slot) = self.index_slot(self.group_of(client)) {
            self.indexes[slot].on_evict(client, doc);
        }
    }

    fn store_browser(&mut self, client: ClientId, doc: DocId, size: u64) {
        let had = self.browsers[client.index()].size_of(&doc).is_some();
        let out = self.browsers[client.index()].insert(doc, size);
        for (victim, _) in &out.evicted {
            self.index_evict(client, *victim);
        }
        if out.admitted {
            self.index_store(client, doc);
        } else if had {
            self.index_evict(client, doc);
        }
    }

    fn account_tier(&mut self, tier: Tier, size: u64) {
        match tier {
            Tier::Memory => self.latency.mem_hit(size),
            Tier::Disk => self.latency.disk_hit(size),
        }
    }

    /// Processes one request.
    pub fn process(&mut self, req: &Request) -> HierHit {
        let Request {
            time_ms,
            client,
            doc,
            size,
        } = *req;
        let size = size as u64;
        let group = self.group_of(client) as usize;

        // 1. Local browser.
        match self.browsers[client.index()].size_of(&doc) {
            Some(cached) if cached == size => {
                let (_, tier) = self.browsers[client.index()].touch(&doc).expect("present");
                self.account_tier(tier, size);
                self.metrics.record(HierHit::LocalBrowser, size);
                return HierHit::LocalBrowser;
            }
            Some(_) => {
                self.browsers[client.index()].remove(doc);
                self.index_evict(client, doc);
            }
            None => {}
        }

        // 2. First-level (group) proxy.
        match self.l1[group].size_of(&doc) {
            Some(cached) if cached == size => {
                let (_, tier) = self.l1[group].touch(&doc).expect("present");
                self.account_tier(tier, size);
                self.latency.proxy_transfer(size);
                self.store_browser(client, doc, size);
                self.metrics.record(HierHit::L1Proxy, size);
                return HierHit::L1Proxy;
            }
            Some(_) => {
                self.l1[group].remove(doc);
            }
            None => {}
        }

        // 3. Browser index (group or global).
        if let Some(slot) = self.index_slot(group as u32) {
            let candidates = self.indexes[slot].lookup_all(doc, client);
            for peer in candidates.into_iter().take(4) {
                match self.browsers[peer.index()].size_of(&doc) {
                    Some(cached) if cached == size => {
                        let tier = self.browsers[peer.index()].tier_of(&doc).expect("present");
                        self.account_tier(tier, size);
                        self.latency.remote_transfer(time_ms, size);
                        self.metrics.record(HierHit::RemoteBrowser, size);
                        return HierHit::RemoteBrowser;
                    }
                    _ => self.latency.wasted_probe(),
                }
            }
        }

        // 4. Parent proxy.
        match self.l2.size_of(&doc) {
            Some(cached) if cached == size => {
                let (_, tier) = self.l2.touch(&doc).expect("present");
                self.account_tier(tier, size);
                self.latency.proxy_transfer(size);
                self.l1[group].insert(doc, size);
                self.store_browser(client, doc, size);
                self.metrics.record(HierHit::L2Proxy, size);
                return HierHit::L2Proxy;
            }
            Some(_) => {
                self.l2.remove(doc);
            }
            None => {}
        }

        // 5. Origin.
        self.latency.miss(size);
        self.l2.insert(doc, size);
        self.l1[group].insert(doc, size);
        self.store_browser(client, doc, size);
        self.metrics.record(HierHit::Miss, size);
        HierHit::Miss
    }
}

/// Replays a trace through a hierarchical system.
pub fn run_hierarchy(trace: &Trace, cfg: &HierarchyConfig, latency: &LatencyParams) -> HierSystem {
    let mut system = HierSystem::new(*cfg, trace.n_clients, *latency);
    for req in trace.iter() {
        system.process(req);
    }
    system
}

#[cfg(test)]
mod tests {
    use super::*;
    use baps_trace::SynthConfig;

    fn req(t: u64, c: u32, d: u32, s: u32) -> Request {
        Request {
            time_ms: t,
            client: ClientId(c),
            doc: DocId(d),
            size: s,
        }
    }

    fn cfg(mode: SharingMode) -> HierarchyConfig {
        HierarchyConfig {
            n_groups: 2,
            l1_capacity: 1_000,
            l2_capacity: 100_000,
            browser_capacity: 10_000,
            mode,
            mem_fraction: 0.1,
        }
    }

    #[test]
    fn groups_assigned_round_robin() {
        let s = HierSystem::new(cfg(SharingMode::NoSharing), 5, LatencyParams::paper());
        assert_eq!(s.group_of(ClientId(0)), 0);
        assert_eq!(s.group_of(ClientId(1)), 1);
        assert_eq!(s.group_of(ClientId(2)), 0);
    }

    #[test]
    fn l2_serves_cross_group_misses() {
        let mut s = HierSystem::new(cfg(SharingMode::NoSharing), 4, LatencyParams::paper());
        // Client 0 (group 0) pulls the doc through both proxy levels.
        assert_eq!(s.process(&req(0, 0, 1, 500)), HierHit::Miss);
        // Client 1 is in group 1: its L1 misses, the parent hits.
        assert_eq!(s.process(&req(1, 1, 1, 500)), HierHit::L2Proxy);
        // Client 3 shares group 1: L1 now has it.
        assert_eq!(s.process(&req(2, 3, 1, 500)), HierHit::L1Proxy);
        // Client 1 again: local browser.
        assert_eq!(s.process(&req(3, 1, 1, 500)), HierHit::LocalBrowser);
    }

    #[test]
    fn group_sharing_stays_in_group() {
        let mut s = HierSystem::new(
            cfg(SharingMode::GroupBrowsersAware),
            4,
            LatencyParams::paper(),
        );
        s.process(&req(0, 0, 1, 900)); // group 0 browser holds doc 1
                                       // Evict from both proxy levels by churning bigger docs.
        for i in 0..200u32 {
            s.process(&req(1 + i as u64, 2, 100 + i, 900));
        }
        assert!(s.l2.size_of(&DocId(1)).is_none() || s.l1[0].size_of(&DocId(1)).is_none());
        // Same-group client 2 can hit client 0's browser...
        let class_same_group = s.process(&req(500, 2, 1, 900));
        // ...but only if both proxies already lost it.
        if s.l1[0].size_of(&DocId(1)).is_none() && s.l2.size_of(&DocId(1)).is_none() {
            assert_eq!(class_same_group, HierHit::RemoteBrowser);
        }
        // A different-group client can never be served by group 0's index.
        let mut s2 = HierSystem::new(
            cfg(SharingMode::GroupBrowsersAware),
            4,
            LatencyParams::paper(),
        );
        s2.process(&req(0, 0, 1, 900));
        for i in 0..200u32 {
            s2.process(&req(1 + i as u64, 2, 100 + i, 900));
            s2.process(&req(1 + i as u64, 3, 300_000 + i, 900));
        }
        let class_cross = s2.process(&req(900, 1, 1, 900));
        assert_ne!(class_cross, HierHit::RemoteBrowser);
    }

    #[test]
    fn global_sharing_crosses_groups() {
        let mut s = HierSystem::new(
            cfg(SharingMode::GlobalBrowsersAware),
            4,
            LatencyParams::paper(),
        );
        s.process(&req(0, 0, 1, 900));
        // Churn both proxy levels out of doc 1.
        for i in 0..200u32 {
            s.process(&req(1 + i as u64, 2, 100 + i, 900));
            s.process(&req(1 + i as u64, 3, 300_000 + i, 900));
        }
        assert!(s.l2.size_of(&DocId(1)).is_none());
        // Client 1 is in the *other* group but still finds the peer copy.
        assert_eq!(s.process(&req(900, 1, 1, 900)), HierHit::RemoteBrowser);
    }

    #[test]
    fn metrics_account_every_request() {
        let trace = SynthConfig::small().scaled(0.2).generate(12);
        let stats = TraceStats::compute(&trace);
        for mode in [
            SharingMode::NoSharing,
            SharingMode::GroupBrowsersAware,
            SharingMode::GlobalBrowsersAware,
        ] {
            let cfg = HierarchyConfig::from_stats(&stats, 4, mode);
            let s = run_hierarchy(&trace, &cfg, &LatencyParams::paper());
            assert_eq!(s.metrics.requests(), trace.len() as u64, "{}", mode.label());
            assert_eq!(s.metrics.total_bytes(), trace.total_bytes());
            assert!(s.metrics.hit_ratio() <= stats.max_hit_ratio + 1e-9);
            let class_sum: f64 = [
                HierHit::LocalBrowser,
                HierHit::L1Proxy,
                HierHit::RemoteBrowser,
                HierHit::L2Proxy,
                HierHit::Miss,
            ]
            .iter()
            .map(|&c| s.metrics.class_ratio(c))
            .sum();
            assert!((class_sum - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sharing_never_hurts_hit_ratio() {
        let trace = SynthConfig::small().scaled(0.2).generate(13);
        let stats = TraceStats::compute(&trace);
        let base = run_hierarchy(
            &trace,
            &HierarchyConfig::from_stats(&stats, 4, SharingMode::NoSharing),
            &LatencyParams::paper(),
        );
        let group = run_hierarchy(
            &trace,
            &HierarchyConfig::from_stats(&stats, 4, SharingMode::GroupBrowsersAware),
            &LatencyParams::paper(),
        );
        let global = run_hierarchy(
            &trace,
            &HierarchyConfig::from_stats(&stats, 4, SharingMode::GlobalBrowsersAware),
            &LatencyParams::paper(),
        );
        assert!(group.metrics.hit_ratio() >= base.metrics.hit_ratio());
        assert!(global.metrics.hit_ratio() >= group.metrics.hit_ratio());
        assert!(
            global.metrics.count(HierHit::RemoteBrowser)
                >= group.metrics.count(HierHit::RemoteBrowser)
        );
    }

    #[test]
    fn no_sharing_has_no_remote_hits() {
        let trace = SynthConfig::small().scaled(0.1).generate(14);
        let stats = TraceStats::compute(&trace);
        let s = run_hierarchy(
            &trace,
            &HierarchyConfig::from_stats(&stats, 2, SharingMode::NoSharing),
            &LatencyParams::paper(),
        );
        assert_eq!(s.metrics.count(HierHit::RemoteBrowser), 0);
    }
}
