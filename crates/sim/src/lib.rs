//! # baps-sim — trace-driven simulator for the Browsers-Aware Proxy Server
//!
//! Replays Web traces through the five caching organizations of the paper
//! (§3.2) and produces the metrics behind every table and figure:
//!
//! * [`SimSystem`] — browser caches + proxy cache + browser index with the
//!   per-organization routing logic;
//! * [`run`] / [`run_simple`] — single replays producing a [`RunResult`];
//! * [`run_sweep`] — parallel parameter sweeps (`std::thread::scope`
//!   workers; results bit-identical to serial execution);
//! * [`run_scaling`] — the Fig. 8 client-population scaling experiment;
//! * [`LatencyModel`] / [`LatencyTotals`] — the §4.2/§5 analytic service
//!   time model with shared-LAN contention;
//! * [`Table`] — plain-text rendering for the experiment binaries.

#![warn(missing_docs)]

pub mod engine;
pub mod hierarchy;
pub mod histo;
pub mod latency;
pub mod metrics;
pub mod report;
pub mod scaling;
pub mod sweep;
pub mod system;

pub use engine::{run, run_simple, run_with_options, ClassHistograms, RunOptions, RunResult};
pub use hierarchy::{
    run_hierarchy, HierHit, HierMetrics, HierSystem, HierarchyConfig, SharingMode,
};
pub use histo::LatencyHistogram;
pub use latency::{LanBus, LatencyModel, LatencyTotals};
pub use metrics::{ClassCounter, Metrics};
pub use report::{human_bytes, pct, Table};
pub use scaling::{run_scaling, select_clients, ScalingPoint, CLIENT_SCALE_POINTS};
pub use sweep::{run_matrix, run_sweep, scale_configs, MatrixGroup, PROXY_SCALE_POINTS};
pub use system::SimSystem;
