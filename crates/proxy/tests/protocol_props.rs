//! Property-based tests of the wire protocol: round-trips, pipelining, and
//! robustness against arbitrary (malformed) byte streams.

use baps_proxy::protocol::MAX_BODY;
use baps_proxy::{encode_message, read_message, write_message, Message};
use proptest::prelude::*;
use std::io::BufReader;

/// Header names: token characters only (no colon / control bytes).
fn header_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,20}"
}

/// Header values: printable, no CR/LF, trimmed equals itself.
fn header_value() -> impl Strategy<Value = String> {
    "[!-~][ -~]{0,40}"
        .prop_map(|s| s.trim().to_owned())
        .prop_filter("non-empty", |s| !s.is_empty())
}

fn message() -> impl Strategy<Value = Message> {
    (
        "[A-Z]{3,8} [!-~]{1,40} BAPS/1\\.0",
        proptest::collection::vec((header_name(), header_value()), 0..8),
        proptest::collection::vec(any::<u8>(), 0..2048),
    )
        .prop_map(|(start, headers, body)| {
            let mut msg = Message::new(start);
            for (name, value) in headers {
                // Content-Length is managed by the writer.
                if !name.eq_ignore_ascii_case("content-length") {
                    msg = msg.header(name, value);
                }
            }
            msg.with_body(body)
        })
}

proptest! {
    /// Any well-formed message survives a write/read round-trip.
    #[test]
    fn message_roundtrip(msg in message()) {
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        let back = read_message(&mut BufReader::new(buf.as_slice()))
            .unwrap()
            .expect("one message");
        prop_assert_eq!(&back.start, &msg.start);
        prop_assert_eq!(&back.body, &msg.body);
        for (name, value) in &msg.headers {
            prop_assert_eq!(back.get(name), Some(value.as_str()), "header {}", name);
        }
    }

    /// Pipelined messages are read back in order, then EOF.
    #[test]
    fn pipelining(msgs in proptest::collection::vec(message(), 0..5)) {
        let mut buf = Vec::new();
        for m in &msgs {
            write_message(&mut buf, m).unwrap();
        }
        let mut reader = BufReader::new(buf.as_slice());
        for m in &msgs {
            let back = read_message(&mut reader).unwrap().expect("message");
            prop_assert_eq!(&back.start, &m.start);
            prop_assert_eq!(&back.body, &m.body);
        }
        prop_assert!(read_message(&mut reader).unwrap().is_none());
    }

    /// Arbitrary garbage never panics the reader: it either parses or
    /// errors (no hangs either — the input is finite).
    #[test]
    fn reader_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut reader = BufReader::new(bytes.as_slice());
        // Drain up to a few messages; all outcomes are acceptable except a
        // panic.
        for _ in 0..4 {
            match read_message(&mut reader) {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// A truncated valid stream errors rather than fabricating a message.
    #[test]
    fn truncation_detected(msg in message(), cut in 1usize..64) {
        prop_assume!(!msg.body.is_empty());
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        let cut = cut.min(msg.body.len());
        buf.truncate(buf.len() - cut);
        let result = read_message(&mut BufReader::new(buf.as_slice()));
        prop_assert!(result.is_err(), "truncated body must error");
    }

    /// A stream that ends inside the header section (before the blank
    /// line) errors instead of fabricating a message or hanging.
    #[test]
    fn truncated_header_section_rejected(msg in message(), frac in 0.0f64..1.0) {
        prop_assume!(!msg.body.is_empty());
        let frame = encode_message(&msg).unwrap();
        let head_len = frame.len() - msg.body.len();
        // Keep at least the first byte, cut strictly before the final
        // CRLF of the blank line so the header section never completes.
        let cut = 1 + ((head_len - 2) as f64 * frac) as usize;
        let result = read_message(&mut BufReader::new(&frame[..cut.min(head_len - 1)]));
        prop_assert!(result.is_err(), "truncated headers must error");
    }

    /// A Content-Length above the frame cap is rejected up front — the
    /// reader must not allocate or wait for the declared bytes.
    #[test]
    fn oversized_content_length_rejected(extra in 1u64..1_000_000_000) {
        let declared = MAX_BODY as u64 + extra;
        let raw = format!("BAPS/1.0 200 OK\r\nContent-Length: {declared}\r\n\r\n");
        let result = read_message(&mut BufReader::new(raw.as_bytes()));
        prop_assert!(result.is_err(), "oversized length must error");
    }

    /// Negative, fractional, overflowing, or non-numeric Content-Length
    /// values are rejected as malformed.
    #[test]
    fn malformed_content_length_rejected(
        bad in "-[0-9]{1,9}|[0-9]{1,6}\\.[0-9]{1,3}|[A-Za-z]{1,8}|[0-9]{30,40}| |0x[0-9a-f]{1,8}",
    ) {
        let raw = format!("GET /x BAPS/1.0\r\nContent-Length: {bad}\r\n\r\n");
        let result = read_message(&mut BufReader::new(raw.as_bytes()));
        prop_assert!(result.is_err(), "malformed length {bad:?} must error");
    }

    /// A body shorter than its declared Content-Length errors; the reader
    /// never hands back fewer bytes than the frame promised.
    #[test]
    fn body_shorter_than_declared_rejected(
        body in proptest::collection::vec(any::<u8>(), 0..256),
        delta in 1usize..4096,
    ) {
        let mut raw = format!(
            "BAPS/1.0 200 OK\r\nContent-Length: {}\r\n\r\n",
            body.len() + delta
        )
        .into_bytes();
        raw.extend_from_slice(&body);
        let result = read_message(&mut BufReader::new(raw.as_slice()));
        prop_assert!(result.is_err(), "short body must error");
    }
}
