//! Property-based tests of the wire protocol: round-trips, pipelining, and
//! robustness against arbitrary (malformed) byte streams.

use baps_proxy::{read_message, write_message, Message};
use proptest::prelude::*;
use std::io::BufReader;

/// Header names: token characters only (no colon / control bytes).
fn header_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,20}"
}

/// Header values: printable, no CR/LF, trimmed equals itself.
fn header_value() -> impl Strategy<Value = String> {
    "[!-~][ -~]{0,40}"
        .prop_map(|s| s.trim().to_owned())
        .prop_filter("non-empty", |s| !s.is_empty())
}

fn message() -> impl Strategy<Value = Message> {
    (
        "[A-Z]{3,8} [!-~]{1,40} BAPS/1\\.0",
        proptest::collection::vec((header_name(), header_value()), 0..8),
        proptest::collection::vec(any::<u8>(), 0..2048),
    )
        .prop_map(|(start, headers, body)| {
            let mut msg = Message::new(start);
            for (name, value) in headers {
                // Content-Length is managed by the writer.
                if !name.eq_ignore_ascii_case("content-length") {
                    msg = msg.header(name, value);
                }
            }
            msg.with_body(body)
        })
}

proptest! {
    /// Any well-formed message survives a write/read round-trip.
    #[test]
    fn message_roundtrip(msg in message()) {
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        let back = read_message(&mut BufReader::new(buf.as_slice()))
            .unwrap()
            .expect("one message");
        prop_assert_eq!(&back.start, &msg.start);
        prop_assert_eq!(&back.body, &msg.body);
        for (name, value) in &msg.headers {
            prop_assert_eq!(back.get(name), Some(value.as_str()), "header {}", name);
        }
    }

    /// Pipelined messages are read back in order, then EOF.
    #[test]
    fn pipelining(msgs in proptest::collection::vec(message(), 0..5)) {
        let mut buf = Vec::new();
        for m in &msgs {
            write_message(&mut buf, m).unwrap();
        }
        let mut reader = BufReader::new(buf.as_slice());
        for m in &msgs {
            let back = read_message(&mut reader).unwrap().expect("message");
            prop_assert_eq!(&back.start, &m.start);
            prop_assert_eq!(&back.body, &m.body);
        }
        prop_assert!(read_message(&mut reader).unwrap().is_none());
    }

    /// Arbitrary garbage never panics the reader: it either parses or
    /// errors (no hangs either — the input is finite).
    #[test]
    fn reader_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut reader = BufReader::new(bytes.as_slice());
        // Drain up to a few messages; all outcomes are acceptable except a
        // panic.
        for _ in 0..4 {
            match read_message(&mut reader) {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// A truncated valid stream errors rather than fabricating a message.
    #[test]
    fn truncation_detected(msg in message(), cut in 1usize..64) {
        prop_assume!(!msg.body.is_empty());
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        let cut = cut.min(msg.body.len());
        buf.truncate(buf.len() - cut);
        let result = read_message(&mut BufReader::new(buf.as_slice()));
        prop_assert!(result.is_err(), "truncated body must error");
    }
}
