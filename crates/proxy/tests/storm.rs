//! Invalidation-storm tests against a warm disk tier: a publisher storm
//! must never let a stale body escape (every post-invalidate read
//! revalidates with `If-Digest` or refetches), and torn-file self-heal
//! counters stay balanced when the storm lands on corrupted entries.

use baps_proxy::{DocumentStore, TestBed, TestBedConfig};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

const DOCS: usize = 12;
const BASELINE_FILE: &str = "counters.baseline";

fn unique_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("baps-storm-{tag}-{}", std::process::id()))
}

/// A disk-backed bed with browser caching effectively off (capacity 1
/// byte) and a memory tier too small to matter, so every read exercises
/// the disk path the storm is aimed at.
fn disk_bed(root: &Path, seed: u64) -> (TestBed, HashMap<String, Vec<u8>>) {
    let _ = fs::remove_dir_all(root);
    let store = DocumentStore::synthetic(DOCS, 600, 900, seed);
    let expected: HashMap<String, Vec<u8>> = store
        .urls()
        .map(|u| u.to_string())
        .collect::<Vec<_>>()
        .into_iter()
        .map(|u| {
            let body = store.get(&u).expect("doc exists").to_vec();
            (u, body)
        })
        .collect();
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: 4,
            proxy_capacity: 2_000,
            browser_capacity: 1,
            disk_root: Some(root.to_path_buf()),
            disk_capacity: 1 << 20,
            disk_ttl: Duration::from_secs(3600),
            ..TestBedConfig::default()
        },
    )
    .expect("test bed starts");
    (bed, expected)
}

fn warm_disk(bed: &TestBed, expected: &HashMap<String, Vec<u8>>) {
    for (url, body) in expected {
        let fetched = bed.clients[0].fetch(url).expect("warm fetch succeeds");
        assert_eq!(&fetched.body[..], &body[..]);
    }
    let disk = bed.proxy.disk_stats().expect("disk tier configured");
    assert_eq!(disk.entries, DOCS as u64, "warm phase fills the disk tier");
}

/// Three storm rounds against a warm store: each round mutates half the
/// corpus at the origin and publisher-invalidates *all* of it. Every
/// subsequent read must return the current bytes — a changed doc via
/// refetch, an unchanged doc via a cheap `If-Digest` 304 revalidation —
/// and never a stale body.
#[test]
fn invalidation_storm_never_serves_stale_disk_bodies() {
    let root = unique_root("stale");
    let (bed, mut expected) = disk_bed(&root, 21);
    let urls: Vec<String> = {
        let mut u: Vec<String> = expected.keys().cloned().collect();
        u.sort();
        u
    };
    warm_disk(&bed, &expected);

    for round in 0..3u64 {
        for (i, url) in urls.iter().enumerate() {
            if (i as u64 + round).is_multiple_of(2) {
                // Publisher updates the doc: same length, new content.
                let mut body = expected[url].clone();
                let tag = format!("storm-{round}-{i}");
                let tag = tag.as_bytes();
                body[..tag.len()].copy_from_slice(tag);
                assert!(bed.origin.mutate(url, body.clone()), "origin doc exists");
                expected.insert(url.clone(), body);
            }
            // The storm invalidates the whole corpus either way: changed
            // docs must refetch, unchanged docs must revalidate — neither
            // may serve the old disk bytes unverified.
            bed.clients[0]
                .publish_invalidate(url)
                .expect("publisher invalidate succeeds");
        }
        for url in &urls {
            for client in &bed.clients {
                let fetched = client.fetch(url).expect("post-storm fetch succeeds");
                assert_eq!(
                    &fetched.body[..],
                    &expected[url][..],
                    "stale body served for {url} in round {round}"
                );
            }
        }
    }

    // The unchanged half came back via conditional GETs, not blind serves.
    assert!(
        bed.origin.revalidations() > 0,
        "unchanged docs must revalidate with If-Digest"
    );
    let stats = bed.proxy.stats();
    assert!(
        stats.disk_revalidations > 0,
        "some disk serves must have required a 304 first"
    );
    let disk = bed.proxy.disk_stats().expect("disk tier configured");
    assert!(disk.stale > 0, "expired entries must read as stale");
    assert_eq!(disk.heals, 0, "a clean storm tears no files");
    assert_eq!(disk.io_errors, 0);
    assert_eq!(disk.entries, DOCS as u64);
    bed.shutdown();
    let _ = fs::remove_dir_all(&root);
}

/// Tears every disk entry mid-storm: each torn file is detected on read,
/// healed (deleted) exactly once, and refetched from the origin — the
/// heal counter balances the number of torn files and no client ever
/// sees wrong bytes.
#[test]
fn torn_files_self_heal_balanced_under_storm() {
    let root = unique_root("torn");
    let (bed, expected) = disk_bed(&root, 33);
    warm_disk(&bed, &expected);

    // Tear every entry (truncate below the header), sparing the counter
    // baseline that lives beside them.
    let mut torn = 0u64;
    let mut stack = vec![root.clone()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("disk root readable") {
            let entry = entry.expect("dir entry");
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.file_name().is_some_and(|n| n != BASELINE_FILE) {
                fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .and_then(|f| f.set_len(8))
                    .expect("truncate entry");
                torn += 1;
            }
        }
    }
    assert_eq!(torn, DOCS as u64, "every entry was torn");

    // Storm the whole corpus, then read everything back.
    for url in expected.keys() {
        bed.clients[0]
            .publish_invalidate(url)
            .expect("publisher invalidate succeeds");
    }
    let origin_hits_before = bed.origin.hits();
    for (url, body) in &expected {
        let fetched = bed.clients[1].fetch(url).expect("post-tear fetch succeeds");
        assert_eq!(&fetched.body[..], &body[..], "torn entry served bad bytes");
    }

    let disk = bed.proxy.disk_stats().expect("disk tier configured");
    assert_eq!(
        disk.heals, torn,
        "each torn file heals exactly once — counters balance"
    );
    assert_eq!(disk.io_errors, 0);
    assert_eq!(
        disk.entries, DOCS as u64,
        "healed entries are rewritten by write-through"
    );
    assert_eq!(
        bed.origin.hits() - origin_hits_before,
        DOCS as u64,
        "every healed doc was refetched from the origin"
    );
    bed.shutdown();
    let _ = fs::remove_dir_all(&root);
}
