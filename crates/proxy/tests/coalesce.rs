//! Thundering-herd regression tests: concurrent misses for the same cold
//! document must coalesce onto one in-flight backend fetch, and a failed
//! leader must broadcast its error instead of stranding the waiters.

use baps_proxy::{DocumentStore, FaultConfig, FaultPlan, Source, TestBed, TestBedConfig};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const HERD: u32 = 16;

/// A 16-client bed with the given fault plan. Client retries are off so
/// each fetch maps to exactly one proxy GET, which keeps the counter
/// assertions exact; `origin_retries` is raised so a failing leader stays
/// in flight long enough (backoff between attempts) for the herd to pile
/// in behind it.
fn herd_bed(faults: FaultConfig) -> TestBed {
    let store = DocumentStore::synthetic(4, 512, 1024, 7);
    TestBed::start(
        store,
        TestBedConfig {
            n_clients: HERD,
            client_retries: 0,
            origin_retries: 4,
            fault_plan: Some(Arc::new(FaultPlan::new(7, faults))),
            ..TestBedConfig::default()
        },
    )
    .expect("test bed starts")
}

/// Releases all clients against `url` at once and returns their results.
fn stampede(
    bed: &TestBed,
    url: &str,
) -> Vec<Result<baps_proxy::FetchResult, baps_proxy::ProxyError>> {
    let barrier = Arc::new(Barrier::new(HERD as usize));
    std::thread::scope(|s| {
        let handles: Vec<_> = bed
            .clients
            .iter()
            .map(|client| {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    client.fetch(url)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// 16 clients concurrently miss the same cold doc while the origin's
/// reply is stalled: exactly one origin fetch happens, the other 15
/// requests coalesce onto it and serve byte-exact shared content.
#[test]
fn herd_of_misses_coalesces_to_one_origin_fetch() {
    // Every origin reply stalls mid-write, pinning the leader in flight
    // long enough that all followers are parked before it publishes.
    let bed = herd_bed(FaultConfig {
        p_origin_stall: 1.0,
        stall: Duration::from_millis(400),
        ..FaultConfig::default()
    });
    let url = "http://origin/doc/0";
    let results = stampede(&bed, url);

    let stats = bed.proxy.stats();
    assert_eq!(bed.origin.hits(), 1, "one origin fetch for the whole herd");
    assert_eq!(stats.origin_fetches, 1);
    assert_eq!(stats.coalesced_fetches, u64::from(HERD) - 1);
    assert_eq!(stats.proxy_hits, u64::from(HERD) - 1);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.requests, u64::from(HERD));

    let first = results[0].as_ref().expect("herd fetch succeeds");
    let mut origin_serves = 0;
    for result in &results {
        let fetched = result.as_ref().expect("herd fetch succeeds");
        assert_eq!(fetched.body, first.body, "herd bytes must be identical");
        match fetched.source {
            Source::Origin => origin_serves += 1,
            Source::Proxy => {}
            other => panic!("unexpected serve source {other:?}"),
        }
    }
    assert_eq!(origin_serves, 1, "one leader, the rest coalesced");
    bed.shutdown();
}

/// A failed leader (origin 500 on every attempt) must broadcast the error
/// to every coalesced waiter: all 16 fetches fail promptly — no deadlock,
/// no waiter stranded until its timeout, and each request is counted as
/// exactly one error.
#[test]
fn failed_leader_broadcasts_error_without_deadlock() {
    let bed = herd_bed(FaultConfig {
        p_origin_error: 1.0,
        ..FaultConfig::default()
    });
    let url = "http://origin/doc/1";
    let t_start = Instant::now();
    let results = stampede(&bed, url);
    // The follower wait budget is origin+peer deadlines (~7s); finishing
    // far sooner proves the error was broadcast, not timed out.
    assert!(
        t_start.elapsed() < Duration::from_secs(5),
        "herd failure must resolve via broadcast, not timeouts"
    );
    for result in &results {
        assert!(result.is_err(), "an origin 500 must fail the fetch");
    }
    let stats = bed.proxy.stats();
    assert_eq!(stats.errors, u64::from(HERD), "each request fails once");
    assert_eq!(stats.proxy_hits, 0);
    assert_eq!(stats.origin_fetches, 0);
    assert_eq!(stats.requests, u64::from(HERD));
    assert!(
        stats.coalesced_fetches >= 1,
        "at least some of the herd must have coalesced onto the failed leader"
    );
    bed.shutdown();
}
