//! Observability parity between the two connection-serving backends:
//! `STATS`, `METRICS`, `TRACE`, and `HEALTH` must answer with the same
//! shape — same metric families, same header sets, same rule table — in
//! `io_mode = Reactor` as in `Threads`, modulo the documented
//! reactor-only additions. A drift here means ops tooling written
//! against one mode silently breaks against the other.

use baps_proxy::{DocumentStore, HealthReport, IoMode, Message, TestBed, TestBedConfig};
use std::collections::BTreeSet;

/// Identical deterministic workload in the requested mode: a few origin
/// misses, repeat hits, and one INVALIDATE, so every counter family and
/// histogram tier is populated the same way in both runs.
fn scraped_bed(io_mode: IoMode) -> TestBed {
    let store = DocumentStore::synthetic(12, 200, 1_500, 42);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: 2,
            io_mode,
            ..TestBedConfig::default()
        },
    )
    .expect("test bed starts");
    for i in 0..8 {
        let url = format!("http://origin/doc/{}", i % 4);
        bed.clients[(i % 2) as usize].fetch(&url).expect("fetch ok");
    }
    bed.clients[0]
        .publish_invalidate("http://origin/doc/0")
        .expect("invalidate ok");
    bed
}

fn header_names(msg: &Message) -> BTreeSet<String> {
    msg.headers.iter().map(|(k, _)| k.clone()).collect()
}

/// `# TYPE` families of an exposition: `(name, kind)` pairs.
fn families(text: &str) -> BTreeSet<(String, String)> {
    text.lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .map(|rest| {
            let mut words = rest.split_whitespace();
            (
                words.next().expect("family name").to_string(),
                words.next().expect("family kind").to_string(),
            )
        })
        .collect()
}

#[test]
fn metrics_families_match_across_io_modes() {
    let threads = scraped_bed(IoMode::Threads);
    let reactor = scraped_bed(IoMode::Reactor);
    let t_text = threads.proxy.metrics_text();
    let r_text = reactor.proxy.metrics_text();
    baps_obs::prom::check_conformance(&t_text).expect("threads exposition conforms");
    baps_obs::prom::check_conformance(&r_text).expect("reactor exposition conforms");

    let t_families = families(&t_text);
    let r_families = families(&r_text);
    let reactor_only: Vec<_> = r_families.difference(&t_families).collect();
    assert!(
        t_families.is_subset(&r_families),
        "families present in threads mode but missing in reactor mode: {:?}",
        t_families.difference(&r_families).collect::<Vec<_>>()
    );
    assert!(
        reactor_only
            .iter()
            .all(|(name, _)| name.starts_with("baps_reactor_")),
        "undocumented reactor-only families: {reactor_only:?}"
    );
}

#[test]
fn stats_trace_health_headers_match_across_io_modes() {
    let threads = scraped_bed(IoMode::Threads);
    let reactor = scraped_bed(IoMode::Reactor);

    let t_stats = threads.clients[0].proxy_stats_raw().expect("stats");
    let r_stats = reactor.clients[0].proxy_stats_raw().expect("stats");
    let t_names = header_names(&t_stats);
    let r_names = header_names(&r_stats);
    assert!(
        t_names.is_subset(&r_names),
        "STATS headers present in threads mode but missing in reactor mode: {:?}",
        t_names.difference(&r_names).collect::<Vec<_>>()
    );
    assert!(
        r_names
            .difference(&t_names)
            .all(|name| name.starts_with("Reactor-")),
        "undocumented reactor-only STATS headers: {:?}",
        r_names.difference(&t_names).collect::<Vec<_>>()
    );

    let t_trace = threads.clients[0].proxy_trace_raw().expect("trace");
    let r_trace = reactor.clients[0].proxy_trace_raw().expect("trace");
    assert_eq!(
        header_names(&t_trace),
        header_names(&r_trace),
        "TRACE header sets must be identical across io modes"
    );

    let t_health = threads.clients[0].proxy_health_raw().expect("health");
    let r_health = reactor.clients[0].proxy_health_raw().expect("health");
    assert_eq!(
        header_names(&t_health),
        header_names(&r_health),
        "HEALTH header sets must be identical across io modes"
    );
    assert_eq!(t_health.get("Io-Mode"), Some("threads"));
    assert_eq!(r_health.get("Io-Mode"), Some("reactor"));

    let t_report = HealthReport::parse(std::str::from_utf8(&t_health.body).unwrap())
        .expect("threads verdict document parses");
    let r_report = HealthReport::parse(std::str::from_utf8(&r_health.body).unwrap())
        .expect("reactor verdict document parses");
    let rule_shape = |report: &HealthReport| {
        report
            .rules
            .iter()
            .map(|r| (r.name.clone(), r.signal, r.window_secs))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        rule_shape(&t_report),
        rule_shape(&r_report),
        "both modes evaluate the same rule table"
    );
    assert_eq!(t_report.windows.len(), r_report.windows.len());
}
