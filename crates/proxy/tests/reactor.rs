//! End-to-end tests of the proxy's epoll reactor (`io_mode = Reactor`,
//! DESIGN.md §13): full verb coverage, the disk tier, warm restarts,
//! connection drops, idle-connection scaling, and the slow-loris
//! regression thread-per-connection could never express.

use baps_proxy::{
    read_message, response_code, write_message, DocumentStore, IoMode, Message, Source, TestBed,
    TestBedConfig,
};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn reactor_bed(n_clients: u32, config: TestBedConfig) -> TestBed {
    let store = DocumentStore::synthetic(16, 200, 2_000, 42);
    TestBed::start(
        store,
        TestBedConfig {
            n_clients,
            io_mode: IoMode::Reactor,
            ..config
        },
    )
    .expect("test bed starts")
}

/// A fresh, empty disk root under the system temp dir, unique per test.
fn disk_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("baps_reactor_{}_{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The full serve-tier ladder works on the reactor: origin miss, proxy
/// memory hit, local browser hit, and a peer hit after proxy eviction —
/// with the same counters thread mode produces.
#[test]
fn reactor_serves_every_tier() {
    let bed = reactor_bed(
        3,
        TestBedConfig {
            proxy_capacity: 2_500, // one ~2KB doc evicts another
            browser_capacity: 64 << 10,
            ..TestBedConfig::default()
        },
    );
    assert_eq!(bed.proxy.io_mode(), IoMode::Reactor);
    let url0 = "http://origin/doc/0";

    let r0 = bed.clients[0].fetch(url0).unwrap();
    assert_eq!(r0.source, Source::Origin);

    let r1 = bed.clients[1].fetch(url0).unwrap();
    assert_eq!(r1.source, Source::Proxy);
    assert_eq!(r1.body, r0.body);

    let r2 = bed.clients[1].fetch(url0).unwrap();
    assert_eq!(r2.source, Source::LocalBrowser);

    // Evict doc/0 from the tiny proxy cache; client 1's copy serves it.
    for i in 1..8 {
        bed.clients[2]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
    }
    let r3 = bed.clients[2].fetch(url0).unwrap();
    assert_eq!(r3.source, Source::Peer, "expected a peer hit");
    assert_eq!(r3.body, r0.body);

    let stats = bed.proxy.stats();
    assert_eq!(stats.proxy_hits, 1);
    assert_eq!(stats.peer_hits, 1);
    assert_eq!(
        stats.requests,
        stats.proxy_hits + stats.disk_hits + stats.peer_hits + stats.origin_fetches + stats.errors,
        "balance identity holds in reactor mode"
    );

    // Misses were offloaded, the memory hit ran inline on a loop.
    let r = bed.proxy.reactor_stats().expect("reactor telemetry");
    assert!(r.offloaded >= 8, "misses offload to the executor: {r:?}");
    assert!(r.inline_served >= 1, "hits serve inline on the loop: {r:?}");
    bed.shutdown();
}

/// STATS/TRACE/METRICS (and pipelined keep-alive framing) over one raw
/// connection against a reactor proxy, including the reactor's own gauges.
#[test]
fn reactor_admin_verbs_over_one_keepalive_connection() {
    let bed = reactor_bed(2, TestBedConfig::default());
    bed.clients[0].fetch("http://origin/doc/0").unwrap();
    bed.clients[1].fetch("http://origin/doc/0").unwrap();

    let stream = TcpStream::connect(bed.proxy.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // GET (memory hit: served inline by the loop).
    write_message(
        &mut writer,
        &Message::new("GET http://origin/doc/0 BAPS/1.0").header("Client", "0"),
    )
    .unwrap();
    let reply = read_message(&mut reader).unwrap().unwrap();
    assert_eq!(response_code(&reply), Some(200));

    // STATS carries the reactor gauges alongside the classic counters.
    write_message(&mut writer, &Message::new("STATS BAPS/1.0")).unwrap();
    let stats = read_message(&mut reader).unwrap().unwrap();
    assert_eq!(response_code(&stats), Some(200));
    assert_eq!(stats.get("Io-Mode"), Some("reactor"));
    let field = |name: &str| -> u64 { stats.get(name).unwrap().parse().unwrap() };
    assert!(field("Reactor-Loops") >= 1);
    assert!(field("Reactor-Fds") >= 1, "this very connection counts");
    assert!(field("Reactor-Fds-Peak") >= field("Reactor-Fds"));
    assert!(field("Reactor-Inline") >= 1);
    assert!(field("Reactor-Offloaded") >= 1);
    assert_eq!(
        field("Requests"),
        field("Proxy-Hits")
            + field("Disk-Hits")
            + field("Peer-Hits")
            + field("Origin-Fetches")
            + field("Errors")
    );

    // METRICS exposes the baps_reactor_* series.
    write_message(&mut writer, &Message::new("METRICS BAPS/1.0")).unwrap();
    let metrics = read_message(&mut reader).unwrap().unwrap();
    assert_eq!(response_code(&metrics), Some(200));
    let text = String::from_utf8(metrics.body.to_vec()).unwrap();
    assert!(text.contains("baps_reactor_registered_fds"), "{text}");
    assert!(text.contains("baps_reactor_busy_fraction"), "{text}");
    assert!(text.contains("baps_requests_total"), "{text}");

    // TRACE still answers on the same framed connection.
    write_message(&mut writer, &Message::new("TRACE BAPS/1.0")).unwrap();
    let trace = read_message(&mut reader).unwrap().unwrap();
    assert_eq!(response_code(&trace), Some(200));
    assert_eq!(trace.get("Content-Type"), Some("application/jsonl"));

    // INVALIDATE (inline admin verb).
    write_message(
        &mut writer,
        &Message::new("INVALIDATE http://origin/doc/0 BAPS/1.0").header("Client", "0"),
    )
    .unwrap();
    let inv = read_message(&mut reader).unwrap().unwrap();
    assert_eq!(response_code(&inv), Some(200));
    bed.shutdown();
}

/// The disk tier works under the reactor, including a warm in-place
/// restart with monotonic restart-surviving counters.
#[test]
fn reactor_disk_tier_survives_warm_restart() {
    let dir = disk_dir("warm");
    let mut bed = reactor_bed(
        2,
        TestBedConfig {
            proxy_capacity: 64 << 10,
            browser_capacity: 32 << 10,
            disk_root: Some(dir.clone()),
            disk_capacity: 1 << 20,
            disk_ttl: Duration::from_secs(3600),
            ..TestBedConfig::default()
        },
    );
    let url = "http://origin/doc/0";
    let r0 = bed.clients[0].fetch(url).unwrap();
    assert_eq!(r0.source, Source::Origin);
    let before = bed.proxy.stats();

    bed.restart_proxy().expect("proxy restarts in place");
    assert_eq!(
        bed.proxy.io_mode(),
        IoMode::Reactor,
        "mode survives restart"
    );
    assert!(
        bed.proxy.disk_stats().unwrap().entries >= 1,
        "restarted proxy re-opens a non-empty store"
    );

    // Next fetch misses memory but hits disk — byte-exact, no origin.
    let r1 = bed.clients[1].fetch(url).unwrap();
    assert_eq!(r1.body, r0.body);
    assert_eq!(bed.origin.hits(), 1, "origin not touched again");
    let after = bed.proxy.stats();
    assert!(after.disk_hits >= 1, "served from disk: {after:?}");
    assert!(
        after.requests >= before.requests,
        "counters stay monotonic across the restart"
    );
    bed.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `drop_connections` severs reactor-registered connections; clients see
/// EOF and transparently reconnect.
#[test]
fn reactor_drop_connections_then_reconnect() {
    let bed = reactor_bed(2, TestBedConfig::default());
    bed.clients[0].fetch("http://origin/doc/0").unwrap();
    assert!(bed.proxy.open_connections() >= 1);

    bed.proxy.drop_connections();
    assert_eq!(bed.proxy.open_connections(), 0);

    // The client's next fetch redials and succeeds.
    let r = bed.clients[0].fetch("http://origin/doc/1").unwrap();
    assert_eq!(r.source, Source::Origin);
    bed.shutdown();
}

/// Idle-connection scaling smoke: hundreds of registered keep-alive
/// connections cost fds, not threads, and active traffic still flows.
/// (The 10k point lives in `live_load --sweep`'s connections axis.)
#[test]
fn reactor_holds_idle_connections_while_serving() {
    const IDLE: usize = 300;
    let bed = reactor_bed(2, TestBedConfig::default());

    let mut idle = Vec::with_capacity(IDLE);
    for i in 0..IDLE {
        let stream = TcpStream::connect(bed.proxy.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        // A REGISTER makes each one a real, known browser connection.
        write_message(
            &mut writer,
            &Message::new("REGISTER 1 BAPS/1.0").header("Client", (1_000_000 + i).to_string()),
        )
        .unwrap();
        let reply = read_message(&mut reader).unwrap().unwrap();
        assert_eq!(response_code(&reply), Some(200));
        idle.push((reader, writer));
    }

    let r = bed.proxy.reactor_stats().expect("reactor telemetry");
    assert!(
        r.registered_fds >= IDLE as u64,
        "all idle connections registered: {r:?}"
    );
    assert!(r.registered_fds_peak >= IDLE as u64);

    // Active traffic is unaffected by the idle mass.
    for i in 0..8 {
        bed.clients[0]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
    }
    // The idle connections are still alive and answer.
    let (reader, writer) = &mut idle[IDLE / 2];
    write_message(writer, &Message::new("STATS BAPS/1.0")).unwrap();
    let reply = read_message(reader).unwrap().unwrap();
    assert_eq!(response_code(&reply), Some(200));

    drop(idle);
    bed.shutdown();
}

/// Slow-loris regression (the test thread-per-connection could never
/// express): a swarm of connections dribbling a request head one byte at
/// a time must not delay other clients. Under the worker pool each loris
/// connection pins a worker for its whole dribble; under the reactor each
/// costs a registered fd and a parser buffer, and honest requests keep
/// their sub-threshold latency throughout.
#[test]
fn slow_loris_does_not_delay_other_clients() {
    const LORIS_CONNS: usize = 32;
    const DRIBBLE: Duration = Duration::from_millis(20);

    let bed = reactor_bed(
        2,
        TestBedConfig {
            // Far fewer miss-executor threads than loris connections: if
            // the dribblers consumed threads, honest traffic would starve.
            proxy_workers: 4,
            ..TestBedConfig::default()
        },
    );
    // Warm the doc so honest fetches are pure proxy hits (inline path).
    bed.clients[0].fetch("http://origin/doc/0").unwrap();

    let head: &[u8] = b"GET http://origin/doc/0 BAPS/1.0\r\nClient: 1\r\n\r\n";
    let addr = bed.proxy.addr();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut loris = Vec::new();
    for _ in 0..LORIS_CONNS {
        let stop = std::sync::Arc::clone(&stop);
        loris.push(std::thread::spawn(move || {
            let Ok(mut stream) = TcpStream::connect(addr) else {
                return;
            };
            // Dribble the head one byte at a time, forever (until told to
            // stop) — the canonical loris never finishes its request.
            for b in head.iter().cycle() {
                if stop.load(std::sync::atomic::Ordering::Relaxed) {
                    return;
                }
                if stream.write_all(std::slice::from_ref(b)).is_err() {
                    return;
                }
                std::thread::sleep(DRIBBLE);
            }
        }));
    }

    // Give the swarm time to connect and start dribbling.
    std::thread::sleep(Duration::from_millis(100));
    let r = bed.proxy.reactor_stats().expect("reactor telemetry");
    assert!(
        r.registered_fds as usize > LORIS_CONNS / 2,
        "loris swarm is connected: {r:?}"
    );

    // Honest client: repeated proxy-hit fetches while the swarm dribbles.
    // Threshold is generous against CI noise; the failure mode it guards
    // against is queuing behind the swarm (hundreds of ms to seconds).
    let mut worst = Duration::ZERO;
    for _ in 0..50 {
        let t = Instant::now();
        let r = bed.clients[1].fetch("http://origin/doc/0").unwrap();
        let elapsed = t.elapsed();
        assert!(matches!(r.source, Source::Proxy | Source::LocalBrowser));
        worst = worst.max(elapsed);
    }
    assert!(
        worst < Duration::from_millis(250),
        "honest fetches stayed fast during the loris swarm; worst {worst:?}"
    );

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for handle in loris {
        let _ = handle.join();
    }
    bed.shutdown();
}
