//! End-to-end tests of the live browsers-aware proxy over loopback TCP.

use baps_proxy::{DocumentStore, Source, TestBed, TestBedConfig};

fn bed(n_clients: u32, proxy_capacity: u64, browser_capacity: u64) -> TestBed {
    let store = DocumentStore::synthetic(16, 200, 2_000, 42);
    TestBed::start(
        store,
        TestBedConfig {
            n_clients,
            proxy_capacity,
            browser_capacity,
            ..TestBedConfig::default()
        },
    )
    .expect("test bed starts")
}

#[test]
fn origin_then_proxy_then_local() {
    let bed = bed(2, 64 << 10, 32 << 10);
    let url = "http://origin/doc/0";

    // First fetch: from the origin (and verified).
    let r0 = bed.clients[0].fetch(url).unwrap();
    assert_eq!(r0.source, Source::Origin);

    // Another client: proxy cache hit.
    let r1 = bed.clients[1].fetch(url).unwrap();
    assert_eq!(r1.source, Source::Proxy);
    assert_eq!(r1.body, r0.body);

    // Same client again: local browser cache.
    let r2 = bed.clients[1].fetch(url).unwrap();
    assert_eq!(r2.source, Source::LocalBrowser);

    let stats = bed.proxy.stats();
    assert_eq!(stats.origin_fetches, 1);
    assert_eq!(stats.proxy_hits, 1);
    assert_eq!(bed.origin.hits(), 1);
    bed.shutdown();
}

#[test]
fn remote_browser_hit_after_proxy_eviction() {
    // Tiny proxy cache: one ~2KB doc flushes another out.
    let bed = bed(3, 2_500, 64 << 10);
    let url0 = "http://origin/doc/0";

    let r0 = bed.clients[0].fetch(url0).unwrap();
    assert_eq!(r0.source, Source::Origin);

    // Flood the proxy cache so doc/0 is evicted from it (but stays in
    // client 0's browser cache).
    for i in 1..8 {
        bed.clients[2]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
    }

    // Client 1 now gets doc/0 from client 0's browser via the index.
    let r1 = bed.clients[1].fetch(url0).unwrap();
    assert_eq!(r1.source, Source::Peer, "expected a peer hit");
    assert_eq!(r1.body, r0.body);
    assert_eq!(bed.proxy.stats().peer_hits, 1);
    assert!(bed.clients[0].peer_serves() >= 1);
    bed.shutdown();
}

#[test]
fn tampering_peer_detected_and_bypassed() {
    let bed = bed(3, 2_500, 64 << 10);
    let url0 = "http://origin/doc/0";

    let r0 = bed.clients[0].fetch(url0).unwrap();
    for i in 1..8 {
        bed.clients[2]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
    }
    // Client 0 turns malicious: serves corrupted bytes to peers.
    bed.clients[0].set_tamper(true);

    // Client 1 still receives the *correct* document: the watermark check
    // rejects the tampered copy and the retry bypasses peers.
    let r1 = bed.clients[1].fetch(url0).unwrap();
    assert_eq!(r1.body, r0.body);
    assert_ne!(r1.source, Source::Peer);
    bed.shutdown();
}

#[test]
fn invalidation_keeps_index_consistent() {
    let bed = bed(3, 2_500, 64 << 10);
    let url0 = "http://origin/doc/0";

    bed.clients[0].fetch(url0).unwrap();
    for i in 1..8 {
        bed.clients[2]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
    }
    // Client 0 evicts the doc and tells the proxy.
    assert!(bed.clients[0].evict(url0).unwrap());

    // Client 1's fetch cannot be served by a peer anymore.
    let r1 = bed.clients[1].fetch(url0).unwrap();
    assert_eq!(r1.source, Source::Origin);
    bed.shutdown();
}

#[test]
fn stale_index_self_heals_on_dead_peer() {
    let bed = bed(3, 2_500, 64 << 10);
    let url0 = "http://origin/doc/0";

    bed.clients[0].fetch(url0).unwrap();
    for i in 1..8 {
        bed.clients[2]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
    }
    // Kill client 0 without invalidating: the index is now stale.
    let client0 = {
        let mut clients = bed.clients;
        let c0 = clients.remove(0);
        c0.shutdown();
        clients
    };
    // The probe fails, the proxy self-heals, and the origin serves.
    let r1 = client0[0].fetch(url0).unwrap(); // this is old client 1
    assert_eq!(r1.source, Source::Origin);
    // (peer_failures may be 0 if the OS delivered a GONE-equivalent reset
    // before the probe; the fetch succeeding is the contract.)
    for c in client0 {
        c.shutdown();
    }
    bed.proxy.shutdown();
    bed.origin.shutdown();
}

#[test]
fn missing_document_is_not_found() {
    let bed = bed(1, 64 << 10, 32 << 10);
    let err = bed.clients[0].fetch("http://origin/doc/999").unwrap_err();
    assert!(err.to_string().contains("not found"), "{err}");
    bed.shutdown();
}

#[test]
fn browser_evictions_send_invalidations() {
    // Browser cache fits roughly one document: every new fetch evicts.
    let bed = bed(1, 64 << 10, 2_100);
    for i in 0..6 {
        bed.clients[0]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
    }
    let stats = bed.proxy.stats();
    assert!(
        stats.invalidations > 0,
        "expected eviction invalidations, got {stats:?}"
    );
    // Index bounded by what the browser can actually hold.
    assert!(bed.proxy.index_entries() <= 6);
    bed.shutdown();
}

#[test]
fn concurrent_clients_consistent_bodies() {
    let bed = bed(6, 64 << 10, 32 << 10);
    let expected = bed.clients[0].fetch("http://origin/doc/3").unwrap().body;
    // Fetch from all clients concurrently using scoped threads.
    std::thread::scope(|scope| {
        for c in &bed.clients {
            let expected = expected.clone();
            scope.spawn(move || {
                let r = c.fetch("http://origin/doc/3").unwrap();
                assert_eq!(r.body, expected);
            });
        }
    });
    bed.shutdown();
}

#[test]
fn direct_forward_peer_delivery() {
    // Same scenario as the relayed peer hit, but in direct-forward mode:
    // the holder pushes the document straight to the requester.
    let store = DocumentStore::synthetic(16, 200, 2_000, 42);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: 3,
            proxy_capacity: 2_500,
            browser_capacity: 64 << 10,
            direct_forward: true,
            ..TestBedConfig::default()
        },
    )
    .unwrap();
    let url0 = "http://origin/doc/0";
    let r0 = bed.clients[0].fetch(url0).unwrap();
    for i in 1..8 {
        bed.clients[2]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
    }
    let r1 = bed.clients[1].fetch(url0).unwrap();
    assert_eq!(r1.source, Source::Peer);
    assert_eq!(r1.body, r0.body);
    let stats = bed.proxy.stats();
    assert_eq!(stats.peer_hits, 1);
    assert_eq!(stats.direct_pushes, 1, "must be a direct push, not a relay");
    // The requester cached the delivery: next access is local.
    assert_eq!(
        bed.clients[1].fetch(url0).unwrap().source,
        Source::LocalBrowser
    );
    bed.shutdown();
}

#[test]
fn direct_forward_tampering_detected() {
    let store = DocumentStore::synthetic(16, 200, 2_000, 42);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: 3,
            proxy_capacity: 2_500,
            browser_capacity: 64 << 10,
            direct_forward: true,
            ..TestBedConfig::default()
        },
    )
    .unwrap();
    let url0 = "http://origin/doc/0";
    let r0 = bed.clients[0].fetch(url0).unwrap();
    for i in 1..8 {
        bed.clients[2]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
    }
    bed.clients[0].set_tamper(true);
    // The tampered direct delivery fails the watermark check; the retry
    // bypasses peers and still returns the correct bytes.
    let r1 = bed.clients[1].fetch(url0).unwrap();
    assert_eq!(r1.body, r0.body);
    assert_ne!(r1.source, Source::Peer);
    bed.shutdown();
}

#[test]
fn stats_verb_over_one_keepalive_connection() {
    use baps_proxy::{read_message, response_code, write_message, Message};
    use std::io::BufReader;
    use std::net::TcpStream;

    let bed = bed(2, 64 << 10, 32 << 10);
    bed.clients[0].fetch("http://origin/doc/0").unwrap();
    bed.clients[1].fetch("http://origin/doc/0").unwrap();

    // Several exchanges over a single raw connection: a GET, then STATS,
    // then STATS again — the connection stays framed throughout.
    let stream = TcpStream::connect(bed.proxy.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    write_message(
        &mut writer,
        &Message::new("GET http://origin/doc/1 BAPS/1.0").header("Client", "0"),
    )
    .unwrap();
    let reply = read_message(&mut reader).unwrap().unwrap();
    assert_eq!(response_code(&reply), Some(200));

    for _ in 0..2 {
        write_message(&mut writer, &Message::new("STATS BAPS/1.0")).unwrap();
        let stats_reply = read_message(&mut reader).unwrap().unwrap();
        assert_eq!(response_code(&stats_reply), Some(200));
        let stats = bed.proxy.stats();
        let field = |name: &str| -> u64 { stats_reply.get(name).unwrap().parse().unwrap() };
        assert_eq!(field("Requests"), stats.requests);
        assert_eq!(field("Proxy-Hits"), stats.proxy_hits);
        assert_eq!(field("Disk-Hits"), stats.disk_hits);
        assert_eq!(field("Disk-Revalidations"), stats.disk_revalidations);
        // No disk tier configured in this bed: its gauges stay zero but
        // the headers are always present.
        assert_eq!(field("Disk-Entries"), 0);
        assert_eq!(field("Disk-Bytes"), 0);
        assert_eq!(field("Peer-Hits"), stats.peer_hits);
        assert_eq!(field("Origin-Fetches"), stats.origin_fetches);
        assert_eq!(field("Invalidations"), stats.invalidations);
        assert_eq!(field("Peer-Failures"), stats.peer_failures);
        assert_eq!(field("Peer-Fallbacks"), stats.peer_fallbacks);
        assert_eq!(field("Direct-Pushes"), stats.direct_pushes);
        assert_eq!(field("Errors"), stats.errors);
        assert!(stats.requests >= 3);
        // Balance identity straight off the wire.
        assert_eq!(
            field("Requests"),
            field("Proxy-Hits")
                + field("Disk-Hits")
                + field("Peer-Hits")
                + field("Origin-Fetches")
                + field("Errors")
        );

        // Shard occupancy and contention counters. Per-shard lists carry
        // exactly one comma-separated value per shard and sum to the
        // whole-structure totals.
        let shard_list = |name: &str| -> Vec<u64> {
            stats_reply
                .get(name)
                .unwrap_or_else(|| panic!("missing {name} header"))
                .split(',')
                .map(|v| v.parse().unwrap())
                .collect()
        };
        let cache_shards = field("Cache-Shards") as usize;
        let index_shards = field("Index-Shards") as usize;
        assert!(cache_shards >= 1);
        assert!(index_shards >= 1);
        let cache_entries = shard_list("Cache-Shard-Entries");
        let cache_bytes = shard_list("Cache-Shard-Bytes");
        let cache_locks = shard_list("Cache-Lock-Acquires");
        assert_eq!(cache_entries.len(), cache_shards);
        assert_eq!(cache_bytes.len(), cache_shards);
        assert_eq!(cache_locks.len(), cache_shards);
        assert_eq!(cache_bytes.iter().sum::<u64>(), field("Cache-Bytes"));
        assert!(cache_entries.iter().sum::<u64>() >= 2, "doc/0 + doc/1");
        assert!(
            cache_locks.iter().sum::<u64>() > 0,
            "hot path must have taken cache locks"
        );
        let index_entries = shard_list("Index-Shard-Entries");
        let index_locks = shard_list("Index-Lock-Acquires");
        assert_eq!(index_entries.len(), index_shards);
        assert_eq!(index_locks.len(), index_shards);
        assert_eq!(index_entries.iter().sum::<u64>(), field("Index-Entries"));
        assert_eq!(field("Index-Entries"), bed.proxy.index_entries());
        assert!(index_locks.iter().sum::<u64>() > 0);
    }
    bed.shutdown();
}

/// Satellite: a proxy cache hit must not copy the body. The test hook
/// hands out the cache's own `Arc` handle; two reads return the same
/// allocation, and serving requests in between does not disturb it.
#[test]
fn proxy_cache_hit_does_not_copy_body() {
    use std::sync::Arc;

    let bed = bed(2, 64 << 10, 32 << 10);
    let url = "http://origin/doc/5";
    bed.clients[0].fetch(url).unwrap();

    let first = bed.proxy.cached_body(url).expect("doc cached after fetch");
    // A proxy-hit fetch serves the same cached entry...
    let r = bed.clients[1].fetch(url).unwrap();
    assert_eq!(r.body[..], first[..]);
    // ...and the cache still holds the identical allocation: the hit path
    // bumped a refcount instead of copying or replacing the body.
    let second = bed.proxy.cached_body(url).expect("still cached");
    assert!(
        Arc::ptr_eq(&first, &second),
        "cache hit must share the allocation, not copy it"
    );
    bed.shutdown();
}

/// Tentpole stress: many workers hammering one hot document plus disjoint
/// per-thread documents. Every fetch must return byte-exact,
/// watermark-valid bodies with no deadlock, while the sharded state takes
/// concurrent traffic on different shards.
#[test]
fn concurrent_stress_hot_and_disjoint_docs() {
    let store = DocumentStore::synthetic(16, 200, 2_000, 42);
    let bed = TestBed::start(
        store.clone(),
        TestBedConfig {
            n_clients: 8,
            proxy_capacity: 256 << 10,
            browser_capacity: 64 << 10,
            ..TestBedConfig::default()
        },
    )
    .expect("test bed starts");
    let hot = "http://origin/doc/0";
    let expected_hot = store.get(hot).unwrap().to_vec();

    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let workers: Vec<_> = bed
            .clients
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let expected_hot = expected_hot.clone();
                let store = &store;
                scope.spawn(move || {
                    // Each thread interleaves the shared hot doc with its
                    // own disjoint docs (spread over shards).
                    for round in 0..30 {
                        let r = c.fetch(hot).unwrap();
                        assert_eq!(r.body[..], expected_hot[..], "hot doc corrupted");
                        let own = format!("http://origin/doc/{}", 1 + ((i + round) % 15));
                        let r = c.fetch(&own).unwrap();
                        assert_eq!(
                            r.body[..],
                            store.get(&own).unwrap()[..],
                            "disjoint doc corrupted"
                        );
                    }
                })
            })
            .collect();
        // Sampler: snapshots taken *while* the workers hammer the proxy
        // must balance every time. (Before `ProxyCounters::snapshot` the
        // STATS path read each counter independently and could observe a
        // request in `requests` whose outcome counter had not landed yet.)
        let proxy = &bed.proxy;
        let done = &done;
        let sampler = scope.spawn(move || loop {
            let s = proxy.stats();
            assert_eq!(
                s.requests,
                s.proxy_hits + s.disk_hits + s.peer_hits + s.origin_fetches + s.errors,
                "mid-load snapshot tore: {s:?}"
            );
            if done.load(std::sync::atomic::Ordering::Acquire) {
                break;
            }
            std::thread::yield_now();
        });
        for w in workers {
            w.join().unwrap();
        }
        done.store(true, std::sync::atomic::Ordering::Release);
        sampler.join().unwrap();
    });

    // Integrity was verified client-side (watermarks) on every non-local
    // fetch; the counters must balance, proving no request was lost.
    let stats = bed.proxy.stats();
    assert_eq!(
        stats.requests,
        stats.proxy_hits + stats.disk_hits + stats.peer_hits + stats.origin_fetches + stats.errors
    );
    assert_eq!(stats.errors, 0);
    bed.shutdown();
}

#[test]
fn stats_via_client_helper() {
    let bed = bed(1, 64 << 10, 32 << 10);
    bed.clients[0].fetch("http://origin/doc/2").unwrap();
    let reply = bed.clients[0].proxy_stats_raw().unwrap();
    assert_eq!(reply.get("Requests").unwrap(), "1");
    assert_eq!(reply.get("Origin-Fetches").unwrap(), "1");
    bed.shutdown();
}

#[test]
fn keep_alive_reuses_one_connection() {
    let bed = bed(1, 64 << 10, 32 << 10);
    // Drive enough distinct URLs that every fetch goes to the proxy.
    for i in 0..8 {
        bed.clients[0]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
    }
    // One persistent client connection held open, zero forced reconnects.
    assert_eq!(bed.clients[0].reconnects(), 0);
    assert_eq!(bed.proxy.open_connections(), 1);
    bed.shutdown();
}

#[test]
fn stalled_proxy_reply_times_out_instead_of_hanging() {
    use baps_proxy::{FaultConfig, FaultPlan, ProxyError};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    // Every GET reply stalls mid-frame far longer than the client's read
    // deadline: the fetch must surface a timeout quickly, never hang.
    let plan = Arc::new(FaultPlan::new(
        7,
        FaultConfig {
            p_proxy_stall: 1.0,
            stall: Duration::from_secs(2),
            ..FaultConfig::default()
        },
    ));
    let store = DocumentStore::synthetic(4, 200, 400, 42);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: 1,
            client_timeout: Duration::from_millis(150),
            client_retries: 0,
            fault_plan: Some(plan),
            ..TestBedConfig::default()
        },
    )
    .unwrap();

    let t0 = Instant::now();
    let err = bed.clients[0].fetch("http://origin/doc/0").unwrap_err();
    let elapsed = t0.elapsed();
    assert!(
        matches!(err, ProxyError::Timeout),
        "expected timeout: {err}"
    );
    assert!(
        elapsed < Duration::from_secs(1),
        "fetch blocked for {elapsed:?} despite a 150 ms deadline"
    );
    bed.shutdown();
}

#[test]
fn tamper_mode_matrix_never_yields_wrong_bytes() {
    use baps_proxy::TamperMode;

    // Every way a malicious peer can lie — corrupted bytes, a truncated
    // body, a forged watermark — must be caught by the requester's
    // verification and answered with correct bytes from elsewhere.
    for mode in [
        TamperMode::FlipByte,
        TamperMode::Truncate,
        TamperMode::ForgeWatermark,
    ] {
        let bed = bed(3, 2_500, 64 << 10);
        let url0 = "http://origin/doc/0";
        let r0 = bed.clients[0].fetch(url0).unwrap();
        for i in 1..8 {
            bed.clients[2]
                .fetch(&format!("http://origin/doc/{i}"))
                .unwrap();
        }
        bed.clients[0].set_tamper_mode(mode);

        let r1 = bed.clients[1].fetch(url0).unwrap();
        assert_eq!(r1.body, r0.body, "{mode:?}: wrong bytes served");
        assert_ne!(r1.source, Source::Peer, "{mode:?}: tampered peer trusted");
        bed.shutdown();
    }
}

/// Satellite: a client-minted `Trace-Id` must reappear on every hop the
/// request touches. One request that is served by a peer yields, under the
/// same trace id, the proxy's peer-probe span and the holder's peer-serve
/// span; one origin-served request yields the proxy's origin-fetch span
/// and the origin's own serve span.
#[test]
fn trace_id_propagates_across_peer_and_origin_hops() {
    use baps_obs::{EventKind, TraceId};

    let bed = bed(3, 2_500, 64 << 10);
    let url0 = "http://origin/doc/0";

    // Origin-served fetch by client 0, then the usual eviction flood so
    // client 1's fetch of url0 becomes a peer hit served by client 0.
    bed.clients[0].fetch(url0).unwrap();
    for i in 1..8 {
        bed.clients[2]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
    }
    let r1 = bed.clients[1].fetch(url0).unwrap();
    assert_eq!(r1.source, Source::Peer, "scenario must produce a peer hit");

    let events = bed.recorder.dump();
    // The whole-fetch span carries the client id, url, and serve tier in
    // its detail; use it to recover the trace id each fetch minted.
    let fetch_trace = |detail_needle: &str| -> TraceId {
        events
            .iter()
            .find(|e| e.kind == EventKind::Fetch && e.detail.contains(detail_needle))
            .unwrap_or_else(|| panic!("no fetch event matching {detail_needle:?}"))
            .trace
    };
    let with_trace = |trace: TraceId, kind: EventKind| -> Vec<&baps_obs::Event> {
        events
            .iter()
            .filter(|e| e.trace == trace && e.kind == kind)
            .collect()
    };

    // Client 1's peer-served fetch: the proxy probed under the same trace,
    // and client 0 served the PEERGET under the same trace.
    let peer_trace = fetch_trace("client=1 url=http://origin/doc/0 source=peer");
    assert_ne!(peer_trace, TraceId::NONE);
    assert!(
        !with_trace(peer_trace, EventKind::PeerProbe).is_empty(),
        "proxy peer-probe span missing for {peer_trace}"
    );
    let serves = with_trace(peer_trace, EventKind::PeerServe);
    assert!(
        serves.iter().any(|e| e.detail.contains("client=0")),
        "client 0's peer-serve span missing for {peer_trace}: {events:#?}"
    );

    // Client 0's original origin-served fetch: proxy-side origin-fetch
    // span and the origin server's own serve span, same trace.
    let origin_trace = fetch_trace("client=0 url=http://origin/doc/0 source=origin");
    assert_ne!(origin_trace, TraceId::NONE);
    assert_ne!(origin_trace, peer_trace, "each fetch mints a fresh trace");
    assert!(
        !with_trace(origin_trace, EventKind::OriginFetch).is_empty(),
        "proxy origin-fetch span missing for {origin_trace}"
    );
    assert!(
        !with_trace(origin_trace, EventKind::OriginServe).is_empty(),
        "origin serve span missing for {origin_trace}"
    );
    bed.shutdown();
}

/// Tentpole: the `METRICS BAPS/1.0` verb returns a parseable Prometheus
/// exposition whose counters agree with the `STATS` snapshot and whose
/// per-tier histogram counts sum to the served-request total.
#[test]
fn metrics_verb_exposition_balances() {
    use baps_obs::prom;

    let bed = bed(2, 64 << 10, 32 << 10);
    for i in 0..4 {
        bed.clients[0]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
        bed.clients[1]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
    }

    let reply = bed.clients[0].proxy_metrics_raw().unwrap();
    assert!(reply.get("Content-Type").unwrap().starts_with("text/plain"));
    let text = String::from_utf8(reply.body.to_vec()).unwrap();
    let samples = prom::parse(&text).expect("exposition parses");
    let get = |name: &str, labels: &[(&str, &str)]| {
        prom::find(&samples, name, labels)
            .unwrap_or_else(|| panic!("missing {name}{labels:?} in:\n{text}"))
    };

    let stats = bed.proxy.stats();
    assert_eq!(get("baps_requests_total", &[]), stats.requests as f64);
    assert_eq!(
        get("baps_served_total", &[("tier", "proxy")]),
        stats.proxy_hits as f64
    );
    assert_eq!(
        get("baps_served_total", &[("tier", "disk")]),
        stats.disk_hits as f64
    );
    assert_eq!(
        get("baps_served_total", &[("tier", "origin")]),
        stats.origin_fetches as f64
    );
    assert_eq!(get("baps_errors_total", &[]), stats.errors as f64);

    // Per-tier latency histogram counts cover exactly the served GETs.
    let served: f64 = ["proxy", "disk", "peer", "origin"]
        .iter()
        .map(|t| get("baps_request_latency_ms_count", &[("tier", t)]))
        .sum();
    assert_eq!(served, (stats.requests - stats.errors) as f64);
    // And the verb histogram saw every dispatched GET (keep-alive GETs,
    // REGISTERs, plus this METRICS scrape are all dispatched verbs).
    assert!(get("baps_verb_latency_ms_count", &[("verb", "GET")]) >= stats.requests as f64);
    assert!(get("baps_verb_latency_ms_count", &[("verb", "METRICS")]) >= 0.0);

    // Shard gauges: per-shard cache bytes sum to the aggregate gauge.
    let cache_bytes = get("baps_cache_bytes", &[]);
    let shard_sum: f64 = samples
        .iter()
        .filter(|s| s.name == "baps_cache_shard_bytes")
        .map(|s| s.value)
        .sum();
    assert_eq!(shard_sum, cache_bytes);
    bed.shutdown();
}

#[test]
fn per_request_mode_still_works() {
    let bed = bed(2, 64 << 10, 32 << 10);
    for client in &bed.clients {
        client.set_keep_alive(false);
    }
    let r0 = bed.clients[0].fetch("http://origin/doc/3").unwrap();
    assert_eq!(r0.source, Source::Origin);
    let r1 = bed.clients[1].fetch("http://origin/doc/3").unwrap();
    assert_eq!(r1.source, Source::Proxy);
    assert_eq!(r1.body, r0.body);
    bed.shutdown();
}

// ---------------------------------------------------------------------------
// Persistent disk tier (DESIGN.md §10): warm restarts, crash safety,
// restart-surviving counters, and idempotent eviction notices.

/// A fresh, empty disk root under the system temp dir, unique per test.
fn disk_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("baps_live_{}_{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A test bed whose proxy has the persistent disk tier enabled.
fn disk_bed(n_clients: u32, dir: &std::path::Path, ttl: std::time::Duration) -> TestBed {
    let store = DocumentStore::synthetic(16, 200, 2_000, 42);
    TestBed::start(
        store,
        TestBedConfig {
            n_clients,
            proxy_capacity: 64 << 10,
            browser_capacity: 32 << 10,
            disk_root: Some(dir.to_path_buf()),
            disk_capacity: 1 << 20,
            disk_ttl: ttl,
            ..TestBedConfig::default()
        },
    )
    .expect("test bed starts")
}

/// Tentpole: a fully restarted proxy (workers stopped, memory cache and
/// index lost) re-opens its disk store and serves the next miss from it —
/// byte-exact, without touching the origin again.
#[test]
fn warm_restart_serves_from_disk() {
    let dir = disk_dir("warm_restart");
    let mut bed = disk_bed(3, &dir, std::time::Duration::from_secs(3600));
    let url = "http://origin/doc/0";

    let r0 = bed.clients[0].fetch(url).unwrap();
    assert_eq!(r0.source, Source::Origin);
    assert_eq!(bed.origin.hits(), 1);

    bed.restart_proxy().expect("proxy restarts in place");
    assert!(
        bed.proxy.disk_stats().unwrap().entries >= 1,
        "restarted proxy must re-open a non-empty store"
    );

    // Client 1 never saw the doc; the restarted proxy's memory cache is
    // empty; the index is empty too — only the disk tier can serve this
    // without the origin.
    let r1 = bed.clients[1].fetch(url).unwrap();
    assert_eq!(r1.source, Source::ProxyDisk, "expected a warm disk hit");
    assert_eq!(r1.body, r0.body, "disk-served bytes must be exact");
    assert_eq!(bed.origin.hits(), 1, "origin must not be refetched");
    assert!(bed.proxy.stats().disk_hits >= 1);

    // The disk hit promoted the doc back into the memory cache: a third
    // client (whose browser never held it) gets a plain proxy hit.
    let r2 = bed.clients[2].fetch(url).unwrap();
    assert_eq!(r2.source, Source::Proxy);
    bed.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: Prometheus counters survive a proxy restart — a scraper
/// sees `baps_requests_total` monotonic across it, not a reset to zero.
#[test]
fn metrics_counters_survive_restart() {
    use baps_obs::prom;

    let dir = disk_dir("counter_baseline");
    let mut bed = disk_bed(1, &dir, std::time::Duration::from_secs(3600));
    bed.clients[0].fetch("http://origin/doc/0").unwrap();
    bed.clients[0].fetch("http://origin/doc/1").unwrap();

    let scrape = |bed: &TestBed| -> f64 {
        let reply = bed.clients[0].proxy_metrics_raw().unwrap();
        let text = String::from_utf8(reply.body.to_vec()).unwrap();
        let samples = prom::parse(&text).expect("exposition parses");
        prom::find(&samples, "baps_requests_total", &[]).expect("requests_total present")
    };
    let before = scrape(&bed);
    assert_eq!(before, 2.0);

    bed.restart_proxy().expect("proxy restarts in place");

    // The restarted proxy folds the persisted baseline into every
    // snapshot: the next scrape continues from 2, it does not reset.
    let r = bed.clients[0].fetch("http://origin/doc/2").unwrap();
    assert_eq!(r.source, Source::Origin);
    let after = scrape(&bed);
    assert_eq!(after, before + 1.0, "requests_total must stay monotonic");

    // STATS agrees, and the balance identity holds on the folded values.
    let stats = bed.proxy.stats();
    assert_eq!(stats.requests, 3);
    assert_eq!(
        stats.requests,
        stats.proxy_hits + stats.disk_hits + stats.peer_hits + stats.origin_fetches + stats.errors
    );
    bed.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: a proxy killed mid-disk-write leaves a torn file behind.
/// On restart the corrupted entry fails watermark verification and
/// self-heals via the origin, while intact entries keep serving warm —
/// and every body is byte-exact either way.
#[test]
fn torn_disk_write_self_heals_after_crash() {
    let dir = disk_dir("torn_write");
    let (body0, body1);
    {
        let bed = disk_bed(1, &dir, std::time::Duration::from_secs(3600));
        body0 = bed.clients[0].fetch("http://origin/doc/0").unwrap().body;
        body1 = bed.clients[0].fetch("http://origin/doc/1").unwrap().body;
        bed.shutdown();
    }

    // Simulate the crash mid-append: doc/1's file loses its tail (the
    // header and URL survive, the body is short). The write path never
    // fsyncs — this is exactly what a power cut can leave behind.
    let torn = baps_proxy::disk::entry_path(&dir, "http://origin/doc/1");
    let bytes = std::fs::read(&torn).expect("doc/1 landed on disk");
    std::fs::write(&torn, &bytes[..bytes.len() - 10]).unwrap();

    let bed = disk_bed(1, &dir, std::time::Duration::from_secs(3600));
    // The intact entry serves warm from disk, byte-exact.
    let r0 = bed.clients[0].fetch("http://origin/doc/0").unwrap();
    assert_eq!(r0.source, Source::ProxyDisk);
    assert_eq!(r0.body, body0);
    // The torn entry fails verification, is deleted, and the request
    // falls through to the origin — correct bytes, never the torn ones.
    let r1 = bed.clients[0].fetch("http://origin/doc/1").unwrap();
    assert_eq!(r1.source, Source::Origin, "torn entry must not serve");
    assert_eq!(r1.body, body1);
    assert_eq!(bed.origin.hits(), 1, "only the healed doc hits the origin");
    let d = bed.proxy.disk_stats().unwrap();
    assert!(d.heals >= 1, "the torn file must be counted as healed");
    // The self-heal rewrote doc/1 through to disk: both serve warm now.
    assert!(!std::fs::read(&torn).unwrap().is_empty());
    bed.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: a TTL-expired disk entry revalidates against the origin
/// with a conditional `If-Digest` GET; the 304 refreshes the entry in
/// place and the document serves from disk without a full refetch.
#[test]
fn stale_disk_entry_revalidates_with_304() {
    let dir = disk_dir("revalidate");
    // TTL zero: every disk entry is stale the moment it lands.
    let mut bed = disk_bed(2, &dir, std::time::Duration::ZERO);
    let url = "http://origin/doc/0";

    let r0 = bed.clients[0].fetch(url).unwrap();
    assert_eq!(r0.source, Source::Origin);

    // Clear the memory cache so the next fetch reaches the disk tier.
    bed.restart_proxy().expect("proxy restarts in place");

    let r1 = bed.clients[1].fetch(url).unwrap();
    assert_eq!(r1.source, Source::ProxyDisk, "revalidated entry serves");
    assert_eq!(r1.body, r0.body);
    assert_eq!(bed.origin.hits(), 1, "304 must not transfer the body");
    assert_eq!(bed.origin.revalidations(), 1, "one conditional GET");
    assert_eq!(bed.proxy.stats().disk_revalidations, 1);
    bed.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: requeued `Evicted` notices survive a dropped connection and
/// are applied exactly once — replaying the notice (lost-reply model)
/// leaves the index and the invalidation counter unchanged.
#[test]
fn eviction_notices_survive_reconnect_and_apply_once() {
    use baps_proxy::{read_message, response_code, write_message, Message};
    use std::io::BufReader;
    use std::net::TcpStream;

    // Browser fits roughly one document: fetching down the corpus soon
    // evicts something, and the notice waits for the next GET.
    let bed = bed(1, 64 << 10, 2_100);
    let c0 = &bed.clients[0];
    let mut evicted_url = None;
    for i in 0..10 {
        c0.fetch(&format!("http://origin/doc/{i}")).unwrap();
        if let Some(url) = c0.pending_eviction_notices().first().cloned() {
            evicted_url = Some(url);
            break;
        }
    }
    let evicted_url = evicted_url.expect("tiny browser cache must evict");
    assert!(
        bed.proxy.index_holds(0, &evicted_url),
        "the notice rides the next GET, so the index is briefly stale"
    );

    // The proxy severs the connection before the notice is delivered: the
    // client must reconnect and the replayed GET still carries it.
    bed.proxy.drop_connections();
    c0.fetch("http://origin/doc/12").unwrap();
    assert_eq!(c0.reconnects(), 1);
    assert!(
        !bed.proxy.index_holds(0, &evicted_url),
        "notice must survive the reconnect"
    );
    assert!(
        !c0.pending_eviction_notices().contains(&evicted_url),
        "delivered notice must not be requeued"
    );
    let applied = bed.proxy.stats().invalidations;
    assert!(applied >= 1);

    // Lost-reply model: the same notice delivered *again* (a replay) must
    // be a no-op — not double-counted, not disturbing the index.
    let stream = TcpStream::connect(bed.proxy.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    write_message(
        &mut writer,
        &Message::new("GET http://origin/doc/13 BAPS/1.0")
            .header("Client", "0")
            .header("Evicted", &*evicted_url),
    )
    .unwrap();
    let reply = read_message(&mut reader).unwrap().unwrap();
    assert_eq!(response_code(&reply), Some(200));
    assert_eq!(
        bed.proxy.stats().invalidations,
        applied,
        "replayed notice must count as stale, not as a new invalidation"
    );
    bed.shutdown();
}

/// Tentpole: a head-sampled GET leaves spans in *three* processes —
/// client root, proxy hops, and the far side (origin's serve span, or a
/// peer's serve span) — and `span::assemble` stitches each sampled trace
/// into exactly ONE tree via the `Span-Id` parent links.
#[test]
fn sampled_fetch_assembles_one_tree_across_processes() {
    use baps_obs::span;
    use baps_proxy::response_code;

    // Tiny proxy cache (peer hits need eviction) over a corpus big
    // enough that every round touches fresh documents.
    let store = DocumentStore::synthetic(512, 200, 2_000, 42);
    let bed = TestBed::start(
        store,
        TestBedConfig {
            n_clients: 3,
            proxy_capacity: 2_500,
            browser_capacity: 64 << 10,
            ..TestBedConfig::default()
        },
    )
    .expect("test bed starts");

    // Each round: an origin-served fetch, an eviction flood, then a
    // peer-served fetch. Head sampling keeps 1 trace in SAMPLE_ONE_IN
    // (a deterministic hash of the trace id), so rounds continue until
    // the dump holds a complete tree of each shape. Deterministic: with
    // 1-in-32 sampling, client 1's single fetch per round (seq = round)
    // first samples at round 46, and client 2's flood samples nearby
    // rounds, so 60 rounds always suffice and the two shapes land well
    // inside one ring's worth of history.
    let full = |trees: &[baps_obs::SpanTree], far_kind: &str, mid_kind: &str| -> bool {
        trees.iter().any(|t| {
            t.root.record.kind == "fetch"
                && t.root.contains_kind(mid_kind)
                && t.root.contains_kind(far_kind)
        })
    };
    let mut text = String::new();
    for round in 0..60u32 {
        let url0 = format!("http://origin/doc/{}", round * 8);
        bed.clients[0].fetch(&url0).unwrap();
        for i in 1..8 {
            bed.clients[2]
                .fetch(&format!("http://origin/doc/{}", round * 8 + i))
                .unwrap();
        }
        let r = bed.clients[1].fetch(&url0).unwrap();
        assert_eq!(r.source, Source::Peer, "round {round} must peer-hit");

        // The test bed shares one flight recorder across origin, proxy,
        // and clients, so the proxy's TRACE dump holds all three sides.
        let reply = bed.clients[0].proxy_trace_raw().unwrap();
        assert_eq!(response_code(&reply), Some(200));
        assert_eq!(reply.get("Content-Type"), Some("application/jsonl"));
        assert_eq!(
            reply.get("Sample-One-In"),
            Some(span::SAMPLE_ONE_IN.to_string().as_str())
        );
        text = String::from_utf8(reply.body.to_vec()).unwrap();
        let records = span::parse_jsonl(&text).expect("TRACE dump parses");
        let trees = span::assemble(&records);
        if full(&trees, "origin-serve", "origin-fetch") && full(&trees, "peer-serve", "peer-probe")
        {
            break;
        }
    }

    let records = span::parse_jsonl(&text).expect("TRACE dump parses");
    assert!(!records.is_empty(), "no spans sampled");
    let trees = span::assemble(&records);
    let find = |far_kind: &str, mid_kind: &str| -> &baps_obs::SpanTree {
        trees
            .iter()
            .find(|t| {
                t.root.record.kind == "fetch"
                    && t.root.contains_kind(mid_kind)
                    && t.root.contains_kind(far_kind)
            })
            .unwrap_or_else(|| panic!("no fetch tree reaching {far_kind} via {mid_kind}"))
    };

    // Origin path: client fetch -> proxy origin-fetch -> origin serve.
    let origin_tree = find("origin-serve", "origin-fetch");
    // Peer path: client fetch -> proxy peer-probe -> holder peer-serve.
    let peer_tree = find("peer-serve", "peer-probe");

    for tree in [origin_tree, peer_tree] {
        assert!(tree.root.max_depth() >= 2, "tree too shallow: {tree:#?}");
        // Single tree per sampled trace: every span of this trace landed
        // in this one tree (nothing orphaned into a second root).
        assert_eq!(
            trees.iter().filter(|t| t.trace == tree.trace).count(),
            1,
            "trace {} fragmented into multiple trees",
            tree.trace
        );
        let in_tree = tree.root.records().len();
        let in_dump = records.iter().filter(|r| r.trace == tree.trace).count();
        assert_eq!(in_tree, in_dump, "tree must hold all of its trace's spans");
    }
    bed.shutdown();
}

/// Satellite: the wire `METRICS` exposition passes the parser-backed
/// Prometheus conformance check (HELP/TYPE before samples, no duplicate
/// series, histogram invariants: cumulative buckets, +Inf == _count).
#[test]
fn metrics_exposition_conforms() {
    use baps_obs::prom;

    let bed = bed(2, 64 << 10, 32 << 10);
    for i in 0..6 {
        bed.clients[0]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
        bed.clients[1]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
    }
    let reply = bed.clients[0].proxy_metrics_raw().unwrap();
    let text = String::from_utf8(reply.body.to_vec()).unwrap();
    prom::check_conformance(&text).unwrap_or_else(|e| panic!("exposition violates format: {e}"));

    // The new saturation families are part of the scrape.
    let samples = prom::parse(&text).unwrap();
    for name in [
        "baps_workers",
        "baps_workers_busy",
        "baps_queue_depth",
        "baps_queue_rejected_total",
        "baps_queue_wait_ms_count",
        "baps_flight_registry_occupancy",
    ] {
        assert!(
            prom::find(&samples, name, &[]).is_some(),
            "exposition is missing {name}"
        );
    }
    assert!(prom::find(&samples, "baps_workers", &[]).unwrap() > 0.0);
    assert!(prom::find(&samples, "baps_queue_wait_ms_count", &[]).unwrap() >= 1.0);
    bed.shutdown();
}

/// Satellite: `STATS` exposes the recorder drop counter and the
/// runtime-saturation gauges as headers.
#[test]
fn stats_reports_recorder_drops_and_saturation() {
    let bed = bed(2, 64 << 10, 32 << 10);
    for i in 0..4 {
        bed.clients[0]
            .fetch(&format!("http://origin/doc/{i}"))
            .unwrap();
    }
    let reply = bed.clients[1].proxy_stats_raw().unwrap();
    for header in [
        "Recorder-Dropped",
        "Workers",
        "Busy-Workers",
        "Busy-Workers-Peak",
        "Queue-Depth",
        "Queue-Depth-Peak",
        "Queue-Rejected",
        "Flight-Occupancy",
    ] {
        let value = reply
            .get(header)
            .unwrap_or_else(|| panic!("STATS reply is missing {header}"));
        value
            .parse::<u64>()
            .unwrap_or_else(|e| panic!("STATS {header}={value:?} is not a number: {e}"));
    }
    assert!(reply.get("Workers").unwrap().parse::<u64>().unwrap() > 0);
    assert_eq!(reply.get("Recorder-Dropped"), Some("0"));
    assert_eq!(reply.get("Queue-Rejected"), Some("0"));
    bed.shutdown();
}
