//! Lock-striped sharded state for the proxy hot path.
//!
//! The proxy's two hottest structures — the body cache and the browser
//! index — are partitioned into N independent shards routed by a
//! [`DocId`] hash ([`baps_index::shard_of`]), each behind its own mutex.
//! Two workers handling different documents take different locks and never
//! contend; a worker holds exactly one shard lock at a time, only for the
//! in-memory operation, and never across socket I/O (see DESIGN.md's lock
//! map). Every shard also tallies its lock acquisitions and cumulative
//! lock-wait time so the `STATS` and `METRICS` verbs can report
//! contention spread.
//!
//! Sharding the cache splits the byte budget evenly across shards, which
//! is *not* identical to one global LRU: a pathologically skewed shard can
//! evict while others have room. [`auto_shards`] therefore scales the
//! shard count with the configured capacity, so tiny caches (as used by
//! eviction-order tests) keep a single shard and byte-exact legacy
//! behaviour, while realistically sized caches get striped.

use crate::store::{BodyCache, CachedDoc};
use baps_index::{shard_of, ExactIndex, IndexStats};
use baps_trace::{ClientId, DocId};
use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Locks `mutex`, attributing the wait (the time between asking for the
/// lock and holding it) to `wait_nanos`. An uncontended acquisition has
/// nothing to attribute, so it goes through `try_lock` — one CAS, no
/// clock reads; two clock reads on *every* cache lookup measurably taxed
/// the hot path. Only the contended slow path pays for timing, and skips
/// it while recording is off so the overhead benchmark can difference it.
fn lock_timed<'a, T>(mutex: &'a Mutex<T>, wait_nanos: &AtomicU64) -> MutexGuard<'a, T> {
    if let Some(guard) = mutex.try_lock() {
        return guard;
    }
    if !baps_obs::recording() {
        return mutex.lock();
    }
    let t = Instant::now();
    let guard = mutex.lock();
    wait_nanos.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
    guard
}

/// Smallest per-shard byte budget [`auto_shards`] will carve out.
pub const MIN_SHARD_CAPACITY: u64 = 32 << 10;
/// Upper bound on the automatic shard count.
pub const MAX_SHARDS: usize = 16;
/// Shard count for the striped browser index. Index shards have no byte
/// budget to split, so sharding is semantics-preserving at any count and
/// a fixed stripe width suffices.
pub const DEFAULT_INDEX_SHARDS: usize = baps_index::DEFAULT_SHARDS;

/// Capacity-adaptive shard count: one shard per [`MIN_SHARD_CAPACITY`]
/// bytes, between 1 and [`MAX_SHARDS`].
pub fn auto_shards(capacity: u64) -> usize {
    ((capacity / MIN_SHARD_CAPACITY) as usize).clamp(1, MAX_SHARDS)
}

/// Occupancy/contention snapshot of one shard (cache or index).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Entries held by the shard.
    pub entries: u64,
    /// Body bytes held (cache shards; zero for index shards).
    pub bytes: u64,
    /// Times the shard's lock has been acquired.
    pub lock_acquires: u64,
    /// Cumulative microseconds spent *waiting* for the shard's lock — the
    /// wait-for-shard span. Near zero unless shards are contended.
    pub lock_wait_micros: u64,
}

struct CacheShard {
    cache: Mutex<BodyCache>,
    lock_acquires: AtomicU64,
    lock_wait_nanos: AtomicU64,
}

/// A [`BodyCache`] striped into doc-hashed shards, each behind its own
/// lock. The byte budget is split evenly across shards.
pub struct ShardedCache {
    shards: Vec<CacheShard>,
}

impl ShardedCache {
    /// Creates a cache of `n_shards` shards splitting `capacity` bytes
    /// (the first shards absorb any remainder byte).
    pub fn new(capacity: u64, n_shards: usize) -> Self {
        let n = n_shards.max(1) as u64;
        let shards = (0..n)
            .map(|i| {
                let share = capacity / n + u64::from(i < capacity % n);
                CacheShard {
                    cache: Mutex::new(BodyCache::new(share)),
                    lock_acquires: AtomicU64::new(0),
                    lock_wait_nanos: AtomicU64::new(0),
                }
            })
            .collect();
        ShardedCache { shards }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Routes to the shard for `doc` and locks it, tallying the
    /// acquisition and attributing any wait to the shard.
    fn locked(&self, doc: DocId) -> MutexGuard<'_, BodyCache> {
        let s = &self.shards[shard_of(doc, self.shards.len())];
        s.lock_acquires.fetch_add(1, Ordering::Relaxed);
        lock_timed(&s.cache, &s.lock_wait_nanos)
    }

    /// Looks up `url`, promoting it on a hit. The returned [`CachedDoc`]
    /// shares the cached body (refcount bump, no copy) — the shard lock is
    /// released before the caller touches the bytes.
    pub fn get(&self, doc: DocId, url: &str) -> Option<CachedDoc> {
        self.locked(doc).get(url).cloned()
    }

    /// Inserts a document; returns the URLs evicted from its shard.
    pub fn insert(&self, doc: DocId, url: &str, entry: CachedDoc) -> Vec<String> {
        self.locked(doc).insert(url, entry)
    }

    /// Removes `url`; returns whether it was cached.
    pub fn remove(&self, doc: DocId, url: &str) -> bool {
        self.locked(doc).remove(url)
    }

    /// Whether `url` is cached (no promotion).
    pub fn contains(&self, doc: DocId, url: &str) -> bool {
        self.locked(doc).contains(url)
    }

    /// Total body bytes across shards.
    pub fn used(&self) -> u64 {
        self.shards.iter().map(|s| s.cache.lock().used()).sum()
    }

    /// Total cached documents across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.cache.lock().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction statistics merged across shards (for `METRICS`).
    pub fn stats(&self) -> baps_cache::CacheStats {
        let mut out = baps_cache::CacheStats::default();
        for s in &self.shards {
            out.merge(s.cache.lock().stats());
        }
        out
    }

    /// Per-shard occupancy and lock-contention report (for `STATS`).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let cache = s.cache.lock();
                ShardStats {
                    entries: cache.len() as u64,
                    bytes: cache.used(),
                    lock_acquires: s.lock_acquires.load(Ordering::Relaxed),
                    lock_wait_micros: s.lock_wait_nanos.load(Ordering::Relaxed) / 1_000,
                }
            })
            .collect()
    }
}

struct IndexShard {
    index: Mutex<ExactIndex>,
    lock_acquires: AtomicU64,
    lock_wait_nanos: AtomicU64,
}

/// An [`ExactIndex`] striped into doc-hashed shards, each behind its own
/// lock — the concurrent counterpart of [`baps_index::ShardedIndex`]
/// (whose property tests prove the sharding preserves exact semantics).
pub struct StripedIndex {
    shards: Vec<IndexShard>,
}

impl StripedIndex {
    /// Creates an empty index with `n_shards` shards (at least one).
    pub fn new(n_shards: usize) -> Self {
        StripedIndex {
            shards: (0..n_shards.max(1))
                .map(|_| IndexShard {
                    index: Mutex::new(ExactIndex::new()),
                    lock_acquires: AtomicU64::new(0),
                    lock_wait_nanos: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Routes to the shard for `doc` and locks it, tallying the
    /// acquisition and attributing any wait to the shard.
    fn locked(&self, doc: DocId) -> MutexGuard<'_, ExactIndex> {
        let s = &self.shards[shard_of(doc, self.shards.len())];
        s.lock_acquires.fetch_add(1, Ordering::Relaxed);
        lock_timed(&s.index, &s.lock_wait_nanos)
    }

    /// Records that `client` now caches `doc`.
    pub fn on_store(&self, client: ClientId, doc: DocId) {
        self.locked(doc).on_store(client, doc);
    }

    /// Records that `client` evicted `doc`. Returns whether an entry was
    /// actually removed (`false` for stale/replayed notices), so callers
    /// can count applied invalidations idempotently.
    pub fn on_evict(&self, client: ClientId, doc: DocId) -> bool {
        self.locked(doc).on_evict(client, doc)
    }

    /// All holders of `doc` other than `exclude`, most recent first.
    pub fn lookup_all(&self, doc: DocId, exclude: ClientId) -> Vec<ClientId> {
        self.locked(doc).lookup_all(doc, exclude)
    }

    /// Total (client, doc) entries across shards.
    pub fn entries(&self) -> u64 {
        self.shards.iter().map(|s| s.index.lock().entries()).sum()
    }

    /// Access statistics merged across shards.
    pub fn stats(&self) -> IndexStats {
        let mut out = IndexStats::default();
        for s in &self.shards {
            out.merge(&s.index.lock().stats());
        }
        out
    }

    /// Per-shard occupancy and lock-contention report (for `STATS`).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                entries: s.index.lock().entries(),
                bytes: 0,
                lock_acquires: s.lock_acquires.load(Ordering::Relaxed),
                lock_wait_micros: s.lock_wait_nanos.load(Ordering::Relaxed) / 1_000,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baps_crypto::ProxySigner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn doc(body: &[u8]) -> CachedDoc {
        let signer = ProxySigner::generate(&mut StdRng::seed_from_u64(1));
        CachedDoc {
            body: body.into(),
            watermark: signer.watermark(body),
        }
    }

    #[test]
    fn auto_shards_scales_with_capacity() {
        assert_eq!(auto_shards(0), 1);
        assert_eq!(auto_shards(2_500), 1);
        assert_eq!(auto_shards(MIN_SHARD_CAPACITY), 1);
        assert_eq!(auto_shards(4 * MIN_SHARD_CAPACITY), 4);
        assert_eq!(auto_shards(u64::MAX), MAX_SHARDS);
    }

    #[test]
    fn sharded_cache_roundtrip_and_stats() {
        let c = ShardedCache::new(64 << 10, 4);
        let d = doc(b"hello shard");
        assert!(c.insert(DocId(7), "u7", d.clone()).is_empty());
        assert!(c.contains(DocId(7), "u7"));
        let hit = c.get(DocId(7), "u7").unwrap();
        assert!(Arc::ptr_eq(&hit.body, &d.body), "hit shares the body");
        assert_eq!(c.len(), 1);
        assert_eq!(c.used(), 11);
        let stats = c.shard_stats();
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|s| s.entries).sum::<u64>(), 1);
        assert_eq!(stats.iter().map(|s| s.bytes).sum::<u64>(), 11);
        assert!(stats.iter().map(|s| s.lock_acquires).sum::<u64>() >= 3);
        assert!(c.remove(DocId(7), "u7"));
        assert!(c.is_empty());
    }

    #[test]
    fn striped_index_matches_exact() {
        let striped = StripedIndex::new(8);
        let mut exact = ExactIndex::new();
        for i in 0..200u32 {
            striped.on_store(ClientId(i % 6), DocId(i % 31));
            exact.on_store(ClientId(i % 6), DocId(i % 31));
        }
        for i in 0..40u32 {
            striped.on_evict(ClientId(i % 6), DocId(i % 31));
            exact.on_evict(ClientId(i % 6), DocId(i % 31));
        }
        assert_eq!(striped.entries(), exact.entries());
        for d in 0..31u32 {
            assert_eq!(
                striped.lookup_all(DocId(d), ClientId(99)),
                exact.lookup_all(DocId(d), ClientId(99))
            );
        }
        assert_eq!(striped.stats(), exact.stats());
        let shard_sum: u64 = striped.shard_stats().iter().map(|s| s.entries).sum();
        assert_eq!(shard_sum, exact.entries());
    }

    #[test]
    fn lock_tallies_accumulate() {
        let idx = StripedIndex::new(2);
        for i in 0..10u32 {
            idx.on_store(ClientId(0), DocId(i));
        }
        let total: u64 = idx.shard_stats().iter().map(|s| s.lock_acquires).sum();
        assert_eq!(total, 10);
    }
}
